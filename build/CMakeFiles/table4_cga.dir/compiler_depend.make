# Empty compiler generated dependencies file for table4_cga.
# This may be replaced when dependencies are built.
