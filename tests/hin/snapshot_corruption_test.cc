// Hardening coverage for the HINPRIVS snapshot reader, mirroring the
// HINPRIVB suite (binary_io_corruption_test.cc): every truncation length
// and randomized bit flips must come back as a util::Status (or a
// still-valid graph) — never a crash, hang, or out-of-mapping read. The
// reader validates every count and section bound against the actual file
// size before handing out any mapping-derived span, so all of these run
// safely under the HINPRIV_SANITIZE preset.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hin/io.h"
#include "hin/snapshot.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

// Concurrent ctest processes must not share temp files: a sibling test
// truncating a file this process has mmap'd turns page faults past the new
// EOF into SIGBUS. Scope every path to the running test.
std::string TestScopedPath(const std::string& leaf) {
  return testing::TempDir() + "/hinpriv_" +
         testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
         leaf;
}

std::string SnapshotBytes(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  const std::string path = TestScopedPath("snap_corrupt_src");
  EXPECT_TRUE(SaveGraphSnapshot(graph.value(), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The reader memory-maps files, so corrupted payloads go through a real
// temp file rather than a stream.
util::Result<Graph> LoadFromBytes(const std::string& bytes,
                                  bool verify_edges = true) {
  const std::string path = TestScopedPath("snap_corrupt_case");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  SnapshotOptions options;
  // Scan edge payloads too: structural validation alone intentionally
  // leaves them untouched (lazy paging), but this suite wants every
  // corrupted byte either rejected or provably benign.
  options.verify_edges = verify_edges;
  return LoadGraphSnapshot(path, options);
}

// Exhaustive truncation sweep: a prefix of any length must fail with a
// clean Status — the header records the exact file size, so the only
// acceptable parse is the full payload.
TEST(SnapshotCorruptionTest, EveryTruncationLengthFailsCleanly) {
  const std::string bytes = SnapshotBytes(30, 31);
  ASSERT_GT(bytes.size(), 128u);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    auto loaded = LoadFromBytes(bytes.substr(0, keep));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes parsed";
    const auto code = loaded.status().code();
    EXPECT_TRUE(code == util::Status::Code::kCorruption ||
                code == util::Status::Code::kIoError)
        << "keep=" << keep << ": " << loaded.status().ToString();
  }
}

// Strided truncation sweep over a larger payload so cuts land inside the
// big CSR and attribute sections too.
TEST(SnapshotCorruptionTest, StridedTruncationOnLargerNetwork) {
  const std::string bytes = SnapshotBytes(300, 32);
  for (size_t keep = 0; keep < bytes.size(); keep += 97) {
    EXPECT_FALSE(LoadFromBytes(bytes.substr(0, keep)).ok())
        << "prefix of " << keep << " bytes parsed";
  }
}

// Seeded single-bit-flip fuzz. A flipped bit may still decode to a valid
// graph (padding bytes, attribute values, benign strength bits); the
// contract is no crash and, on success, a structurally plausible result.
TEST(SnapshotCorruptionTest, SingleBitFlipsNeverCrash) {
  const std::string bytes = SnapshotBytes(50, 33);
  util::Rng fuzz(34);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupted = bytes;
    const size_t byte_pos = fuzz.UniformU64(corrupted.size());
    const int bit = static_cast<int>(fuzz.UniformU64(8));
    corrupted[byte_pos] =
        static_cast<char>(corrupted[byte_pos] ^ (1 << bit));
    auto loaded = LoadFromBytes(corrupted);
    if (loaded.ok()) {
      EXPECT_LE(loaded.value().num_vertices(), 1u << 20);
    }
  }
}

// Multi-bit / burst corruption, including in the header where the section
// table pointer and the counts live.
TEST(SnapshotCorruptionTest, BurstBitFlipsNeverCrash) {
  const std::string bytes = SnapshotBytes(50, 35);
  util::Rng fuzz(36);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(fuzz.UniformU64(8));
    for (int f = 0; f < flips; ++f) {
      const size_t byte_pos = fuzz.UniformU64(corrupted.size());
      corrupted[byte_pos] = static_cast<char>(
          corrupted[byte_pos] ^ (1 << fuzz.UniformU64(8)));
    }
    auto loaded = LoadFromBytes(corrupted);
    if (loaded.ok()) {
      EXPECT_LE(loaded.value().num_vertices(), 1u << 20);
    }
  }
}

// Hostile header fields: each one must be rejected by validation against
// the real file size, never used to size an allocation or a span first.
TEST(SnapshotCorruptionTest, HostileHeaderFieldsRejected) {
  const std::string bytes = SnapshotBytes(40, 37);
  auto patch_u64 = [&](size_t offset, uint64_t value) {
    std::string patched = bytes;
    std::memcpy(patched.data() + offset, &value, sizeof(value));
    return patched;
  };
  // Header layout: magic[8], version u32, byte_order u32, then u64 fields
  // at 16: header_bytes, file_bytes, schema_offset, schema_bytes,
  // section_table_offset, section_count, num_vertices, num_edges.
  const size_t kFileBytes = 24;
  const size_t kSchemaOffset = 32;
  const size_t kSchemaBytes = 40;
  const size_t kTableOffset = 48;
  const size_t kSectionCount = 56;
  const size_t kNumVertices = 64;
  const size_t kNumEdges = 72;
  const uint64_t kHuge = ~0ull - 7;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"file_bytes", patch_u64(kFileBytes, kHuge)},
      {"file_bytes_small", patch_u64(kFileBytes, 128)},
      {"schema_offset", patch_u64(kSchemaOffset, kHuge)},
      {"schema_bytes", patch_u64(kSchemaBytes, kHuge)},
      {"table_offset", patch_u64(kTableOffset, kHuge)},
      {"table_offset_unaligned", patch_u64(kTableOffset, 129)},
      {"section_count", patch_u64(kSectionCount, kHuge)},
      {"section_count_zero", patch_u64(kSectionCount, 0)},
      {"num_vertices", patch_u64(kNumVertices, kHuge)},
      {"num_edges", patch_u64(kNumEdges, kHuge)}};
  for (const auto& [name, patched] : cases) {
    auto loaded = LoadFromBytes(patched);
    ASSERT_FALSE(loaded.ok()) << "hostile " << name << " accepted";
    EXPECT_EQ(loaded.status().code(), util::Status::Code::kCorruption)
        << name << ": " << loaded.status().ToString();
  }
}

// A snapshot written on a foreign-endian host must be rejected up front
// (the payload is raw native arrays).
TEST(SnapshotCorruptionTest, ForeignEndianRejected) {
  std::string bytes = SnapshotBytes(20, 38);
  // Byte-swap the byte-order probe at offset 12.
  std::swap(bytes[12], bytes[15]);
  std::swap(bytes[13], bytes[14]);
  auto loaded = LoadFromBytes(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kCorruption);
}

// The same guarantees hold through the format-sniffing entry point,
// including prefixes shorter than the 8-byte magic.
TEST(SnapshotCorruptionTest, LoadGraphAutoSurvivesCorruptSnapshots) {
  const std::string bytes = SnapshotBytes(30, 39);
  const std::string path = TestScopedPath("snap_corrupt_auto");
  for (size_t keep : {0ul, 3ul, 7ul, 8ul, 64ul, 128ul, bytes.size() / 2,
                      bytes.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_FALSE(LoadGraphAuto(path).ok()) << "keep=" << keep;
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadGraphAuto(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices(), 30u);
  EXPECT_TRUE(loaded.value().is_mapped());
}

}  // namespace
}  // namespace hinpriv::hin
