#ifndef HINPRIV_OBS_PROMETHEUS_H_
#define HINPRIV_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace hinpriv::obs {

// Prometheus text exposition (version 0.0.4) alongside the existing
// hinpriv-metrics-v1 JSON: the same MetricsSnapshot rendered in the format
// every scrape pipeline ingests. Registry names follow the repo's
// `[a-z0-9_/]+` slash-path convention and are mangled by prefixing
// `hinpriv_` and mapping `/` to `_`; counters additionally get the
// conventional `_total` suffix (`dehin/index_scans` →
// `hinpriv_dehin_index_scans_total`). Histograms emit cumulative
// `_bucket{le="..."}` series at the log2 bucket upper bounds plus the
// mandatory `+Inf` bucket, `_sum`, and `_count`.

// True iff `name` follows the registry naming convention: nonempty, only
// [a-z0-9_/], and no empty path segment (no leading/trailing or doubled
// '/'). The metric-name lint test enforces this across the live registry.
//
// One bounded label dimension is admitted on top of the path convention:
// a `|shard=N` suffix (N a decimal in [0, kMaxShardLabel) with no leading
// zeros) marks a per-shard instance of the base instrument. The exporter
// renders the suffix as a real Prometheus `shard="N"` label on the base
// name instead of mangling it into the name, so an M-shard tier exports M
// labeled series per instrument, not M distinct metric names.
bool IsLintedMetricName(std::string_view name);

// Upper bound (exclusive) on the shard label value — keeps the label
// dimension bounded by construction, as Prometheus cardinality hygiene
// demands.
inline constexpr int kMaxShardLabel = 64;

// `name` split into the base instrument name and the shard label value
// (-1 when `name` carries no well-formed `|shard=N` suffix).
struct SplitMetricName {
  std::string_view base;
  int shard = -1;
};
SplitMetricName SplitShardLabel(std::string_view name);

// The registry name for `base` under shard label `shard`; -1 returns the
// base unchanged. Values outside [-1, kMaxShardLabel) are clamped into
// range so a misconfigured caller cannot mint unbounded label values.
std::string ShardMetricName(std::string_view base, int shard);

enum class PrometheusKind { kCounter, kGauge, kHistogram };

// The mangled exposition name for a registry instrument name.
std::string PrometheusName(std::string_view name, PrometheusKind kind);

// The whole snapshot in exposition format; instruments keep the
// snapshot's name-sorted order, so the output is stable and diffable.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// Writes ToPrometheusText() to `path`.
util::Status WritePrometheusText(const MetricsSnapshot& snapshot,
                                 const std::string& path);

}  // namespace hinpriv::obs

#endif  // HINPRIV_OBS_PROMETHEUS_H_
