#include "core/match_cache.h"

#include <algorithm>

namespace hinpriv::core {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

MatchCache::MatchCache(size_t num_shards)
    : shards_(RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards)),
      shard_mask_(shards_.size() - 1) {}

void MatchCache::Invalidate(
    const std::vector<std::vector<hin::VertexId>>& dirty_by_depth) {
  // Entries stamped <= `stale` for a dirty (depth, va) stop hitting; the
  // bumped epoch stamps everything inserted from now on.
  const uint32_t stale = epoch_.fetch_add(1, std::memory_order_relaxed);
  if (dirty_.size() < dirty_by_depth.size()) {
    dirty_.resize(dirty_by_depth.size());
  }
  for (size_t d = 0; d < dirty_by_depth.size(); ++d) {
    auto& row = dirty_[d];
    for (hin::VertexId va : dirty_by_depth[d]) {
      if (va >= row.size()) row.resize(va + 1, 0);
      row[va] = std::max(row[va], stale);
    }
  }
}

void MatchCache::InvalidateAll() {
  flush_floor_.store(epoch_.fetch_add(1, std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

size_t MatchCache::MaxPopulatedDepth() const {
  size_t max_depth = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    max_depth = std::max(max_depth, shard.by_depth.size());
  }
  return max_depth;
}

size_t MatchCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& map : shard.by_depth) total += map.size();
  }
  return total;
}

std::vector<MatchCacheShardStats> MatchCache::ShardStats() const {
  std::vector<MatchCacheShardStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.push_back(shard.stats);
  }
  return stats;
}

MatchCacheShardStats MatchCache::TotalStats() const {
  MatchCacheShardStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.stats;
  }
  return total;
}

obs::Counter* MatchCache::GlobalHitCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/hits");
  return counter;
}

obs::Counter* MatchCache::GlobalMissCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/misses");
  return counter;
}

obs::Counter* MatchCache::GlobalInsertCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/inserts");
  return counter;
}

}  // namespace hinpriv::core
