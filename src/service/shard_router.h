#ifndef HINPRIV_SERVICE_SHARD_ROUTER_H_
#define HINPRIV_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/status.h"

namespace hinpriv::service {

// One shard worker's address. The coordinator never learns the shard plan
// itself — partition membership is baked into each worker's slice — so the
// endpoint list *is* the tier topology: position i handles shard i.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

// One shard's answer to a scattered request. `transport_ok` false means
// the shard could not be reached or the exchange failed mid-frame (its
// `error` says why); the response code (BUSY, DEADLINE_EXCEEDED, ...) is a
// *successful* transport whose verdict the merge policy handles.
struct ShardReply {
  size_t shard = 0;
  bool transport_ok = false;
  Response response;
  std::string error;
};

// Scatter-gather fabric between the coordinator and its shard workers:
// pooled blocking connections over the existing length-prefixed protocol.
// Each ScatterToAll() checks one connection per shard out of the idle
// pool (connecting fresh when the pool is dry), writes every request
// frame first, then reads the replies in shard order — the shards compute
// concurrently during the sequential gather. A connection that errors is
// closed, not returned, so a restarted shard heals on the next call.
//
// Thread-safe: concurrent callers each hold their own checked-out
// connections; only the idle pool is locked.
class ShardRouter {
 public:
  explicit ShardRouter(std::vector<ShardEndpoint> endpoints);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return endpoints_.size(); }
  const ShardEndpoint& endpoint(size_t shard) const {
    return endpoints_[shard];
  }

  // Fans `request` (same id, same body) to every shard and gathers one
  // reply per shard, indexed by shard. recv_timeout_ms > 0 bounds each
  // read via SO_RCVTIMEO — the coordinator passes its remaining deadline
  // plus a grace margin so a wedged shard cannot hold a worker hostage.
  std::vector<ShardReply> ScatterToAll(const Request& request,
                                       double recv_timeout_ms);

  // Drops all pooled connections (tests; shard-restart hygiene).
  void CloseIdle();

 private:
  // Pooled fd or fresh connect; -1 with `error` set on failure.
  int Checkout(size_t shard, std::string* error);
  void Return(size_t shard, int fd);

  std::vector<ShardEndpoint> endpoints_;
  std::mutex mu_;
  std::vector<std::vector<int>> idle_;
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_SHARD_ROUTER_H_
