#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

TEST(TablePrinterTest, TsvRoundTrip) {
  TablePrinter table({"density", "precision"});
  table.AddRow({"0.001", "12.6"});
  table.AddRow({"0.010", "92.5"});
  std::ostringstream os;
  table.PrintTsv(os);
  EXPECT_EQ(os.str(),
            "density\tprecision\n0.001\t12.6\n0.010\t92.5\n");
}

TEST(TablePrinterTest, PrettyAlignsColumns) {
  TablePrinter table({"a", "long_header"});
  table.AddRow({"wide_cell_value", "1"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  // Header, rule, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // Every line has the same width (alignment).
  std::istringstream lines(out);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_NE(out.find("wide_cell_value"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTablePrintsHeaderOnly) {
  TablePrinter table({"x"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace hinpriv::util
