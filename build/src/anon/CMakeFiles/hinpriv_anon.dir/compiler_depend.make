# Empty compiler generated dependencies file for hinpriv_anon.
# This may be replaced when dependencies are built.
