#ifndef HINPRIV_UTIL_MAPPED_FILE_H_
#define HINPRIV_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace hinpriv::util {

// Read-only memory mapping of a whole file. The mapping is private to this
// object and unmapped on destruction; the bytes it exposes are stable for
// the object's lifetime, so long-lived views (std::span over a mapped graph
// snapshot) may outlive any copy/move gymnastics as long as they do not
// outlive the MappedFile itself.
//
// Move-only: moving transfers the mapping without remapping, so spans taken
// from data() before a move remain valid afterwards.
class MappedFile {
 public:
  struct Options {
    // Pin the mapping in physical memory (mlock). Failure — typically
    // RLIMIT_MEMLOCK — is recorded in mlocked() but is not an error: the
    // mapping still works, pages just stay evictable.
    bool lock = false;
    // Hint the kernel to start readahead for the whole range
    // (madvise MADV_WILLNEED). Cheap and almost always what a loader wants.
    bool willneed = true;
    // Pre-fault every page at map time (MAP_POPULATE). Trades instant
    // first-touch latency for a slower Open(); off by default because the
    // zero-copy load path's whole point is lazy paging.
    bool populate = false;
  };

  static Result<MappedFile> Open(const std::string& path,
                                 const Options& options);
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  // True when Options::lock was requested and mlock succeeded.
  bool mlocked() const { return mlocked_; }

 private:
  MappedFile(const uint8_t* data, size_t size, std::string path, bool mlocked)
      : data_(data), size_(size), path_(std::move(path)), mlocked_(mlocked) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
  bool mlocked_ = false;
};

}  // namespace hinpriv::util

#endif  // HINPRIV_UTIL_MAPPED_FILE_H_
