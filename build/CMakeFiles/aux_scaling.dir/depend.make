# Empty dependencies file for aux_scaling.
# This may be replaced when dependencies are built.
