#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hinpriv::obs {

namespace internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      kMetricShards;
  return shard;
}

}  // namespace internal

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<uint64_t>::max(),
                    std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the percentile sample (nearest-rank with ceil).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // The rank-th sample lies in bucket b; interpolate at the midpoint of
    // its position among the bucket's samples.
    const double lo = static_cast<double>(Histogram::BucketLow(b));
    const double hi = static_cast<double>(Histogram::BucketHigh(b));
    const double within =
        (static_cast<double>(rank - seen) - 0.5) /
        static_cast<double>(buckets[b]);
    const double value = lo + within * (hi - lo);
    // The true sample can't lie outside the observed extremes.
    return std::clamp(value, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; gauges never should produce them, but
  // don't emit an unparseable file if one does.
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "null");
  }
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema\": \"hinpriv-metrics-v1\",\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, counters[i].name);
    out += ": ";
    AppendUint(&out, counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, gauges[i].name);
    out += ": ";
    AppendDouble(&out, gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, h.name);
    out += ": {\"count\": ";
    AppendUint(&out, h.count);
    out += ", \"sum\": ";
    AppendUint(&out, h.sum);
    out += ", \"mean\": ";
    AppendDouble(&out, h.Mean());
    out += ", \"min\": ";
    AppendUint(&out, h.min);
    out += ", \"max\": ";
    AppendUint(&out, h.max);
    out += ", \"p50\": ";
    AppendDouble(&out, h.Percentile(50));
    out += ", \"p90\": ";
    AppendDouble(&out, h.Percentile(90));
    out += ", \"p99\": ";
    AppendDouble(&out, h.Percentile(99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"lo\": ";
      AppendUint(&out, Histogram::BucketLow(b));
      out += ", \"hi\": ";
      AppendUint(&out, Histogram::BucketHigh(b));
      out += ", \"count\": ";
      AppendUint(&out, h.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it != counters_.end()) return it->second.get();
  assert(!gauges_.contains(std::string(name)) &&
         !histograms_.contains(std::string(name)));
  auto counter = std::make_unique<Counter>(std::string(name));
  Counter* ptr = counter.get();
  counters_.emplace(std::string(name), std::move(counter));
  return ptr;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(std::string(name));
  if (it != gauges_.end()) return it->second.get();
  assert(!counters_.contains(std::string(name)) &&
         !histograms_.contains(std::string(name)));
  auto gauge = std::make_unique<Gauge>(std::string(name));
  Gauge* ptr = gauge.get();
  gauges_.emplace(std::string(name), std::move(gauge));
  return ptr;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it != histograms_.end()) return it->second.get();
  assert(!counters_.contains(std::string(name)) &&
         !gauges_.contains(std::string(name)));
  auto histogram = std::make_unique<Histogram>(std::string(name));
  Histogram* ptr = histogram.get();
  histograms_.emplace(std::string(name), std::move(histogram));
  return ptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    uint64_t min = std::numeric_limits<uint64_t>::max();
    for (const Histogram::Shard& shard : histogram->shards_) {
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
      min = std::min(min, shard.min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, shard.max.load(std::memory_order_relaxed));
    }
    h.min = h.count == 0 ? 0 : min;
    snapshot.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

util::Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot write metrics json to: " + path);
  }
  const std::string json = snapshot.ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return util::Status::IoError("short write of metrics json to: " + path);
  }
  return util::Status::OK();
}

}  // namespace hinpriv::obs
