#ifndef HINPRIV_SYNTH_TQQ_GENERATOR_H_
#define HINPRIV_SYNTH_TQQ_GENERATOR_H_

#include "hin/graph.h"
#include "synth/tqq_config.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::synth {

// Generates a synthetic t.qq-like *target-schema* network (single User
// entity type; follow/mention/retweet/comment strength links — see
// hin::TqqTargetSchema). Profiles and degrees follow TqqConfig.
util::Result<hin::Graph> GenerateTqqNetwork(const TqqConfig& config,
                                            util::Rng* rng);

// Generates a small *full-schema* t.qq network (Users, Tweets, Comments,
// Items with post/mention/retweet/comment-on/follow/recommendation links —
// see hin::TqqFullSchema). Used to exercise the meta-path projection
// pipeline end to end; `tweets_per_user` and friends control the content
// volume. Intended for demonstration/test scale, not 2.3M users.
struct TqqFullConfig {
  size_t num_users = 200;
  double tweets_per_user = 3.0;
  double comments_per_user = 2.0;
  double mentions_per_post = 0.5;
  double retweet_prob = 0.3;   // a tweet retweets some earlier tweet
  double comment_on_tweet_prob = 0.7;  // vs. comment on another comment
  double follows_per_user = 4.0;
  size_t num_items = 20;
  double recommendations_per_user = 1.0;
  TqqConfig profiles;  // attribute distributions reused
};

util::Result<hin::Graph> GenerateTqqFullNetwork(const TqqFullConfig& config,
                                                util::Rng* rng);

}  // namespace hinpriv::synth

#endif  // HINPRIV_SYNTH_TQQ_GENERATOR_H_
