#include "hin/graph_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

Graph StarGraph(size_t leaves) {
  GraphBuilder builder(TqqTargetSchema());
  builder.AddVertices(0, leaves + 1);
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    EXPECT_TRUE(builder.AddEdge(leaf, 0, kFollowLink).ok());
  }
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GraphStatsTest, DegreeHistograms) {
  const Graph star = StarGraph(4);
  const auto out = OutDegreeHistogram(star);
  // Center has out-degree 0; four leaves have out-degree 1.
  EXPECT_EQ(out.at(0), 1u);
  EXPECT_EQ(out.at(1), 4u);
  const auto in = InDegreeHistogram(star);
  EXPECT_EQ(in.at(4), 1u);
  EXPECT_EQ(in.at(0), 4u);
  // Per-type histograms: the mention type is empty.
  const auto mention = OutDegreeHistogram(star, kMentionLink);
  EXPECT_EQ(mention.at(0), 5u);
}

TEST(GraphStatsTest, MeanOutDegree) {
  EXPECT_DOUBLE_EQ(MeanOutDegree(StarGraph(4)), 4.0 / 5.0);
}

TEST(GraphStatsTest, PowerLawAlphaRecoversGeneratorExponent) {
  // Degrees sampled from PowerLaw(1, 500, alpha) must yield an MLE close
  // to the true alpha.
  util::Rng rng(3);
  std::map<size_t, size_t> histogram;
  for (int i = 0; i < 50000; ++i) {
    ++histogram[rng.PowerLaw(1, 500, 2.3)];
  }
  // The Clauset-Shalizi-Newman discrete approximation is only reliable for
  // k_min >= ~5, so estimate on the tail.
  auto alpha = EstimatePowerLawAlpha(histogram, 5);
  ASSERT_TRUE(alpha.ok());
  EXPECT_NEAR(alpha.value(), 2.3, 0.3);
}

TEST(GraphStatsTest, SyntheticNetworkOutDegreeIsPowerLaw) {
  // The Section 4.3 assumption on the generator itself: alpha in [2, 3].
  synth::TqqConfig config;
  config.num_users = 20000;
  util::Rng rng(4);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  auto histogram = OutDegreeHistogram(graph.value(), kMentionLink);
  histogram.erase(0);  // zero-degree users are outside the power law
  auto alpha = EstimatePowerLawAlpha(histogram, 3);
  ASSERT_TRUE(alpha.ok());
  EXPECT_GT(alpha.value(), 1.8);
  EXPECT_LT(alpha.value(), 3.2);
}

TEST(GraphStatsTest, AlphaEstimateValidation) {
  EXPECT_FALSE(EstimatePowerLawAlpha({}, 1).ok());
  EXPECT_FALSE(EstimatePowerLawAlpha({{5, 1}}, 1).ok());
  EXPECT_FALSE(EstimatePowerLawAlpha({{5, 10}}, 0).ok());
}

TEST(GraphStatsTest, GiniOfUniformInDegreesIsNearZero) {
  // A directed cycle: every vertex has in-degree exactly 1.
  GraphBuilder builder(TqqTargetSchema());
  builder.AddVertices(0, 10);
  for (VertexId v = 0; v < 10; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 10, kFollowLink).ok());
  }
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(InDegreeGini(graph.value()), 0.0, 1e-9);
}

TEST(GraphStatsTest, GiniOfStarIsHigh) {
  EXPECT_GT(InDegreeGini(StarGraph(20)), 0.9);
}

TEST(GraphStatsTest, SyntheticNetworkIsHubDominated) {
  // Preferential attachment produces a clearly unequal in-degree spread.
  synth::TqqConfig config;
  config.num_users = 5000;
  util::Rng rng(5);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(InDegreeGini(graph.value()), 0.5);
}

TEST(GraphStatsTest, EmptyGraph) {
  GraphBuilder builder(TqqTargetSchema());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(MeanOutDegree(graph.value()), 0.0);
  EXPECT_DOUBLE_EQ(InDegreeGini(graph.value()), 0.0);
  EXPECT_TRUE(OutDegreeHistogram(graph.value()).empty());
}

}  // namespace
}  // namespace hinpriv::hin
