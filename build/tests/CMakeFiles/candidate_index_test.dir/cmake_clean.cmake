file(REMOVE_RECURSE
  "CMakeFiles/candidate_index_test.dir/core/candidate_index_test.cc.o"
  "CMakeFiles/candidate_index_test.dir/core/candidate_index_test.cc.o.d"
  "candidate_index_test"
  "candidate_index_test.pdb"
  "candidate_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
