#include "hin/projection.h"

#include <cstdint>
#include <unordered_map>

#include "hin/graph_builder.h"

namespace hinpriv::hin {

namespace {

// Multiplicity-preserving frontier walk along one meta path starting at
// `start`: returns end-vertex -> number of path instances. Edge strengths
// multiply along the path (a folded multi-edge of strength s contributes s
// parallel instances).
std::unordered_map<VertexId, uint64_t> WalkMetaPath(const Graph& full,
                                                    const MetaPath& path,
                                                    VertexId start) {
  std::unordered_map<VertexId, uint64_t> frontier;
  frontier.emplace(start, 1);
  for (const MetaPathStep& step : path.steps) {
    std::unordered_map<VertexId, uint64_t> next;
    for (const auto& [v, count] : frontier) {
      const auto edges = step.reverse ? full.InEdges(step.link, v)
                                      : full.OutEdges(step.link, v);
      for (const Edge& e : edges) {
        next[e.neighbor] += count * e.strength;
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace

util::Result<ProjectionResult> ProjectGraph(const Graph& full,
                                            const TargetSchemaSpec& spec) {
  auto target_schema = ProjectSchema(full.schema(), spec);
  if (!target_schema.ok()) return target_schema.status();

  // Collect target-entity vertices in id order; they become the projected
  // graph's vertex set.
  std::vector<VertexId> to_original;
  std::vector<VertexId> to_projected(full.num_vertices(), kInvalidVertex);
  for (VertexId v = 0; v < full.num_vertices(); ++v) {
    if (full.entity_type(v) == spec.target_entity) {
      to_projected[v] = static_cast<VertexId>(to_original.size());
      to_original.push_back(v);
    }
  }

  GraphBuilder builder(std::move(target_schema).value());
  const size_t num_attrs = full.num_attributes(spec.target_entity);
  for (VertexId orig : to_original) {
    const VertexId pv = builder.AddVertex(0);
    for (AttributeId a = 0; a < num_attrs; ++a) {
      HINPRIV_RETURN_IF_ERROR(
          builder.SetAttribute(pv, a, full.attribute(orig, a)));
    }
  }

  for (size_t li = 0; li < spec.links.size(); ++li) {
    const TargetLinkDef& link = spec.links[li];
    const LinkTypeId target_lt = static_cast<LinkTypeId>(li);
    for (VertexId orig : to_original) {
      const VertexId src = to_projected[orig];
      for (const MetaPath& path : link.source_paths) {
        for (const auto& [end, count] : WalkMetaPath(full, path, orig)) {
          if (count == 0) continue;
          const VertexId dst = to_projected[end];
          if (dst == kInvalidVertex) continue;  // defensive; validated paths
                                                // always end at target type
          if (src == dst && !link.allows_self_link) continue;
          HINPRIV_RETURN_IF_ERROR(builder.AddEdge(
              src, dst, target_lt, static_cast<Strength>(count)));
        }
      }
    }
  }

  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  ProjectionResult result{std::move(built).value(), std::move(to_original)};
  return result;
}

}  // namespace hinpriv::hin
