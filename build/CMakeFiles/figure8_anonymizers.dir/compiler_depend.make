# Empty compiler generated dependencies file for figure8_anonymizers.
# This may be replaced when dependencies are built.
