#include "core/privacy_risk.h"

#include <cmath>
#include <unordered_map>

namespace hinpriv::core {

namespace {

std::unordered_map<uint64_t, size_t> ValueCounts(
    std::span<const uint64_t> values) {
  std::unordered_map<uint64_t, size_t> counts;
  counts.reserve(values.size());
  for (uint64_t v : values) ++counts[v];
  return counts;
}

}  // namespace

std::vector<double> PerTupleRisk(std::span<const uint64_t> values) {
  const auto counts = ValueCounts(values);
  std::vector<double> risks;
  risks.reserve(values.size());
  for (uint64_t v : values) {
    risks.push_back(1.0 / static_cast<double>(counts.at(v)));
  }
  return risks;
}

util::Result<double> DatasetRiskWithLoss(std::span<const uint64_t> values,
                                         std::span<const double> losses) {
  if (values.size() != losses.size()) {
    return util::Status::InvalidArgument(
        "values and losses must have equal length");
  }
  if (values.empty()) {
    return util::Status::InvalidArgument("empty dataset has no defined risk");
  }
  const auto counts = ValueCounts(values);
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (losses[i] < 0.0 || losses[i] > 1.0) {
      return util::Status::InvalidArgument("loss values must lie in [0, 1]");
    }
    total += losses[i] / static_cast<double>(counts.at(values[i]));
  }
  return total / static_cast<double>(values.size());
}

double DatasetRisk(std::span<const uint64_t> values) {
  if (values.empty()) return 0.0;
  // Theorem 1: with all losses 1, sum_i 1/k(t_i) counts each distinct value
  // exactly once, so R(T) = C(T)/N.
  return static_cast<double>(CountDistinct(values)) /
         static_cast<double>(values.size());
}

double ExpectedRisk(size_t cardinality, size_t num_tuples, double mean_loss) {
  if (num_tuples == 0) return 0.0;
  return mean_loss * static_cast<double>(cardinality) /
         static_cast<double>(num_tuples);
}

std::vector<NetworkRiskResult> NetworkPrivacyRisk(
    const hin::Graph& graph, const SignatureOptions& options,
    int max_distance) {
  const auto signatures = ComputeSignatures(graph, options, max_distance);
  std::vector<NetworkRiskResult> results;
  results.reserve(signatures.size());
  for (int n = 0; n < static_cast<int>(signatures.size()); ++n) {
    NetworkRiskResult r;
    r.max_distance = n;
    r.cardinality = CountDistinct(signatures[n]);
    r.risk = graph.num_vertices() == 0
                 ? 0.0
                 : static_cast<double>(r.cardinality) /
                       static_cast<double>(graph.num_vertices());
    results.push_back(r);
  }
  return results;
}

double LogCardinalityLowerBound(int n, double log_entity_cardinality,
                                double log_link_cardinality) {
  return std::pow(2.0, n) *
         (log_entity_cardinality + n * log_link_cardinality);
}

double LogCardinalityUpperBound(int n, double log_entity_cardinality,
                                double log_link_cardinality,
                                size_t num_entities) {
  return std::pow(static_cast<double>(num_entities), n) *
         (log_entity_cardinality + n * log_link_cardinality);
}

}  // namespace hinpriv::core
