// Thread-scaling study for the two parallel shapes the executor serves:
//
//   across-target — eval::EvaluateAttackParallel claims whole targets
//     dynamically (one task per target, shared match cache);
//   intra-query   — core::Dehin::DeanonymizeParallel fans a single
//     target's candidate scan out in grains, measured here as the summed
//     one-at-a-time latency over every target (the serving shape: one
//     query in flight, the pool accelerates it).
//
// Every configuration is differential-guarded against the serial
// reference: a run whose answers drift from --threads=1 aborts the bench,
// so the committed BENCH_parallel_scaling.json can only contain numbers
// produced by correct scans. Each measurement uses a fresh Dehin so the
// cross-call match cache of an earlier run cannot flatter a later one.

#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "eval/metrics.h"
#include "eval/parallel_metrics.h"
#include "exec/executor.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

// Order-sensitive digest of a candidate list sequence; two runs agree iff
// they produced identical vectors in identical target order.
uint64_t HashCandidates(uint64_t h, const std::vector<hinpriv::hin::VertexId>&
                                        candidates) {
  constexpr uint64_t kMul = 0x100000001b3ULL;
  h = (h ^ (candidates.size() + 0x9e3779b97f4a7c15ULL)) * kMul;
  for (auto v : candidates) h = (h ^ (v + 1)) * kMul;
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density");
  flags.Define("max_distance", "2", "neighbor distance n for every attack");
  flags.Define("threads", "1,2,4,8",
               "comma-separated worker counts to sweep");
  flags.Define("chunks_per_worker", "8",
               "adaptive-grain target: grains aimed per worker when a scan "
               "leaves the grain unset (exec::GrainPolicy)");
  flags.Define("max_grain", "8192",
               "upper clamp on the adaptive grain (iterations per claim)");
  flags.Define("grain_sweep", "",
               "comma-separated chunks_per_worker values to sweep on the "
               "intra-query path at the highest thread count (each run "
               "differential-guarded)");
  flags.Define("json", "", "also write machine-readable results to this path");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  std::vector<size_t> thread_counts;
  // Split returns views into this string; it must outlive the loop.
  const std::string threads_flag = flags.GetString("threads");
  for (const auto& field : util::Split(threads_flag, ',')) {
    auto parsed = util::ParseUint64(util::Trim(field));
    if (!parsed.ok() || parsed.value() == 0) {
      std::fprintf(stderr, "bad --threads entry: %s\n",
                   std::string(field).c_str());
      return 2;
    }
    thread_counts.push_back(parsed.value());
  }

  const int n = static_cast<int>(flags.GetInt("max_distance"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, anonymizer, /*strip_majority=*/false, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& target = dataset.value().target;
  const size_t num_targets = target.num_vertices();

  // Serial references for the differential guard and the speedup base.
  core::Dehin reference(&dataset.value().auxiliary,
                        bench::AttackConfig(false, flags));
  const eval::AttackMetrics serial_metrics = eval::EvaluateAttack(
      reference, target, dataset.value().ground_truth, n);
  uint64_t serial_hash = 0;
  {
    core::Dehin fresh(&dataset.value().auxiliary,
                      bench::AttackConfig(false, flags));
    for (hin::VertexId vt = 0; vt < num_targets; ++vt) {
      serial_hash = HashCandidates(serial_hash, fresh.Deanonymize(target, vt, n));
    }
  }

  obs::Counter* tasks_counter =
      obs::MetricsRegistry::Global().GetCounter("exec/tasks");
  obs::Counter* steals_counter =
      obs::MetricsRegistry::Global().GetCounter("exec/steals");

  std::printf("Parallel scaling, %zu targets x distance %d, aux %s users "
              "(host hardware_concurrency = %u)\n\n",
              num_targets, n, flags.GetString("aux_users").c_str(),
              std::thread::hardware_concurrency());
  util::TablePrinter table({"path", "threads", "time s", "speedup",
                            "exec tasks", "exec steals"});
  std::vector<bench::BenchJsonEntry> json_entries;
  double across_base_s = 0.0;
  double intra_base_s = 0.0;

  for (size_t threads : thread_counts) {
    // --- across-target: one task per target on a pool of `threads`.
    {
      core::Dehin dehin(&dataset.value().auxiliary,
                        bench::AttackConfig(false, flags));
      exec::Executor pool(threads);
      eval::ParallelEvalOptions options;
      options.executor = &pool;
      const uint64_t tasks0 = tasks_counter->Value();
      const uint64_t steals0 = steals_counter->Value();
      const auto start = std::chrono::steady_clock::now();
      const eval::AttackMetrics metrics = eval::EvaluateAttackParallel(
          dehin, target, dataset.value().ground_truth, n, options);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (metrics.num_evaluated != serial_metrics.num_evaluated ||
          metrics.precision != serial_metrics.precision ||
          metrics.mean_candidate_count !=
              serial_metrics.mean_candidate_count) {
        std::fprintf(stderr,
                     "DIFFERENTIAL FAILURE: across-target at %zu threads "
                     "diverged from serial\n",
                     threads);
        return 1;
      }
      if (across_base_s == 0.0) across_base_s = elapsed;
      const double speedup = across_base_s / elapsed;
      const double tasks = static_cast<double>(tasks_counter->Value() - tasks0);
      const double steals =
          static_cast<double>(steals_counter->Value() - steals0);
      table.AddRow({"across-target", std::to_string(threads),
                    util::FormatDouble(elapsed, 3),
                    util::FormatDouble(speedup, 2),
                    util::FormatDouble(tasks, 0),
                    util::FormatDouble(steals, 0)});
      bench::BenchJsonEntry entry;
      entry.name = "across_target/threads=" + std::to_string(threads);
      entry.real_time_s = elapsed;
      entry.counters = {{"threads", static_cast<double>(threads)},
                        {"speedup_vs_1thread", speedup},
                        {"exec_tasks", tasks},
                        {"exec_steals", steals},
                        {"precision", metrics.precision}};
      json_entries.push_back(std::move(entry));
    }

    // --- intra-query: targets served one at a time, each scan fanned out.
    {
      core::Dehin dehin(&dataset.value().auxiliary,
                        bench::AttackConfig(false, flags));
      exec::Executor pool(threads);
      core::Dehin::ParallelScanOptions scan;
      scan.executor = &pool;
      scan.grain_policy.chunks_per_worker =
          static_cast<size_t>(flags.GetInt("chunks_per_worker"));
      scan.grain_policy.max_grain =
          static_cast<size_t>(flags.GetInt("max_grain"));
      const uint64_t tasks0 = tasks_counter->Value();
      const uint64_t steals0 = steals_counter->Value();
      uint64_t hash = 0;
      const auto start = std::chrono::steady_clock::now();
      for (hin::VertexId vt = 0; vt < num_targets; ++vt) {
        auto result = dehin.DeanonymizeParallel(target, vt, n, scan);
        if (!result.ok()) {
          std::fprintf(stderr, "scan failed at vt=%u: %s\n", vt,
                       result.status().ToString().c_str());
          return 1;
        }
        hash = HashCandidates(hash, result.value());
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (hash != serial_hash) {
        std::fprintf(stderr,
                     "DIFFERENTIAL FAILURE: intra-query at %zu threads "
                     "diverged from serial\n",
                     threads);
        return 1;
      }
      if (intra_base_s == 0.0) intra_base_s = elapsed;
      const double speedup = intra_base_s / elapsed;
      const double tasks = static_cast<double>(tasks_counter->Value() - tasks0);
      const double steals =
          static_cast<double>(steals_counter->Value() - steals0);
      table.AddRow({"intra-query", std::to_string(threads),
                    util::FormatDouble(elapsed, 3),
                    util::FormatDouble(speedup, 2),
                    util::FormatDouble(tasks, 0),
                    util::FormatDouble(steals, 0)});
      bench::BenchJsonEntry entry;
      entry.name = "intra_query/threads=" + std::to_string(threads);
      entry.real_time_s = elapsed;
      entry.counters = {{"threads", static_cast<double>(threads)},
                        {"speedup_vs_1thread", speedup},
                        {"exec_tasks", tasks},
                        {"exec_steals", steals}};
      json_entries.push_back(std::move(entry));
    }
  }
  // --- grain sweep: intra-query path at the highest thread count, one run
  // per chunks_per_worker setting. Finer grains cost more claims (exec
  // tasks); coarser ones starve the tail — the sweep makes the tradeoff
  // measurable instead of folklore.
  const std::string grain_sweep_flag = flags.GetString("grain_sweep");
  if (!grain_sweep_flag.empty()) {
    const size_t sweep_threads = thread_counts.back();
    for (const auto& field : util::Split(grain_sweep_flag, ',')) {
      auto parsed = util::ParseUint64(util::Trim(field));
      if (!parsed.ok() || parsed.value() == 0) {
        std::fprintf(stderr, "bad --grain_sweep entry: %s\n",
                     std::string(field).c_str());
        return 2;
      }
      const size_t chunks = parsed.value();
      core::Dehin dehin(&dataset.value().auxiliary,
                        bench::AttackConfig(false, flags));
      exec::Executor pool(sweep_threads);
      core::Dehin::ParallelScanOptions scan;
      scan.executor = &pool;
      scan.grain_policy.chunks_per_worker = chunks;
      scan.grain_policy.max_grain =
          static_cast<size_t>(flags.GetInt("max_grain"));
      const uint64_t tasks0 = tasks_counter->Value();
      uint64_t hash = 0;
      const auto start = std::chrono::steady_clock::now();
      for (hin::VertexId vt = 0; vt < num_targets; ++vt) {
        auto result = dehin.DeanonymizeParallel(target, vt, n, scan);
        if (!result.ok()) {
          std::fprintf(stderr, "grain-sweep scan failed at vt=%u: %s\n", vt,
                       result.status().ToString().c_str());
          return 1;
        }
        hash = HashCandidates(hash, result.value());
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (hash != serial_hash) {
        std::fprintf(stderr,
                     "DIFFERENTIAL FAILURE: grain sweep at %zu chunks/worker "
                     "diverged from serial\n",
                     chunks);
        return 1;
      }
      const double tasks = static_cast<double>(tasks_counter->Value() - tasks0);
      table.AddRow({"grain c/w=" + std::to_string(chunks),
                    std::to_string(sweep_threads),
                    util::FormatDouble(elapsed, 3),
                    util::FormatDouble(intra_base_s / elapsed, 2),
                    util::FormatDouble(tasks, 0), "-"});
      bench::BenchJsonEntry entry;
      entry.name = "grain_sweep/chunks_per_worker=" + std::to_string(chunks);
      entry.real_time_s = elapsed;
      entry.counters = {{"threads", static_cast<double>(sweep_threads)},
                        {"chunks_per_worker", static_cast<double>(chunks)},
                        {"speedup_vs_1thread", intra_base_s / elapsed},
                        {"exec_tasks", tasks}};
      json_entries.push_back(std::move(entry));
    }
  }

  table.Print(std::cout);
  std::printf("\nall configurations passed the differential guard "
              "(bit-identical to serial)\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    auto context = bench::CommonBenchContext(
        flags,
        {{"max_distance", flags.GetString("max_distance")},
         {"threads_swept", flags.GetString("threads")},
         {"chunks_per_worker", flags.GetString("chunks_per_worker")},
         {"max_grain", flags.GetString("max_grain")},
         {"grain_sweep", flags.GetString("grain_sweep")},
         {"hardware_concurrency",
          std::to_string(std::thread::hardware_concurrency())}});
    if (!bench::WriteBenchJson(json_path, json_entries, context)) return 1;
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
