#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"

namespace hinpriv::eval {
namespace {

using hin::VertexId;

// Auxiliary with controlled profiles: vertices 0/1 share profile A,
// vertex 2 has unique profile B, vertex 3 unique profile C.
hin::Graph MakeAux() {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 4);
  EXPECT_TRUE(builder.SetAttribute(0, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(builder.SetAttribute(1, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(builder.SetAttribute(2, hin::kYobAttr, 1990).ok());
  EXPECT_TRUE(builder.SetAttribute(3, hin::kYobAttr, 2000).ok());
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

// Target of 3 users matching aux 0 (ambiguous with 1), aux 2 (unique), and
// aux 3 (unique).
hin::Graph MakeTarget() {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 3);
  EXPECT_TRUE(builder.SetAttribute(0, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(builder.SetAttribute(1, hin::kYobAttr, 1990).ok());
  EXPECT_TRUE(builder.SetAttribute(2, hin::kYobAttr, 2000).ok());
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(EvaluateAttackTest, ScoresPrecisionAndReduction) {
  const hin::Graph aux = MakeAux();
  const hin::Graph target = MakeTarget();
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&aux, config);

  const std::vector<VertexId> ground_truth = {0, 2, 3};
  const AttackMetrics metrics =
      EvaluateAttack(dehin, target, ground_truth, /*max_distance=*/0);
  EXPECT_EQ(metrics.num_targets, 3u);
  // Targets 1 and 2 are unique and correct; target 0 is ambiguous (2
  // candidates).
  EXPECT_EQ(metrics.num_unique_correct, 2u);
  EXPECT_NEAR(metrics.precision, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(metrics.num_containing_truth, 3u);
  // Candidate sizes 2, 1, 1 over |V| = 4:
  // reduction = mean(1 - 2/4, 1 - 1/4, 1 - 1/4) = (0.5 + 0.75 + 0.75)/3.
  EXPECT_NEAR(metrics.reduction_rate, (0.5 + 0.75 + 0.75) / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_candidate_count, (2.0 + 1.0 + 1.0) / 3.0, 1e-12);
}

TEST(EvaluateAttackTest, WrongGroundTruthYieldsZeroPrecision) {
  const hin::Graph aux = MakeAux();
  const hin::Graph target = MakeTarget();
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&aux, config);
  // Deliberately wrong mapping: unique candidate sets no longer match.
  const std::vector<VertexId> ground_truth = {3, 0, 1};
  const AttackMetrics metrics = EvaluateAttack(dehin, target, ground_truth, 0);
  EXPECT_EQ(metrics.num_unique_correct, 0u);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
  EXPECT_EQ(metrics.num_containing_truth, 0u);
}

TEST(EvaluateAttackTest, EmptyTargetGraph) {
  const hin::Graph aux = MakeAux();
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  auto target = std::move(builder).Build();
  ASSERT_TRUE(target.ok());
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&aux, config);
  const AttackMetrics metrics =
      EvaluateAttack(dehin, target.value(), {}, 0);
  EXPECT_EQ(metrics.num_targets, 0u);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
}

}  // namespace
}  // namespace hinpriv::eval
