#!/usr/bin/env bash
# Sharded scatter-gather tier smoke, run as a CI step: generate and
# anonymize a synthetic network, bring up `serve --shards 2` next to an
# unsharded server on the same pair, drive the tier with the closed-loop
# load generator (whose differential guard checks every merged answer
# against a local unsharded scan), assert query-level parity between the
# two servers, and verify both drain cleanly on SIGTERM.
#
# Usage: shard_serve_smoke.sh <path-to-hinpriv_cli> <path-to-load_gen>
set -euo pipefail

CLI=${1:?usage: shard_serve_smoke.sh <hinpriv_cli> <load_gen>}
LOAD_GEN=${2:?usage: shard_serve_smoke.sh <hinpriv_cli> <load_gen>}
WORK=$(mktemp -d)
SHARD_PORT=${SHARD_PORT:-7493}
PLAIN_PORT=${PLAIN_PORT:-7494}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$CLI" generate --users=2000 --seed=11 --out="$WORK/net.graph"
"$CLI" anonymize --in="$WORK/net.graph" --scheme=kdda \
  --out="$WORK/pub.graph" --mapping="$WORK/secret.tsv"

wait_ready() { # port
  for _ in $(seq 1 100); do
    if "$CLI" query --port="$1" --method=stats >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "server on port $1 never became ready" >&2
  return 1
}

query_all() { # port outfile — normalized to just the candidate sets
  : > "$2"
  for id in 3 17 42 99 256 1023; do
    "$CLI" query --port="$1" --method=attack_one --target_id="$id" \
      --max_distance=1 | grep -o '"candidates":\[[0-9,]*\]' >> "$2"
  done
}

mkdir -p "$WORK/slices"
"$CLI" serve --target="$WORK/pub.graph" --aux="$WORK/net.graph" \
  --port="$SHARD_PORT" --shards=2 --halo_depth=1 \
  --shard_dir="$WORK/slices" > "$WORK/shard_serve.log" &
SHARD_PID=$!
"$CLI" serve --target="$WORK/pub.graph" --aux="$WORK/net.graph" \
  --port="$PLAIN_PORT" > "$WORK/plain_serve.log" &
PLAIN_PID=$!
wait_ready "$SHARD_PORT"
wait_ready "$PLAIN_PORT"

# A few seconds of closed-loop load with the in-generator differential
# guard: every OK response is compared against a local unsharded scan.
"$LOAD_GEN" --port="$SHARD_PORT" --connections=2 --duration_sec=2 \
  --target_ids=1024 --max_distance=1 \
  --verify_target="$WORK/pub.graph" --verify_aux="$WORK/net.graph"

# Spot-check parity against the unsharded server through the query CLI.
query_all "$SHARD_PORT" "$WORK/shard.out"
query_all "$PLAIN_PORT" "$WORK/plain.out"
[ -s "$WORK/shard.out" ] || { echo "no candidate sets captured" >&2; exit 1; }
diff -u "$WORK/shard.out" "$WORK/plain.out"

# Both servers must drain cleanly on SIGTERM (exit 0, drain banner).
kill "$SHARD_PID"
wait "$SHARD_PID"
kill "$PLAIN_PID"
wait "$PLAIN_PID"
grep -q "draining in-flight requests" "$WORK/shard_serve.log" || {
  echo "sharded server did not report a clean drain" >&2
  cat "$WORK/shard_serve.log" >&2
  exit 1
}
# The tier persisted its slices for the next warm start.
ls "$WORK"/slices/aux.*of2.d1.hinprivs > /dev/null

echo "shard serve smoke: $(wc -l < "$WORK/shard.out") answers, parity OK, clean drain"
