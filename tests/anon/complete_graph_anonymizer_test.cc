#include "anon/complete_graph_anonymizer.h"


#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::anon {
namespace {

hin::Graph MakeGraph(size_t users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(CompleteGraphAnonymizerTest, EveryLinkTypeBecomesComplete) {
  const hin::Graph graph = MakeGraph(60, 1);
  CompleteGraphAnonymizer anonymizer;
  util::Rng rng(2);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  const size_t n = anon.num_vertices();
  // n*(n-1) directed edges per link type.
  EXPECT_EQ(anon.num_edges(), 4 * n * (n - 1));
  for (hin::LinkTypeId lt = 0; lt < anon.num_link_types(); ++lt) {
    for (hin::VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(anon.OutDegree(lt, v), n - 1);
    }
  }
}

TEST(CompleteGraphAnonymizerTest, RealStrengthsPreservedFakesConstant) {
  const hin::Graph graph = MakeGraph(50, 3);
  CompleteGraphAnonymizer anonymizer(/*fake_strength=*/1);
  util::Rng rng(4);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  const auto& to_original = result.value().to_original;
  std::vector<hin::VertexId> to_new(graph.num_vertices());
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    to_new[to_original[v]] = v;
  }
  // Every real mention edge keeps its strength in the anonymized copy.
  for (hin::VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const hin::Edge& e : graph.OutEdges(hin::kMentionLink, v)) {
      ASSERT_EQ(anon.EdgeStrength(hin::kMentionLink, to_new[v],
                                  to_new[e.neighbor]),
                e.strength);
    }
  }
  // Non-real pairs carry the constant fake strength.
  size_t checked = 0;
  for (hin::VertexId v = 0; v < anon.num_vertices() && checked < 50; ++v) {
    for (const hin::Edge& e : anon.OutEdges(hin::kMentionLink, v)) {
      if (graph.HasEdge(hin::kMentionLink, to_original[v],
                        to_original[e.neighbor])) {
        continue;
      }
      ASSERT_EQ(e.strength, 1u);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(CompleteGraphAnonymizerTest, KAnonymityReachesGraphSize) {
  // With a complete graph every vertex has identical degree: the k of
  // k-degree anonymity equals the vertex count (the paper's "best case").
  const hin::Graph graph = MakeGraph(40, 5);
  CompleteGraphAnonymizer anonymizer;
  util::Rng rng(6);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  for (hin::LinkTypeId lt = 0; lt < anon.num_link_types(); ++lt) {
    std::map<size_t, size_t> degree_counts;
    for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
      ++degree_counts[anon.OutDegree(lt, v)];
    }
    ASSERT_EQ(degree_counts.size(), 1u);
    EXPECT_EQ(degree_counts.begin()->second, anon.num_vertices());
  }
}

TEST(VaryingWeightCgaTest, FakeWeightsVary) {
  const hin::Graph graph = MakeGraph(50, 7);
  VaryingWeightCgaAnonymizer anonymizer(/*max_fake_strength=*/30);
  util::Rng rng(8);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  // Fake follow strengths range over [1, 30]; the real ones are all 1, so
  // observing many distinct strengths proves the fakes vary.
  std::set<hin::Strength> strengths;
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    for (const hin::Edge& e : anon.OutEdges(hin::kFollowLink, v)) {
      strengths.insert(e.strength);
    }
  }
  EXPECT_GT(strengths.size(), 10u);
  EXPECT_EQ(anon.num_edges(),
            4 * anon.num_vertices() * (anon.num_vertices() - 1));
}

TEST(VaryingWeightCgaTest, NoMajorityValueDominatesFakes) {
  const hin::Graph graph = MakeGraph(40, 9);
  VaryingWeightCgaAnonymizer anonymizer(30);
  util::Rng rng(10);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  std::map<hin::Strength, size_t> counts;
  size_t total = 0;
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    for (const hin::Edge& e : anon.OutEdges(hin::kMentionLink, v)) {
      ++counts[e.strength];
      ++total;
    }
  }
  size_t max_count = 0;
  for (const auto& [s, c] : counts) max_count = std::max(max_count, c);
  // The most common strength covers well under half the links, so majority
  // stripping cannot isolate the fakes (Section 6.3's defense mechanism).
  EXPECT_LT(max_count * 2, total);
}

TEST(CompleteGraphAnonymizerTest, Names) {
  EXPECT_EQ(CompleteGraphAnonymizer().name(), "CGA");
  EXPECT_EQ(VaryingWeightCgaAnonymizer().name(), "VW-CGA");
}

}  // namespace
}  // namespace hinpriv::anon
