// Reproduces Table 1 and Figure 7: privacy risk of the anonymized t.qq
// target network (density 0.01, 1000 users) as a function of the utilized
// target network schema link types and of the max distance n of utilized
// neighbors. Also prints the Section 1.2 / 4.2 T1000-vs-T2 worked example
// as a sanity anchor for the risk metric itself.
//
// Paper protocol (Section 6.1): entity cardinality uses only the tag count
// ("only the number of tags is used in computing the entity cardinality"),
// so distance-0 risk is 11/1000 = 1.1%.

#include <array>
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "core/privacy_risk.h"
#include "util/stats.h"
#include "hin/tqq_schema.h"
#include "synth/planted_target.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

// Paper Table 1 (percent) in TqqLinkTypeSubsets() row order; columns are
// max distances 1, 2, 3.
constexpr std::array<std::array<double, 3>, 15> kPaperTable1 = {{
    {84.4, 93.8, 93.8},  // f
    {85.4, 93.6, 93.8},  // m
    {87.6, 93.6, 93.9},  // c
    {90.2, 94.2, 94.3},  // r
    {96.0, 98.5, 98.6},  // f-m
    {95.6, 98.5, 98.5},  // f-c
    {96.8, 98.5, 98.5},  // f-r
    {89.9, 94.0, 94.2},  // m-c
    {91.2, 94.4, 94.5},  // m-r
    {91.8, 94.4, 94.5},  // c-r
    {96.5, 98.5, 98.6},  // f-m-c
    {96.9, 98.6, 98.6},  // f-m-r
    {96.8, 98.6, 98.6},  // f-c-r
    {92.3, 94.5, 94.6},  // m-c-r
    {96.9, 98.6, 98.6},  // f-m-c-r
}};

void PrintRiskMetricAnchor() {
  // Section 1.2 / 4.2: R(T1000) = 0.001, R(T2) = 0.5; after injecting the
  // unique tuple t*: 2/1001 and 501/1001.
  std::vector<uint64_t> t1000(1000, 42);
  std::vector<uint64_t> t2;
  for (uint64_t p = 0; p < 500; ++p) {
    t2.push_back(p);
    t2.push_back(p);
  }
  std::printf("Risk metric anchor (Sections 1.2/4.2):\n");
  std::printf("  R(T1000) = %.4f (paper: 0.0010)   R(T2) = %.4f (paper: "
              "0.5000)\n",
              core::DatasetRisk(t1000), core::DatasetRisk(t2));
  t1000.push_back(4242);
  t2.push_back(4242);
  std::printf("  R(T1000*) = %.6f (paper: %.6f)   R(T2*) = %.6f (paper: "
              "%.6f)\n\n",
              core::DatasetRisk(t1000), 2.0 / 1001.0, core::DatasetRisk(t2),
              501.0 / 1001.0);
}

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target graph density (paper: 0.01)");
  flags.Define("max_distance", "3", "largest max distance to evaluate");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  PrintRiskMetricAnchor();

  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto dataset = synth::BuildPlantedDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& target = dataset.value().target;
  const int max_distance = static_cast<int>(flags.GetInt("max_distance"));

  std::printf("Table 1: privacy risk (%%) of the anonymized t.qq target "
              "(density %.3f, size %zu) vs. utilized link types\n",
              dataset.value().target_density, target.num_vertices());

  // Distance-0 row (the paper's footnote: risk is always 1.1%).
  core::SignatureOptions base_options;
  base_options.attributes = {hin::kTagCountAttr};
  const auto distance0 = core::NetworkPrivacyRisk(target, base_options, 0);
  std::printf("n = 0 (profiles only): measured %s%%, paper 1.1%%\n\n",
              bench::Pct(distance0[0].risk).c_str());

  std::vector<std::string> header = {"links"};
  for (int n = 1; n <= max_distance; ++n) {
    header.push_back("n=" + std::to_string(n));
    header.push_back("paper");
  }
  util::TablePrinter table(header);

  const auto subsets = eval::TqqLinkTypeSubsets();
  // Figure 7 aggregation: mean risk per subset size.
  std::map<size_t, std::vector<util::RunningStats>> figure7;
  for (size_t row = 0; row < subsets.size(); ++row) {
    core::SignatureOptions options = base_options;
    options.link_types = subsets[row].link_types;
    const auto ladder =
        core::NetworkPrivacyRisk(target, options, max_distance);
    std::vector<std::string> cells = {subsets[row].label};
    auto& stats = figure7[subsets[row].link_types.size()];
    stats.resize(max_distance);
    for (int n = 1; n <= max_distance; ++n) {
      cells.push_back(bench::Pct(ladder[n].risk));
      cells.push_back(n <= 3 ? util::FormatDouble(kPaperTable1[row][n - 1], 1)
                             : "-");
      stats[n - 1].Add(ladder[n].risk);
    }
    table.AddRow(std::move(cells));
  }
  if (flags.GetBool("tsv")) {
    table.PrintTsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  std::printf("\nFigure 7: mean privacy risk (%%) by number of utilized "
              "link types\n");
  util::TablePrinter figure({"#link types", "n=1", "n=2", "n=3"});
  for (const auto& [size, stats] : figure7) {
    std::vector<std::string> cells = {std::to_string(size)};
    for (int n = 0; n < max_distance && n < 3; ++n) {
      cells.push_back(bench::Pct(stats[n].mean()));
    }
    while (cells.size() < 4) cells.push_back("-");
    figure.AddRow(std::move(cells));
  }
  figure.Print(std::cout);
  std::printf("\nExpected shape: risk grows with more link types and "
              "saturates beyond n = 1 (bottleneck scenarios, Section 4.4).\n");
  return 0;
}
