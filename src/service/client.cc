#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/json.h"

namespace hinpriv::service {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 1);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("unparseable IPv4 host '" + host +
                                         "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const util::Status status = util::Status::IoError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  // Frames are written as a 4-byte length prefix then the payload; with
  // Nagle enabled the payload write stalls on the peer's delayed ACK of
  // the prefix (~40ms per request).
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

util::Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  HINPRIV_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request).Serialize()));
  // Read until our id comes back. A single synchronous client only ever
  // has one request outstanding, so in practice the first frame is ours;
  // the loop makes the matching robust anyway.
  while (true) {
    auto frame = ReadFrame(fd_);
    if (!frame.ok()) return frame.status();
    if (!frame.value().has_value()) {
      return util::Status::IoError("server closed connection mid-call");
    }
    auto doc = JsonValue::Parse(*frame.value());
    if (!doc.ok()) return doc.status();
    auto response = DecodeResponse(doc.value());
    if (!response.ok()) return response.status();
    if (response.value().id == request.id) return response;
  }
}

util::Result<Response> Client::AttackOne(hin::VertexId target,
                                         int max_distance,
                                         double deadline_ms) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kAttackOne;
  request.target = target;
  request.has_target = true;
  request.max_distance = max_distance;
  request.deadline_ms = deadline_ms;
  return Call(request);
}

util::Result<Response> Client::NetworkRisk(int max_distance) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kRisk;
  request.max_distance = max_distance;
  return Call(request);
}

util::Result<Response> Client::EntityRisk(hin::VertexId target,
                                          int max_distance) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kRisk;
  request.target = target;
  request.has_target = true;
  request.max_distance = max_distance;
  return Call(request);
}

util::Result<Response> Client::Stats() {
  Request request;
  request.id = next_id_++;
  request.method = Method::kStats;
  return Call(request);
}

util::Result<Response> Client::Sleep(double sleep_ms, double deadline_ms) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kSleep;
  request.sleep_ms = sleep_ms;
  request.deadline_ms = deadline_ms;
  return Call(request);
}

util::Result<Response> Client::Health() {
  Request request;
  request.id = next_id_++;
  request.method = Method::kHealth;
  return Call(request);
}

util::Result<Response> Client::Metrics(const std::string& path) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kMetrics;
  request.path = path;
  return Call(request);
}

util::Result<Response> Client::TraceStart() {
  Request request;
  request.id = next_id_++;
  request.method = Method::kTraceStart;
  return Call(request);
}

util::Result<Response> Client::TraceStop() {
  Request request;
  request.id = next_id_++;
  request.method = Method::kTraceStop;
  return Call(request);
}

util::Result<Response> Client::TraceDump(const std::string& path) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kTraceDump;
  request.path = path;
  return Call(request);
}

util::Result<Response> Client::ApplyDelta(const std::string& path,
                                          double deadline_ms) {
  Request request;
  request.id = next_id_++;
  request.method = Method::kApplyDelta;
  request.path = path;
  request.deadline_ms = deadline_ms;
  return Call(request);
}

}  // namespace hinpriv::service
