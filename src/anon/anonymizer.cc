#include "anon/anonymizer.h"

#include <numeric>

#include "hin/graph_builder.h"

namespace hinpriv::anon {

util::Result<AnonymizedGraph> PermuteVertices(const hin::Graph& target,
                                              util::Rng* rng) {
  const size_t n = target.num_vertices();
  // to_original[new_id] = old_id, a uniform random permutation: this is the
  // KDD Cup style replacement of user ids by meaningless random strings.
  std::vector<hin::VertexId> to_original(n);
  std::iota(to_original.begin(), to_original.end(), 0);
  rng->Shuffle(&to_original);
  std::vector<hin::VertexId> to_new(n);
  for (hin::VertexId new_id = 0; new_id < n; ++new_id) {
    to_new[to_original[new_id]] = new_id;
  }

  hin::GraphBuilder builder(target.schema());
  for (hin::VertexId new_id = 0; new_id < n; ++new_id) {
    const hin::VertexId old_id = to_original[new_id];
    const hin::EntityTypeId t = target.entity_type(old_id);
    if (builder.AddVertex(t) != new_id) {
      return util::Status::FailedPrecondition("vertex id mismatch");
    }
    const size_t num_attrs = target.num_attributes(t);
    for (hin::AttributeId a = 0; a < num_attrs; ++a) {
      HINPRIV_RETURN_IF_ERROR(
          builder.SetAttribute(new_id, a, target.attribute(old_id, a)));
    }
  }
  for (hin::LinkTypeId lt = 0; lt < target.num_link_types(); ++lt) {
    for (hin::VertexId old_src = 0; old_src < n; ++old_src) {
      for (const hin::Edge& e : target.OutEdges(lt, old_src)) {
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(
            to_new[old_src], to_new[e.neighbor], lt, e.strength));
      }
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(), std::move(to_original)};
}

}  // namespace hinpriv::anon
