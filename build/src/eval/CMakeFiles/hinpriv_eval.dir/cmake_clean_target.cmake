file(REMOVE_RECURSE
  "libhinpriv_eval.a"
)
