#ifndef HINPRIV_CORE_ANONYMITY_METRICS_H_
#define HINPRIV_CORE_ANONYMITY_METRICS_H_

#include <cstdint>
#include <map>
#include <span>

#include "util/status.h"

namespace hinpriv::core {

// Classical relational anonymity metrics (Section 2.1), provided so the
// privacy-risk metric can be contrasted against them — Section 1.2 argues
// k-anonymity cannot differentiate datasets once a single unique tuple is
// injected, while R(T) degrades gracefully. The unit tests reproduce that
// argument numerically.

// k-anonymity of a dataset described by (hashed) quasi-identifier values:
// the size of the smallest equivalence class. 0 for an empty dataset.
size_t KAnonymity(std::span<const uint64_t> quasi_identifiers);

// Histogram of anonymity-set sizes: for each equivalence-class size k, how
// many *tuples* live in classes of that size. The k-anonymity above is the
// smallest key; the privacy risk R(T) is sum over classes of 1/N.
std::map<size_t, size_t> AnonymitySetHistogram(
    std::span<const uint64_t> quasi_identifiers);

// Distinct l-diversity: the minimum, over quasi-identifier equivalence
// classes, of the number of distinct sensitive values in the class.
// `sensitive` must parallel `quasi_identifiers`.
util::Result<size_t> LDiversity(std::span<const uint64_t> quasi_identifiers,
                                std::span<const uint64_t> sensitive);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_ANONYMITY_METRICS_H_
