#include "synth/tqq_generator.h"

#include <gtest/gtest.h>

#include "hin/projection.h"
#include "hin/tqq_schema.h"
#include "util/random.h"

namespace hinpriv::synth {
namespace {

TEST(TqqGeneratorTest, ProducesTargetSchemaGraph) {
  TqqConfig config;
  config.num_users = 2000;
  util::Rng rng(1);
  auto graph = GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().num_vertices(), 2000u);
  EXPECT_EQ(graph.value().num_link_types(), hin::kNumTqqLinkTypes);
  EXPECT_GT(graph.value().num_edges(), 0u);
  EXPECT_EQ(graph.value().schema().entity_type(0).name, hin::kUserType);
}

TEST(TqqGeneratorTest, DeterministicForSameSeed) {
  TqqConfig config;
  config.num_users = 500;
  util::Rng rng1(7);
  util::Rng rng2(7);
  auto a = GenerateTqqNetwork(config, &rng1);
  auto b = GenerateTqqNetwork(config, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().num_edges(), b.value().num_edges());
  for (hin::VertexId v = 0; v < 500; ++v) {
    for (hin::AttributeId attr = 0; attr < 4; ++attr) {
      ASSERT_EQ(a.value().attribute(v, attr), b.value().attribute(v, attr));
    }
    for (hin::LinkTypeId lt = 0; lt < hin::kNumTqqLinkTypes; ++lt) {
      const auto ea = a.value().OutEdges(lt, v);
      const auto eb = b.value().OutEdges(lt, v);
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]);
    }
  }
}

TEST(TqqGeneratorTest, FollowStrengthsAreOne) {
  TqqConfig config;
  config.num_users = 1000;
  util::Rng rng(3);
  auto graph = GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  for (hin::VertexId v = 0; v < graph.value().num_vertices(); ++v) {
    for (const hin::Edge& e : graph.value().OutEdges(hin::kFollowLink, v)) {
      ASSERT_EQ(e.strength, 1u);
    }
  }
}

TEST(TqqGeneratorTest, WeightedLinksHaveStrengthTail) {
  TqqConfig config;
  config.num_users = 2000;
  util::Rng rng(4);
  auto graph = GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  size_t ones = 0;
  size_t heavy = 0;
  size_t total = 0;
  for (hin::VertexId v = 0; v < graph.value().num_vertices(); ++v) {
    for (const hin::Edge& e : graph.value().OutEdges(hin::kMentionLink, v)) {
      ++total;
      if (e.strength == 1) ++ones;
      if (e.strength >= 5) ++heavy;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(ones * 2, total);  // strength 1 dominates
  EXPECT_GT(heavy, 0u);        // but heavier interactions exist
}

TEST(TqqGeneratorTest, PopularityHubsReceiveMoreInEdges) {
  TqqConfig config;
  config.num_users = 5000;
  util::Rng rng(5);
  auto graph = GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  size_t in_low_ids = 0;
  size_t in_high_ids = 0;
  for (hin::VertexId v = 0; v < 5000; ++v) {
    size_t in = 0;
    for (hin::LinkTypeId lt = 0; lt < hin::kNumTqqLinkTypes; ++lt) {
      in += graph.value().InDegree(lt, v);
    }
    if (v < 500) in_low_ids += in;
    if (v >= 4500) in_high_ids += in;
  }
  // Preferential attachment: the lowest-id decile dwarfs the highest.
  EXPECT_GT(in_low_ids, in_high_ids * 5);
}

TEST(TqqGeneratorTest, RejectsTinyNetworks) {
  TqqConfig config;
  config.num_users = 1;
  util::Rng rng(6);
  EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
}

TEST(TqqGeneratorTest, RejectsInvalidDistributionParameters) {
  util::Rng rng(6);
  {
    TqqConfig config;
    config.num_genders = 0;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
  {
    TqqConfig config;
    config.yob_min = 2000;
    config.yob_max = 1990;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
  {
    TqqConfig config;
    config.out_degree_alpha = 1.0;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
  {
    TqqConfig config;
    config.strength_max = 0;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
  {
    TqqConfig config;
    config.zero_degree_prob = 1.5;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
  {
    TqqConfig config;
    config.tag_count_max = -1;
    EXPECT_FALSE(GenerateTqqNetwork(config, &rng).ok());
  }
}

TEST(TqqGeneratorTest, NoSelfLinks) {
  TqqConfig config;
  config.num_users = 1000;
  util::Rng rng(8);
  auto graph = GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  for (hin::VertexId v = 0; v < graph.value().num_vertices(); ++v) {
    for (hin::LinkTypeId lt = 0; lt < hin::kNumTqqLinkTypes; ++lt) {
      ASSERT_FALSE(graph.value().HasEdge(lt, v, v));
    }
  }
}

TEST(TqqFullGeneratorTest, ProducesConsistentFullNetwork) {
  TqqFullConfig config;
  config.num_users = 150;
  util::Rng rng(9);
  auto graph = GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const hin::Graph& g = graph.value();
  const auto& schema = g.schema();
  const hin::EntityTypeId user = schema.FindEntityType(hin::kUserType);
  const hin::EntityTypeId tweet = schema.FindEntityType(hin::kTweetType);
  EXPECT_EQ(g.NumVerticesOfType(user), 150u);
  EXPECT_GT(g.NumVerticesOfType(tweet), 0u);

  // tweet_count attribute equals the number of post_tweet edges.
  const hin::LinkTypeId post_tweet = schema.FindLinkType("post_tweet");
  for (hin::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.entity_type(v) != user) continue;
    ASSERT_EQ(static_cast<size_t>(g.attribute(v, hin::kTweetCountAttr)),
              g.OutDegree(post_tweet, v));
  }
}

TEST(TqqFullGeneratorTest, ProjectsToTargetSchemaGraph) {
  TqqFullConfig config;
  config.num_users = 120;
  util::Rng rng(10);
  auto full = GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(full.ok());
  auto projected =
      hin::ProjectGraph(full.value(), hin::TqqTargetSpec(full.value().schema()));
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  EXPECT_EQ(projected.value().graph.num_vertices(), 120u);
  EXPECT_EQ(projected.value().graph.num_link_types(), hin::kNumTqqLinkTypes);
  // Mentions exist in the full graph, so some must survive projection.
  EXPECT_GT(projected.value().graph.num_edges(), 0u);
}

}  // namespace
}  // namespace hinpriv::synth
