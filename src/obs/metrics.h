#ifndef HINPRIV_OBS_METRICS_H_
#define HINPRIV_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace hinpriv::obs {

// Lock-free metrics instruments for the DeHIN pipeline. Each instrument
// stripes its state over kMetricShards cache-line-sized cells; a thread is
// pinned to one cell on first use (round-robin, same striping discipline as
// core::MatchCache but without the locks), so concurrent updates from the
// EvaluateAttackParallel workers never contend or false-share. Reads
// (Value(), MetricsRegistry::Snapshot()) sum over the shards; they are
// racy-but-atomic per cell, which is exactly the monotone-counter contract
// the exporters need.
//
// Instrument handles are stable for the life of the registry: resolve once
// (static local or member), then update through the pointer on the hot path.
inline constexpr size_t kMetricShards = 16;

namespace internal {

// One cache line per shard cell so writers on different shards never
// invalidate each other.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

// The calling thread's shard index, assigned round-robin on first use and
// cached in a thread_local. Threads beyond kMetricShards share cells —
// updates stay lock-free, they just ride the same cache line.
size_t ThisThreadShard();

}  // namespace internal

// Monotone counter. Add() is one relaxed fetch_add on the caller's shard.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Sum over shards; monotone between updates.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const internal::ShardCell& cell : shards_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (internal::ShardCell& cell : shards_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<internal::ShardCell, kMetricShards> shards_;
};

// Last-writer-wins scalar. Set() is rare (progress fractions, config
// facts), so a single atomic cell suffices.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

// Log2-bucketed histogram of nonnegative integer samples (candidate-set
// sizes, bipartite dimensions, ...). Bucket 0 holds exactly the value 0;
// bucket b in [1, 64] holds [2^(b-1), 2^b - 1], so the full uint64 range is
// covered with no overflow bucket. Record() is three relaxed adds on the
// caller's shard (bucket count, total count, sum) plus two relaxed CAS
// min/max updates.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // 0 -> 0; v >= 1 -> floor(log2(v)) + 1.
  static size_t BucketIndex(uint64_t v) {
    return v == 0 ? 0 : 64 - static_cast<size_t>(std::countl_zero(v));
  }
  // Inclusive bounds of bucket b.
  static uint64_t BucketLow(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t BucketHigh(size_t b) {
    if (b == 0) return 0;
    if (b == 64) return std::numeric_limits<uint64_t>::max();
    return (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t v) {
    Shard& shard = shards_[internal::ThisThreadShard()];
    shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(&shard.min, v);
    AtomicMax(&shard.max, v);
  }

  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  friend struct HistogramSnapshot;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{std::numeric_limits<uint64_t>::max()};
    std::atomic<uint64_t> max{0};
  };

  static void AtomicMin(std::atomic<uint64_t>* cell, uint64_t v) {
    uint64_t cur = cell->load(std::memory_order_relaxed);
    while (v < cur &&
           !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* cell, uint64_t v) {
    uint64_t cur = cell->load(std::memory_order_relaxed);
    while (v > cur &&
           !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

// --- snapshots --------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Linear interpolation inside the winning log2 bucket, clamped to the
  // observed [min, max]. p in [0, 100]; 0.0 for an empty histogram.
  double Percentile(double p) const;
};

// Point-in-time aggregate of every registered instrument, sorted by name
// within each kind so the JSON export is stable and diffable.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Convenience lookups for tests and differential checks; 0 / nullptr when
  // the instrument is absent.
  uint64_t CounterValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  // {"schema": "hinpriv-metrics-v1", "counters": {...}, "gauges": {...},
  //  "histograms": {name: {count, sum, mean, min, max, p50, p90, p99,
  //                        buckets: [{lo, hi, count}, ...nonzero...]}}}
  std::string ToJson() const;
};

// Named-instrument registry. Registration (Get*) takes a mutex and is meant
// for cold paths; the returned pointers are stable until the registry dies,
// so hot paths cache them. One process-wide instance backs the pipeline
// (MetricsRegistry::Global()); tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // Finds or creates; a name maps to the same instrument forever. Asserts
  // in debug mode if the name is already bound to a different kind.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument (handles stay valid). For per-run deltas and
  // test isolation; not thread-safe against concurrent updates in the sense
  // that racing increments may survive the reset — callers quiesce first.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Writes snapshot.ToJson() to `path`.
util::Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                              const std::string& path);

}  // namespace hinpriv::obs

#endif  // HINPRIV_OBS_METRICS_H_
