#include "hin/snapshot.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/io.h"
#include "hin/tqq_schema.h"
#include "obs/metrics.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_link_types(), b.num_link_types());
  ASSERT_EQ(a.schema().num_entity_types(), b.schema().num_entity_types());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.entity_type(v), b.entity_type(v));
    ASSERT_EQ(a.dense_index(v), b.dense_index(v));
    const size_t num_attrs = a.num_attributes(a.entity_type(v));
    for (AttributeId attr = 0; attr < num_attrs; ++attr) {
      ASSERT_EQ(a.attribute(v, attr), b.attribute(v, attr));
    }
    for (LinkTypeId lt = 0; lt < a.num_link_types(); ++lt) {
      const auto out_a = a.OutEdges(lt, v);
      const auto out_b = b.OutEdges(lt, v);
      ASSERT_EQ(out_a.size(), out_b.size());
      for (size_t i = 0; i < out_a.size(); ++i) ASSERT_EQ(out_a[i], out_b[i]);
      const auto in_a = a.InEdges(lt, v);
      const auto in_b = b.InEdges(lt, v);
      ASSERT_EQ(in_a.size(), in_b.size());
      for (size_t i = 0; i < in_a.size(); ++i) ASSERT_EQ(in_a[i], in_b[i]);
    }
  }
}

Graph GenerateNetwork(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(SnapshotTest, RoundTripSyntheticNetwork) {
  const Graph graph = GenerateNetwork(800, 1);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_rt.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().is_mapped());
  EXPECT_FALSE(graph.is_mapped());
  ExpectGraphsEqual(graph, loaded.value());
}

TEST(SnapshotTest, RoundTripMultiEntityNetwork) {
  synth::TqqFullConfig config;
  config.num_users = 80;
  util::Rng rng(2);
  auto graph = synth::GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_full.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph.value(), path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(graph.value(), loaded.value());
  EXPECT_EQ(loaded.value().schema().FindEntityType(kTweetType),
            graph.value().schema().FindEntityType(kTweetType));
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(TqqTargetSchema());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_empty.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph.value(), path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices(), 0u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
}

TEST(SnapshotTest, VerifyEdgesAcceptsWellFormedSnapshot) {
  const Graph graph = GenerateNetwork(300, 3);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_verify.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph, path).ok());
  SnapshotOptions options;
  options.verify_edges = true;
  options.populate = true;
  auto loaded = LoadGraphSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(graph, loaded.value());
}

TEST(SnapshotTest, MlockRequestIsSoft) {
  const Graph graph = GenerateNetwork(100, 4);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_mlock.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph, path).ok());
  SnapshotOptions options;
  options.mlock = true;
  // mlock may fail under RLIMIT_MEMLOCK; the load must succeed regardless.
  auto loaded = LoadGraphSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(graph, loaded.value());
}

TEST(SnapshotTest, LoadGraphAutoSniffsSnapshotMagic) {
  const Graph graph = GenerateNetwork(200, 5);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_auto.snap";
  ASSERT_TRUE(SaveGraphAuto(graph, path).ok());  // .snap => snapshot format
  ASSERT_TRUE(SnapshotMagicMatches(path));
  auto loaded = LoadGraphAuto(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().is_mapped());
  ExpectGraphsEqual(graph, loaded.value());
}

TEST(SnapshotTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadGraphSnapshot("/no/such/file.snap").status().code(),
            util::Status::Code::kIoError);
}

TEST(SnapshotTest, MappedGraphSurvivesMove) {
  const Graph graph = GenerateNetwork(150, 6);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_move.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph, path).ok());
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  // Spans point into the mapping; moving the Graph moves ownership of the
  // mapping without remapping, so views taken before the move stay valid.
  const auto before = loaded.value().OutEdges(0, 0);
  Graph moved = std::move(loaded).value();
  const auto after = moved.OutEdges(0, 0);
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(before.data(), after.data());
}

TEST(SnapshotTest, LoadRecordsMetrics) {
  const Graph graph = GenerateNetwork(100, 7);
  const std::string path = testing::TempDir() + "/hinpriv_snapshot_obs.snap";
  ASSERT_TRUE(SaveGraphSnapshot(graph, path).ok());
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t loads_before =
      registry.GetCounter("hin/snapshot_loads")->Value();
  const uint64_t bytes_before =
      registry.GetCounter("hin/snapshot_bytes_mapped")->Value();
  auto loaded = LoadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(registry.GetCounter("hin/snapshot_loads")->Value(),
            loads_before + 1);
  EXPECT_GT(registry.GetCounter("hin/snapshot_bytes_mapped")->Value(),
            bytes_before);
}

}  // namespace
}  // namespace hinpriv::hin
