file(REMOVE_RECURSE
  "CMakeFiles/growth_test.dir/synth/growth_test.cc.o"
  "CMakeFiles/growth_test.dir/synth/growth_test.cc.o.d"
  "growth_test"
  "growth_test.pdb"
  "growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
