// Differential proof for the incremental warm-state path: a Dehin that
// absorbs growth batches via ApplyAuxDelta must answer Deanonymize and
// DeanonymizeParallel bit-identically to a Dehin constructed from scratch
// over the grown graph, after every batch, for every target vertex. The
// incremental instance is queried *before* each batch too, so its match
// cache holds entries the epoch invalidation must correctly retire (a
// wholesale flush would also pass this test, but serving stale entries
// cannot).

#include <vector>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "core/dehin.h"
#include "hin/graph.h"
#include "hin/graph_builder.h"
#include "hin/graph_delta.h"
#include "synth/growth.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

hin::Graph MakeAux(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

hin::Graph AnonymizedFrom(const hin::Graph& aux, uint64_t seed) {
  anon::KddAnonymizer anonymizer;
  util::Rng rng(seed);
  auto published = anonymizer.Anonymize(aux, &rng);
  EXPECT_TRUE(published.ok());
  return std::move(published.value().graph);
}

void ExpectIdenticalToFresh(const Dehin& incremental, const hin::Graph& aux,
                            const hin::Graph& target,
                            const DehinConfig& config) {
  Dehin fresh(&aux, config);
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    const auto warm = incremental.Deanonymize(target, vt);
    const auto cold = fresh.Deanonymize(target, vt);
    ASSERT_EQ(warm, cold) << "serial answers diverge at target vertex " << vt;
    auto warm_par = incremental.DeanonymizeParallel(target, vt,
                                                    config.max_distance);
    auto cold_par = fresh.DeanonymizeParallel(target, vt,
                                              config.max_distance);
    ASSERT_TRUE(warm_par.ok());
    ASSERT_TRUE(cold_par.ok());
    ASSERT_EQ(warm_par.value(), cold_par.value())
        << "parallel answers diverge at target vertex " << vt;
    ASSERT_EQ(warm, warm_par.value())
        << "serial/parallel diverge at target vertex " << vt;
  }
}

void RunBatches(DehinConfig config, size_t num_users, size_t batches) {
  hin::Graph aux = MakeAux(num_users, 51);
  const hin::Graph target = AnonymizedFrom(aux, 52);

  Dehin incremental(&aux, config);
  // Warm the shared match cache so the batches below have real entries to
  // invalidate (and real survivors to keep serving).
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    (void)incremental.Deanonymize(target, vt);
  }

  synth::GrowthConfig growth;  // defaults: every growth channel fires
  util::Rng rng(53);
  for (size_t b = 0; b < batches; ++b) {
    auto delta =
        synth::SampleGrowthDelta(aux, growth, synth::TqqConfig{}, &rng);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(hin::GraphBuilder::ApplyDelta(&aux, delta.value()).ok());
    ASSERT_TRUE(incremental.ApplyAuxDelta(delta.value()).ok());
    ExpectIdenticalToFresh(incremental, aux, target, config);
  }
}

TEST(DehinDeltaDifferentialTest, AnswersMatchFreshRebuildEveryBatch) {
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  RunBatches(config, /*num_users=*/300, /*batches=*/3);
}

// Distance 2 exercises depth-2 cache entries, whose dirty set is the
// delta's 2-hop closure — the radius computation, not just the 1-hop base
// case.
TEST(DehinDeltaDifferentialTest, AnswersMatchAtDistanceTwo) {
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 2;
  RunBatches(config, /*num_users=*/120, /*batches=*/2);
}

// With the ablations off, ApplyAuxDelta maintains only the graph-derived
// state that still exists; the answers must stay identical through the
// plain scan path.
TEST(DehinDeltaDifferentialTest, AnswersMatchWithoutIndexAndCache) {
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  config.use_candidate_index = false;
  config.use_shared_cache = false;
  RunBatches(config, /*num_users=*/150, /*batches=*/2);
}

}  // namespace
}  // namespace hinpriv::core
