file(REMOVE_RECURSE
  "CMakeFiles/parallel_metrics_test.dir/eval/parallel_metrics_test.cc.o"
  "CMakeFiles/parallel_metrics_test.dir/eval/parallel_metrics_test.cc.o.d"
  "parallel_metrics_test"
  "parallel_metrics_test.pdb"
  "parallel_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
