#include "eval/parallel_metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hinpriv::eval {

AttackMetrics EvaluateAttackParallel(
    const core::Dehin& dehin, const hin::Graph& target,
    const std::vector<hin::VertexId>& ground_truth, int max_distance,
    const ParallelEvalOptions& options) {
  HINPRIV_SPAN("eval/attack_parallel");
  AttackMetrics metrics;
  metrics.num_targets = target.num_vertices();
  if (metrics.num_targets == 0) return metrics;
  // Mismatched inputs would read ground_truth[vt] out of bounds in the
  // workers; validate up front (same contract as the serial
  // EvaluateAttack) and report "nothing evaluated".
  if (ground_truth.size() < target.num_vertices()) {
    std::fprintf(stderr,
                 "EvaluateAttackParallel: ground truth covers %zu of %zu "
                 "target vertices; refusing to evaluate\n",
                 ground_truth.size(),
                 static_cast<size_t>(target.num_vertices()));
    return AttackMetrics{};
  }
  const core::DehinStats stats_before = dehin.stats();

  // Executor selection: explicit handle, else the shared global pool
  // (num_threads == 0), else a transient pool of the requested size —
  // clamped to the target count, since extra workers could never claim a
  // target.
  exec::Executor* executor = options.executor;
  std::unique_ptr<exec::Executor> transient;
  if (executor == nullptr) {
    if (options.num_threads == 0) {
      executor = &exec::Executor::Global();
    } else {
      transient = std::make_unique<exec::Executor>(
          std::min(exec::ResolveThreads(options.num_threads),
                   static_cast<size_t>(metrics.num_targets)));
      executor = transient.get();
    }
  }

  // Per-target result slots. Workers fill disjoint indices; the serial
  // reduction below walks them in target order, so the floating-point
  // sums are bit-identical to the serial EvaluateAttack.
  const size_t num_targets = metrics.num_targets;
  std::vector<size_t> candidate_counts(num_targets, 0);
  std::vector<uint8_t> contains_truth(num_targets, 0);

  // Heartbeat state shared by the workers: whichever worker first notices
  // the interval elapsed claims the beat with a CAS and prints one line,
  // so long runs emit a liveness signal without a dedicated reporter
  // thread.
  using Clock = std::chrono::steady_clock;
  const int64_t heartbeat_ns =
      static_cast<int64_t>(options.heartbeat_seconds * 1e9);
  const Clock::time_point run_start = Clock::now();
  std::atomic<int64_t> last_beat_ns{0};
  std::atomic<size_t> completed{0};
  obs::Gauge* progress_gauge =
      obs::MetricsRegistry::Global().GetGauge("eval/progress");
  progress_gauge->Set(0.0);

  exec::ParallelForOptions pf_options;
  // Grain of one target: the whole point of dynamic claiming is that a
  // degree-skewed straggler target occupies one worker while the rest of
  // the pool drains everything else.
  pf_options.grain = 1;
  pf_options.cancel = options.cancel;
  const exec::ParallelForResult run = executor->ParallelFor(
      num_targets,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const auto vt = static_cast<hin::VertexId>(i);
          const auto candidates = dehin.Deanonymize(target, vt, max_distance);
          candidate_counts[i] = candidates.size();
          contains_truth[i] =
              std::binary_search(candidates.begin(), candidates.end(),
                                 ground_truth[vt])
                  ? 1
                  : 0;
          const size_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (heartbeat_ns > 0) {
            const int64_t elapsed_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - run_start)
                    .count();
            int64_t last = last_beat_ns.load(std::memory_order_relaxed);
            if (elapsed_ns - last >= heartbeat_ns &&
                last_beat_ns.compare_exchange_strong(
                    last, elapsed_ns, std::memory_order_relaxed)) {
              const double fraction =
                  static_cast<double>(done) / static_cast<double>(num_targets);
              progress_gauge->Set(fraction);
              std::fprintf(stderr,
                           "[hinpriv] attack progress: %zu/%zu targets "
                           "(%.1f%%), %.1fs elapsed\n",
                           done, num_targets, 100.0 * fraction,
                           static_cast<double>(elapsed_ns) / 1e9);
            }
          }
        }
      },
      pf_options);
  progress_gauge->Set(1.0);

  // Serial reduction over the evaluated prefix, in target order — the
  // same association the serial evaluator uses.
  metrics.num_evaluated = run.completed;
  const double aux_size =
      static_cast<double>(dehin.auxiliary().num_vertices());
  double reduction_sum = 0.0;
  double candidate_sum = 0.0;
  for (size_t i = 0; i < run.completed; ++i) {
    if (contains_truth[i]) ++metrics.num_containing_truth;
    if (contains_truth[i] && candidate_counts[i] == 1) {
      ++metrics.num_unique_correct;
    }
    reduction_sum += 1.0 - static_cast<double>(candidate_counts[i]) / aux_size;
    candidate_sum += static_cast<double>(candidate_counts[i]);
  }
  metrics.interrupted = metrics.num_evaluated < metrics.num_targets;
  // Rates over what was actually scored, so an interrupted run reports
  // the evaluated prefix rather than diluting by unvisited targets.
  const double n =
      static_cast<double>(std::max<size_t>(1, metrics.num_evaluated));
  metrics.precision = static_cast<double>(metrics.num_unique_correct) / n;
  metrics.reduction_rate = reduction_sum / n;
  metrics.mean_candidate_count = candidate_sum / n;
  metrics.dehin_stats = dehin.stats() - stats_before;
  return metrics;
}

}  // namespace hinpriv::eval
