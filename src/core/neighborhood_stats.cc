#include "core/neighborhood_stats.h"

#include <algorithm>

namespace hinpriv::core {

NeighborhoodStats::NeighborhoodStats(
    const hin::Graph& graph, const std::vector<hin::LinkTypeId>& link_types,
    bool use_in_edges) {
  const size_t n = graph.num_vertices();
  num_slots_ = link_types.size() * (use_in_edges ? 2 : 1);
  offsets_stride_ = n + 1;
  offsets_.Reset(num_slots_ * offsets_stride_);

  // Pass 1: per-slot degrees -> one absolute offset table over the shared
  // strengths arena (slot boundaries are just where the previous slot's
  // running total left off).
  uint64_t total = 0;
  size_t slot = 0;
  auto lay_out_slot = [&](hin::LinkTypeId lt, bool incoming) {
    uint64_t* off = offsets_.data() + slot * offsets_stride_;
    for (hin::VertexId v = 0; v < n; ++v) {
      off[v] = total;
      total += incoming ? graph.InDegree(lt, v) : graph.OutDegree(lt, v);
    }
    off[n] = total;
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types) {
    lay_out_slot(lt, /*incoming=*/false);
    if (use_in_edges) lay_out_slot(lt, /*incoming=*/true);
  }

  // Pass 2: fill and sort each vertex's strength run in place.
  strengths_.Reset(total);
  slot = 0;
  auto fill_slot = [&](hin::LinkTypeId lt, bool incoming) {
    const uint64_t* off = SlotOffsets(slot);
    for (hin::VertexId v = 0; v < n; ++v) {
      const auto edges =
          incoming ? graph.InEdges(lt, v) : graph.OutEdges(lt, v);
      hin::Strength* out = strengths_.data() + off[v];
      for (size_t i = 0; i < edges.size(); ++i) out[i] = edges[i].strength;
      std::sort(out, out + edges.size());
    }
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types) {
    fill_slot(lt, /*incoming=*/false);
    if (use_in_edges) fill_slot(lt, /*incoming=*/true);
  }
}

bool NeighborhoodStats::StrengthMultisetDominates(
    std::span<const hin::Strength> target_sorted,
    std::span<const hin::Strength> aux_sorted, bool growth_aware) {
  const size_t k = target_sorted.size();
  const size_t m = aux_sorted.size();
  if (m < k) return false;
  if (growth_aware) {
    // The i-th smallest of the k largest auxiliary strengths dominates the
    // i-th smallest strength of ANY k-subset, so if even that assignment
    // fails somewhere, no injective aux >= target assignment exists.
    for (size_t i = 0; i < k; ++i) {
      if (aux_sorted[m - k + i] < target_sorted[i]) return false;
    }
    return true;
  }
  // Exact semantics: every target strength needs a distinct equal auxiliary
  // strength, i.e. multiset containment; merged scan over the sorted spans.
  size_t j = 0;
  for (size_t i = 0; i < k; ++i) {
    while (j < m && aux_sorted[j] < target_sorted[i]) ++j;
    if (j == m || aux_sorted[j] != target_sorted[i]) return false;
    ++j;
  }
  return true;
}

}  // namespace hinpriv::core
