#ifndef HINPRIV_HIN_IO_H_
#define HINPRIV_HIN_IO_H_

#include <iosfwd>
#include <string>

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::hin {

// Text serialization of a Graph (schema + vertices + edges), versioned and
// self-describing. The format mirrors the layout of the released t.qq
// files: one profile row per vertex, one interaction row per edge, grouped
// by link type. The loader validates every count, id, and link-type
// endpoint so corrupted or truncated files surface as Status errors, never
// as undefined behaviour.
//
//   hinpriv-graph 1
//   entity_types <count>
//     <name> <num_attributes>
//     attr <name> <growable 0|1>         (x num_attributes)
//   link_types <count>
//     <name> <src> <dst> <has_strength 0|1> <growable 0|1> <self 0|1>
//   vertices <count>
//     <entity_type> <attr_0> ... <attr_k>
//   edges <link_type> <count>
//     <src> <dst> <strength>
//   end

util::Status SaveGraph(const Graph& graph, std::ostream& os);
util::Status SaveGraphToFile(const Graph& graph, const std::string& path);

util::Result<Graph> LoadGraph(std::istream& is);
util::Result<Graph> LoadGraphFromFile(const std::string& path);

// Format-sniffing loader: reads the first 8 bytes and dispatches to the
// binary loader (binary_io.h) on the "HINPRIVB" magic, the mmap'd snapshot
// loader (snapshot.h) on "HINPRIVS", the text loader otherwise. Every
// consumer of `convert` output (CLI subcommands, the attack service) goes
// through this so callers never care which format a file happens to be in.
util::Result<Graph> LoadGraphAuto(const std::string& path);

// Companion saver: ".bin" / ".bgraph" extensions write the binary format,
// ".snap" the mmap-able snapshot format, anything else the text format.
util::Status SaveGraphAuto(const Graph& graph, const std::string& path);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_IO_H_
