#include "service/request_queue.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hinpriv::service {
namespace {

TEST(BoundedQueueTest, TryPushShedsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // admission control: immediate refusal
  EXPECT_EQ(queue.size(), 2u);
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1);
  EXPECT_TRUE(queue.TryPush(3));  // slot freed
}

TEST(BoundedQueueTest, CapacityFloorsAtOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsExit) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed: no new admissions
  // Already-admitted items still drain in FIFO order...
  auto a = queue.Pop();
  auto b = queue.Pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  // ...and only then does Pop return the exit signal.
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.Pop().has_value());
    done.store(true);
  });
  // Give the consumer a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(BoundedQueueTest, PopBatchGroupsContiguousCompatibleItems) {
  BoundedQueue<std::string> queue(8);
  ASSERT_TRUE(queue.TryPush("a1"));
  ASSERT_TRUE(queue.TryPush("a2"));
  ASSERT_TRUE(queue.TryPush("b1"));
  ASSERT_TRUE(queue.TryPush("a3"));
  const auto same_prefix = [](const std::string& x, const std::string& y) {
    return x[0] == y[0];
  };
  std::vector<std::string> batch;
  // First pop takes a1+a2 but must stop at b1: batching never reorders
  // incompatible requests past each other.
  EXPECT_EQ(queue.PopBatch(4, &batch, same_prefix), 2u);
  EXPECT_EQ(batch, (std::vector<std::string>{"a1", "a2"}));
  batch.clear();
  EXPECT_EQ(queue.PopBatch(4, &batch, same_prefix), 1u);
  EXPECT_EQ(batch, (std::vector<std::string>{"b1"}));
  batch.clear();
  EXPECT_EQ(queue.PopBatch(4, &batch, same_prefix), 1u);
  EXPECT_EQ(batch, (std::vector<std::string>{"a3"}));
}

TEST(BoundedQueueTest, PopBatchHonorsMaxBatch) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> batch;
  const auto always = [](int, int) { return true; };
  EXPECT_EQ(queue.PopBatch(3, &batch, always), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
}

TEST(BoundedQueueTest, TryPopBatchNeverBlocks) {
  BoundedQueue<std::string> queue(8);
  const auto same_prefix = [](const std::string& x, const std::string& y) {
    return x[0] == y[0];
  };
  std::vector<std::string> batch;
  // Empty queue: returns 0 immediately instead of waiting for a producer.
  EXPECT_EQ(queue.TryPopBatch(4, &batch, same_prefix), 0u);
  EXPECT_TRUE(batch.empty());

  ASSERT_TRUE(queue.TryPush("a1"));
  ASSERT_TRUE(queue.TryPush("a2"));
  ASSERT_TRUE(queue.TryPush("b1"));
  // Same contiguous-compatible-head semantics as the blocking PopBatch.
  EXPECT_EQ(queue.TryPopBatch(4, &batch, same_prefix), 2u);
  EXPECT_EQ(batch, (std::vector<std::string>{"a1", "a2"}));
  batch.clear();
  EXPECT_EQ(queue.TryPopBatch(4, &batch, same_prefix), 1u);
  EXPECT_EQ(batch, (std::vector<std::string>{"b1"}));
  batch.clear();
  // Drained again — and still drainable after Close().
  EXPECT_EQ(queue.TryPopBatch(4, &batch, same_prefix), 0u);
  ASSERT_TRUE(queue.TryPush("c1"));
  queue.Close();
  EXPECT_EQ(queue.TryPopBatch(4, &batch, same_prefix), 1u);
  EXPECT_EQ(batch, (std::vector<std::string>{"c1"}));
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverEverything) {
  BoundedQueue<int> queue(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        sum.fetch_add(*item);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Spin on TryPush: a full queue is backpressure, not loss.
        while (!queue.TryPush(p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace hinpriv::service
