#include "eval/experiment.h"

#include <set>

#include <gtest/gtest.h>

#include "anon/complete_graph_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "hin/density.h"
#include "util/random.h"

namespace hinpriv::eval {
namespace {

synth::TqqConfig SmallConfig() {
  synth::TqqConfig config;
  config.num_users = 3000;
  return config;
}

synth::PlantedTargetSpec SmallSpec(double density) {
  synth::PlantedTargetSpec spec;
  spec.target_size = 150;
  spec.density = density;
  return spec;
}

TEST(BuildExperimentDatasetTest, KddaPipelineIsConsistent) {
  util::Rng rng(1);
  anon::KddAnonymizer anonymizer;
  auto dataset =
      BuildExperimentDataset(SmallConfig(), SmallSpec(0.01),
                             synth::GrowthConfig{}, anonymizer,
                             /*strip_majority=*/false, &rng);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const auto& d = dataset.value();
  EXPECT_EQ(d.target.num_vertices(), 150u);
  EXPECT_GT(d.auxiliary.num_vertices(), 3000u);  // grown
  EXPECT_NEAR(d.target_density, 0.01, 0.005);

  // Ground truth is a valid injective mapping into the auxiliary whose
  // profiles dominate the target's.
  std::set<hin::VertexId> seen;
  for (hin::VertexId v = 0; v < d.target.num_vertices(); ++v) {
    const hin::VertexId aux = d.ground_truth[v];
    ASSERT_LT(aux, d.auxiliary.num_vertices());
    EXPECT_TRUE(seen.insert(aux).second);
    EXPECT_EQ(d.target.attribute(v, hin::kGenderAttr),
              d.auxiliary.attribute(aux, hin::kGenderAttr));
    EXPECT_EQ(d.target.attribute(v, hin::kYobAttr),
              d.auxiliary.attribute(aux, hin::kYobAttr));
    EXPECT_LE(d.target.attribute(v, hin::kTweetCountAttr),
              d.auxiliary.attribute(aux, hin::kTweetCountAttr));
  }
}

TEST(BuildExperimentDatasetTest, GroundTruthEdgesDominate) {
  util::Rng rng(2);
  anon::KddAnonymizer anonymizer;
  auto dataset = BuildExperimentDataset(SmallConfig(), SmallSpec(0.01),
                                        synth::GrowthConfig{}, anonymizer,
                                        false, &rng);
  ASSERT_TRUE(dataset.ok());
  const auto& d = dataset.value();
  for (hin::VertexId v = 0; v < d.target.num_vertices(); ++v) {
    for (hin::LinkTypeId lt = 0; lt < d.target.num_link_types(); ++lt) {
      for (const hin::Edge& e : d.target.OutEdges(lt, v)) {
        ASSERT_GE(d.auxiliary.EdgeStrength(lt, d.ground_truth[v],
                                           d.ground_truth[e.neighbor]),
                  e.strength);
      }
    }
  }
}

TEST(BuildExperimentDatasetTest, CgaPublishesCompleteGraph) {
  util::Rng rng(3);
  anon::CompleteGraphAnonymizer anonymizer;
  auto dataset = BuildExperimentDataset(SmallConfig(), SmallSpec(0.005),
                                        synth::GrowthConfig{}, anonymizer,
                                        /*strip_majority=*/false, &rng);
  ASSERT_TRUE(dataset.ok());
  const size_t n = dataset.value().target.num_vertices();
  EXPECT_EQ(dataset.value().target.num_edges(), 4 * n * (n - 1));
  EXPECT_DOUBLE_EQ(hin::Density(dataset.value().target), 1.0);
}

TEST(BuildExperimentDatasetTest, StripRemovesFakeLinks) {
  util::Rng rng(4);
  anon::CompleteGraphAnonymizer anonymizer;  // fake strength 1
  auto dataset = BuildExperimentDataset(SmallConfig(), SmallSpec(0.005),
                                        synth::GrowthConfig{}, anonymizer,
                                        /*strip_majority=*/true, &rng);
  ASSERT_TRUE(dataset.ok());
  const size_t n = dataset.value().target.num_vertices();
  // Far below complete: only real links with non-majority strengths remain.
  EXPECT_LT(dataset.value().target.num_edges(), 4 * n * (n - 1) / 10);
}

TEST(TqqLinkTypeSubsetsTest, MatchesPaperRowOrder) {
  const auto subsets = TqqLinkTypeSubsets();
  ASSERT_EQ(subsets.size(), 15u);
  EXPECT_EQ(subsets[0].label, "f");
  EXPECT_EQ(subsets[4].label, "f-m");
  EXPECT_EQ(subsets[14].label, "f-m-c-r");
  // Sizes follow the paper's grouping: 4 singles, 6 pairs, 4 triples, 1
  // quad.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(subsets[i].link_types.size(), 1u) << i;
  }
  for (size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(subsets[i].link_types.size(), 2u) << i;
  }
  for (size_t i = 10; i < 14; ++i) {
    EXPECT_EQ(subsets[i].link_types.size(), 3u) << i;
  }
  EXPECT_EQ(subsets[14].link_types.size(), 4u);
  // All subsets are distinct.
  std::set<std::vector<hin::LinkTypeId>> distinct;
  for (const auto& s : subsets) {
    auto sorted = s.link_types;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(distinct.insert(sorted).second) << s.label;
  }
}

}  // namespace
}  // namespace hinpriv::eval
