file(REMOVE_RECURSE
  "libhinpriv_hin.a"
)
