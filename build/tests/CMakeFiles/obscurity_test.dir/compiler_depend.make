# Empty compiler generated dependencies file for obscurity_test.
# This may be replaced when dependencies are built.
