#include "util/flags.h"

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.Define("name", "default", "a string flag");
  flags.Define("count", "5", "an int flag");
  flags.Define("ratio", "0.5", "a double flag");
  flags.Define("verbose", "false", "a bool flag");
  return flags;
}

Status ParseArgs(FlagParser* flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags->Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--name=abc", "--count=9"}).ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 9);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--name", "xyz", "--ratio", "0.25"}).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.25);
}

TEST(FlagParserTest, BareFlagMeansTrue) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BoolSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    FlagParser flags = MakeParser();
    ASSERT_TRUE(
        ParseArgs(&flags, {"--verbose", spelling}).ok());
    EXPECT_TRUE(flags.GetBool("verbose")) << spelling;
  }
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--verbose", "0"}).ok());
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, HyphensNormalizeToUnderscores) {
  FlagParser flags;
  flags.Define("no_prefilter", "false", "an ablation-style flag");
  flags.Define("aux_users", "10", "an int flag");
  ASSERT_TRUE(
      ParseArgs(&flags, {"--no-prefilter", "--aux-users=25"}).ok());
  EXPECT_TRUE(flags.GetBool("no_prefilter"));
  EXPECT_EQ(flags.GetInt("aux_users"), 25);
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser flags = MakeParser();
  const Status s = ParseArgs(&flags, {"--nope=1"});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(FlagParserTest, PositionalArgumentIsError) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(&flags, {"stray"}).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--help"}).ok());
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("an int flag"), std::string::npos);
}

TEST(FlagParserTest, MalformedNumberFallsBackToDefault) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--count", "abc"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 5);
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(&flags, {"--count=1", "--count=2"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 2);
}

}  // namespace
}  // namespace hinpriv::util
