#include "hin/schema_io.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

namespace hinpriv::hin {

namespace {

// Mirrors the string cap in binary_io.cc: keeps a corrupted length field
// from driving a large allocation before validation can catch it.
constexpr uint64_t kMaxStringLength = 1 << 16;

template <typename T>
void WriteRaw(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteRaw<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
util::Status ReadRaw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!is) return util::Status::Corruption("unexpected end of schema blob");
  return util::Status::OK();
}

util::Status ReadString(std::istream& is, std::string* s) {
  uint32_t length = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &length));
  if (length > kMaxStringLength) {
    return util::Status::Corruption("string length out of range");
  }
  s->resize(length);
  is.read(s->data(), length);
  if (!is) return util::Status::Corruption("unexpected end of schema blob");
  return util::Status::OK();
}

}  // namespace

util::Status WriteSchemaBinary(std::ostream& os, const NetworkSchema& schema) {
  WriteRaw<uint16_t>(os, static_cast<uint16_t>(schema.num_entity_types()));
  for (size_t t = 0; t < schema.num_entity_types(); ++t) {
    const auto& et = schema.entity_type(static_cast<EntityTypeId>(t));
    WriteString(os, et.name);
    WriteRaw<uint16_t>(os, static_cast<uint16_t>(et.attributes.size()));
    for (const auto& attr : et.attributes) {
      WriteString(os, attr.name);
      WriteRaw<uint8_t>(os, attr.growable ? 1 : 0);
    }
  }
  WriteRaw<uint16_t>(os, static_cast<uint16_t>(schema.num_link_types()));
  for (size_t lt = 0; lt < schema.num_link_types(); ++lt) {
    const auto& def = schema.link_type(static_cast<LinkTypeId>(lt));
    WriteString(os, def.name);
    WriteRaw<uint16_t>(os, def.src);
    WriteRaw<uint16_t>(os, def.dst);
    WriteRaw<uint8_t>(os, def.has_strength ? 1 : 0);
    WriteRaw<uint8_t>(os, def.growable_strength ? 1 : 0);
    WriteRaw<uint8_t>(os, def.allows_self_link ? 1 : 0);
  }
  if (!os) return util::Status::IoError("write failure (schema blob)");
  return util::Status::OK();
}

util::Status ReadSchemaBinary(std::istream& is, NetworkSchema* schema) {
  uint16_t num_entity_types = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_entity_types));
  for (uint16_t t = 0; t < num_entity_types; ++t) {
    std::string name;
    HINPRIV_RETURN_IF_ERROR(ReadString(is, &name));
    const EntityTypeId et = schema->AddEntityType(std::move(name));
    uint16_t num_attrs = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_attrs));
    for (uint16_t a = 0; a < num_attrs; ++a) {
      std::string attr_name;
      HINPRIV_RETURN_IF_ERROR(ReadString(is, &attr_name));
      uint8_t growable = 0;
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &growable));
      schema->AddAttribute(et, std::move(attr_name), growable != 0);
    }
  }
  uint16_t num_link_types = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_link_types));
  for (uint16_t lt = 0; lt < num_link_types; ++lt) {
    std::string name;
    HINPRIV_RETURN_IF_ERROR(ReadString(is, &name));
    uint16_t src = 0;
    uint16_t dst = 0;
    uint8_t has_strength = 0;
    uint8_t growable = 0;
    uint8_t self_link = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &src));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &dst));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &has_strength));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &growable));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &self_link));
    if (src >= schema->num_entity_types() ||
        dst >= schema->num_entity_types()) {
      return util::Status::Corruption("link endpoint type out of range");
    }
    schema->AddLinkType(std::move(name), src, dst, has_strength != 0,
                        growable != 0, self_link != 0);
  }
  return util::Status::OK();
}

}  // namespace hinpriv::hin
