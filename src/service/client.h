#ifndef HINPRIV_SERVICE_CLIENT_H_
#define HINPRIV_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "hin/types.h"
#include "service/protocol.h"
#include "util/status.h"

namespace hinpriv::service {

// Blocking client for the attack service: one TCP connection, synchronous
// request/response. Each Call() writes one frame and reads frames until
// the response with the matching id arrives (the server may interleave
// responses to pipelined requests from other threads on this connection,
// but a single Client instance is NOT thread-safe — use one per thread,
// as the integration test's concurrent queriers do).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  static util::Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends `request` and blocks for the response with the same id. Frame
  // or decode failures surface as a non-OK status; protocol-level failures
  // (BUSY, DEADLINE_EXCEEDED, ...) are successful Calls whose Response
  // carries the code.
  util::Result<Response> Call(const Request& request);

  // Convenience wrappers; id is chosen from an internal counter.
  util::Result<Response> AttackOne(hin::VertexId target, int max_distance = -1,
                                   double deadline_ms = 0.0);
  util::Result<Response> NetworkRisk(int max_distance = -1);
  util::Result<Response> EntityRisk(hin::VertexId target,
                                    int max_distance = -1);
  util::Result<Response> Stats();
  util::Result<Response> Sleep(double sleep_ms, double deadline_ms = 0.0);
  util::Result<Response> Health();
  // Prometheus text; nonempty `path` writes server-side instead of inline.
  util::Result<Response> Metrics(const std::string& path = "");
  util::Result<Response> TraceStart();
  util::Result<Response> TraceStop();
  // Chrome trace JSON; nonempty `path` writes server-side instead of inline.
  util::Result<Response> TraceDump(const std::string& path = "");
  // Applies a server-side hinpriv-delta stream to the auxiliary graph and
  // warm attack state (streaming growth). Rides the admission queue like
  // attack_one; deadline stops between batches at a consistent boundary.
  util::Result<Response> ApplyDelta(const std::string& path,
                                    double deadline_ms = 0.0);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_CLIENT_H_
