#include "core/candidate_index.h"

#include <algorithm>

#include "hin/graph_delta.h"
#include "util/hashing.h"

namespace hinpriv::core {

CandidateIndex::CandidateIndex(const hin::Graph& aux,
                               const MatchOptions& options)
    : aux_(aux),
      options_(options),
      scan_length_(obs::MetricsRegistry::Global().GetHistogram(
          "dehin/candidate_index/scan_length")) {
  if (!options_.growable_attributes.empty()) {
    has_primary_ = true;
    primary_ = options_.growable_attributes.front();
  }
  buckets_.reserve(aux.num_vertices() / 8 + 1);
  for (hin::VertexId v = 0; v < aux.num_vertices(); ++v) {
    buckets_[ExactKey(aux, v)].push_back(v);
  }
  if (has_primary_) {
    for (auto& [key, bucket] : buckets_) {
      std::sort(bucket.begin(), bucket.end(),
                [&](hin::VertexId a, hin::VertexId b) {
                  const hin::AttrValue av = aux.attribute(a, primary_);
                  const hin::AttrValue bv = aux.attribute(b, primary_);
                  return av != bv ? av > bv : a < b;
                });
    }
  }
  obs::MetricsRegistry::Global()
      .GetGauge("dehin/candidate_index/buckets")
      ->Set(static_cast<double>(buckets_.size()));
}

uint64_t CandidateIndex::ExactKey(const hin::Graph& graph,
                                  hin::VertexId v) const {
  uint64_t h = 0x853c49e6748fea9bULL;
  for (hin::AttributeId a : options_.exact_attributes) {
    h = util::HashCombine(
        h, static_cast<uint64_t>(static_cast<int64_t>(graph.attribute(v, a))));
  }
  return util::Mix64(h);
}

uint64_t CandidateIndex::ExactKeyBeforeBumps(
    hin::VertexId v,
    const std::vector<std::pair<hin::AttributeId, hin::AttrValue>>& bumps)
    const {
  uint64_t h = 0x853c49e6748fea9bULL;
  for (hin::AttributeId a : options_.exact_attributes) {
    hin::AttrValue value = aux_.attribute(v, a);
    for (const auto& [attr, amount] : bumps) {
      if (attr == a) value -= amount;
    }
    h = util::HashCombine(h,
                          static_cast<uint64_t>(static_cast<int64_t>(value)));
  }
  return util::Mix64(h);
}

void CandidateIndex::ApplyDelta(const hin::GraphDelta& delta) {
  // Bucket order is (primary value descending, id ascending) — a strict
  // total order, so every vertex has exactly one correct position and
  // incremental insertion reproduces the rebuilt order bit for bit. With
  // no primary the order is id-ascending (construction order), which the
  // same comparator yields.
  auto less = [&](hin::VertexId a, hin::VertexId b) {
    if (has_primary_) {
      const hin::AttrValue av = aux_.attribute(a, primary_);
      const hin::AttrValue bv = aux_.attribute(b, primary_);
      if (av != bv) return av > bv;
    }
    return a < b;
  };

  // Sum bumps per vertex, then classify: bumps to attributes the index
  // does not key are no-ops; a primary bump re-positions the vertex inside
  // its bucket; an exact-key bump moves it between buckets.
  std::unordered_map<hin::VertexId,
                     std::vector<std::pair<hin::AttributeId, hin::AttrValue>>>
      per_vertex;
  for (const hin::GraphDelta::AttrBump& b : delta.attr_bumps) {
    auto& bumps = per_vertex[b.v];
    auto it = std::find_if(bumps.begin(), bumps.end(),
                           [&](const auto& p) { return p.first == b.attr; });
    if (it != bumps.end()) {
      it->second += b.delta;
    } else {
      bumps.emplace_back(b.attr, b.delta);
    }
  }

  std::unordered_map<uint64_t, std::vector<hin::VertexId>> removals;
  std::vector<std::pair<uint64_t, hin::VertexId>> insertions;
  insertions.reserve(per_vertex.size() + delta.new_vertices.size());
  for (const auto& [v, bumps] : per_vertex) {
    bool key_changed = false;
    bool order_changed = false;
    for (const auto& [attr, amount] : bumps) {
      if (std::find(options_.exact_attributes.begin(),
                    options_.exact_attributes.end(),
                    attr) != options_.exact_attributes.end()) {
        key_changed = true;
      }
      if (has_primary_ && attr == primary_) order_changed = true;
    }
    if (!key_changed && !order_changed) continue;
    const uint64_t new_key = ExactKey(aux_, v);
    const uint64_t old_key =
        key_changed ? ExactKeyBeforeBumps(v, bumps) : new_key;
    removals[old_key].push_back(v);
    insertions.emplace_back(new_key, v);
  }

  // One removal pass per touched bucket. Surviving entries keep their
  // relative order — their attribute values are unchanged, so that order
  // is exactly the rebuilt order.
  for (auto& [key, victims] : removals) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) continue;
    auto& bucket = it->second;
    std::sort(victims.begin(), victims.end());
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [&](hin::VertexId v) {
                                  return std::binary_search(victims.begin(),
                                                            victims.end(), v);
                                }),
                 bucket.end());
    if (bucket.empty()) buckets_.erase(it);
  }

  // New vertices (ids follow the base contiguously) join their buckets at
  // the sorted position, exactly like the re-inserted movers.
  for (size_t i = 0; i < delta.new_vertices.size(); ++i) {
    const hin::VertexId v =
        static_cast<hin::VertexId>(delta.base_num_vertices + i);
    insertions.emplace_back(ExactKey(aux_, v), v);
  }
  for (const auto& [key, v] : insertions) {
    auto& bucket = buckets_[key];
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), v, less), v);
  }

  obs::MetricsRegistry::Global()
      .GetGauge("dehin/candidate_index/buckets")
      ->Set(static_cast<double>(buckets_.size()));
}

}  // namespace hinpriv::core
