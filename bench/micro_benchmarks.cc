// Google-benchmark micro-benchmarks for the performance-critical pieces:
// graph construction, Hopcroft-Karp vs. the Kuhn reference matcher,
// signature computation, candidate-index construction/lookup, and the
// DeHIN per-query cost by max distance.

#include <benchmark/benchmark.h>

#include "core/candidate_index.h"
#include "core/dehin.h"
#include "core/signature.h"
#include "hin/subgraph.h"
#include "hin/tqq_schema.h"
#include "matching/hopcroft_karp.h"
#include "synth/planted_target.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv {
namespace {

const hin::Graph& SharedNetwork() {
  static const hin::Graph* graph = [] {
    synth::TqqConfig config;
    config.num_users = 20000;
    util::Rng rng(1);
    auto built = synth::GenerateTqqNetwork(config, &rng);
    return new hin::Graph(std::move(built).value());
  }();
  return *graph;
}

const synth::PlantedDataset& SharedDataset() {
  static const synth::PlantedDataset* dataset = [] {
    synth::TqqConfig config;
    config.num_users = 20000;
    synth::PlantedTargetSpec spec;
    spec.target_size = 1000;
    spec.density = 0.01;
    util::Rng rng(2);
    auto built =
        synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
    return new synth::PlantedDataset(std::move(built).value());
  }();
  return *dataset;
}

matching::BipartiteGraph RandomBipartite(size_t n, double edge_prob,
                                         uint64_t seed) {
  util::Rng rng(seed);
  matching::BipartiteGraph g(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(edge_prob)) g.AddEdge(i, j);
    }
  }
  return g;
}

void BM_GraphBuild(benchmark::State& state) {
  synth::TqqConfig config;
  config.num_users = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(3);
    auto graph = synth::GenerateTqqNetwork(config, &rng);
    benchmark::DoNotOptimize(graph.value().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto g = RandomBipartite(static_cast<size_t>(state.range(0)),
                                 8.0 / static_cast<double>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::HopcroftKarpMaximumMatching(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(512)->Arg(4096);

void BM_KuhnMatching(benchmark::State& state) {
  const auto g = RandomBipartite(static_cast<size_t>(state.range(0)),
                                 8.0 / static_cast<double>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::KuhnMaximumMatching(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KuhnMatching)->Arg(64)->Arg(512)->Arg(4096);

void BM_SignatureComputation(benchmark::State& state) {
  const hin::Graph& graph = SharedNetwork();
  core::SignatureOptions options;
  options.attributes = {hin::kTagCountAttr};
  options.link_types = core::AllLinkTypes(graph);
  const int distance = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeSignatures(graph, options, distance));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_vertices());
}
BENCHMARK(BM_SignatureComputation)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CandidateIndexBuild(benchmark::State& state) {
  const hin::Graph& graph = SharedNetwork();
  const core::MatchOptions options = core::DefaultTqqMatchOptions();
  for (auto _ : state) {
    core::CandidateIndex index(graph, options);
    benchmark::DoNotOptimize(index.num_buckets());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_vertices());
}
BENCHMARK(BM_CandidateIndexBuild);

void BM_CandidateLookup(benchmark::State& state) {
  const hin::Graph& graph = SharedNetwork();
  const core::MatchOptions options = core::DefaultTqqMatchOptions();
  const core::CandidateIndex index(graph, options);
  hin::VertexId v = 0;
  for (auto _ : state) {
    size_t count = 0;
    index.ForEachCandidate(graph, v, [&](hin::VertexId) { ++count; });
    benchmark::DoNotOptimize(count);
    v = (v + 1) % graph.num_vertices();
  }
}
BENCHMARK(BM_CandidateLookup);

void BM_DehinQuery(benchmark::State& state) {
  const synth::PlantedDataset& dataset = SharedDataset();
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  static const core::Dehin* dehin =
      new core::Dehin(&dataset.auxiliary, config);
  const int distance = static_cast<int>(state.range(0));
  hin::VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dehin->Deanonymize(dataset.target, v, distance));
    v = (v + 1) % dataset.target.num_vertices();
  }
}
BENCHMARK(BM_DehinQuery)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_DehinQueryNoIndex(benchmark::State& state) {
  const synth::PlantedDataset& dataset = SharedDataset();
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  config.use_candidate_index = false;
  static const core::Dehin* dehin =
      new core::Dehin(&dataset.auxiliary, config);
  hin::VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dehin->Deanonymize(dataset.target, v, 1));
    v = (v + 1) % dataset.target.num_vertices();
  }
}
BENCHMARK(BM_DehinQueryNoIndex);

void BM_InducedSubgraph(benchmark::State& state) {
  const hin::Graph& graph = SharedNetwork();
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(state.iterations());
    state.ResumeTiming();
    auto sub = hin::SampleInducedSubgraph(graph, 1000, &rng);
    benchmark::DoNotOptimize(sub.value().graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph);

void BM_StripMajorityStrengthLinks(benchmark::State& state) {
  const synth::PlantedDataset& dataset = SharedDataset();
  for (auto _ : state) {
    auto stripped = core::StripMajorityStrengthLinks(dataset.target);
    benchmark::DoNotOptimize(stripped.value().num_edges());
  }
}
BENCHMARK(BM_StripMajorityStrengthLinks);

}  // namespace
}  // namespace hinpriv

BENCHMARK_MAIN();
