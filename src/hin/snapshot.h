#ifndef HINPRIV_HIN_SNAPSHOT_H_
#define HINPRIV_HIN_SNAPSHOT_H_

#include <string>

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::hin {

// HINPRIVS snapshot: a versioned, 64-byte-aligned on-disk image of a Graph
// laid out so the file can be mmap'd and used in place — the loaded Graph's
// CSR and attribute spans point straight into the mapping, no
// deserialization, no per-element copies. Warm start is O(validation)
// instead of O(V + E), and service replicas mapping the same snapshot share
// its page-cache pages.
//
// Layout (all integers little-endian, fixed-width):
//
//   [0, 128)   SnapshotHeader: magic "HINPRIVS", version, byte-order probe,
//              file size, schema blob location, section table location,
//              vertex/edge totals.
//   [128, ..)  schema blob (schema_io.h codec), unaligned.
//   aligned    section table: SectionEntry[section_count], each describing
//              one typed array with its byte offset and length.
//   aligned    section payloads, each 64-byte aligned:
//                kVertexTypes  EntityTypeId[n]      per-vertex entity type
//                kDenseIndex   uint32[n]            per-vertex dense index
//                kTypeCounts   uint64[T]            vertices per entity type
//                kCsrOffsets   uint64[n + 1]        (a = link type, b = dir)
//                kCsrEdges     Edge[...]            (a = link type, b = dir)
//                kAttrColumn   AttrValue[counts[a]] (a = entity, b = attr)
//
// Versioning: readers accept exactly kSnapshotVersion; any layout change
// bumps it. The byte-order probe rejects snapshots written on a
// different-endian host (the payload is raw native arrays).
//
// Validation: every header field, section bound, alignment, count, and the
// full CSR offset arrays (monotone, 0-based, consistent with the edge
// section sizes) are checked against the actual file size BEFORE any
// mapping-derived span is handed out. Edge payloads are NOT scanned by
// default — the validated offsets already bound every span the accessors
// can produce, and scanning would fault in all pages, defeating lazy
// warmstart. SnapshotOptions::verify_edges opts into the O(E) payload scan
// (neighbor ranges, per-vertex sort order, nonzero strengths).

struct SnapshotOptions {
  // Pin the mapping in RAM (mlock); failure is soft (see util::MappedFile).
  bool mlock = false;
  // madvise(MADV_WILLNEED) the mapping so the kernel starts readahead.
  bool willneed = true;
  // Pre-fault every page at load time (MAP_POPULATE).
  bool populate = false;
  // Also validate edge payloads (O(E), faults in the edge sections).
  bool verify_edges = false;
};

// Writes `graph` as a HINPRIVS snapshot at `path`.
util::Status SaveGraphSnapshot(const Graph& graph, const std::string& path);

// Maps a HINPRIVS snapshot and returns a Graph whose storage is the
// mapping itself (Graph::is_mapped() == true). The mapping lives exactly
// as long as the Graph (and any Graphs moved from it).
util::Result<Graph> LoadGraphSnapshot(const std::string& path,
                                      const SnapshotOptions& options);
util::Result<Graph> LoadGraphSnapshot(const std::string& path);

// True when the first bytes of `path` carry the HINPRIVS magic.
bool SnapshotMagicMatches(const std::string& path);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_SNAPSHOT_H_
