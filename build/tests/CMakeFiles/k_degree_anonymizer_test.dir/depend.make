# Empty dependencies file for k_degree_anonymizer_test.
# This may be replaced when dependencies are built.
