#include "service/slow_query_log.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace hinpriv::service {
namespace {

SlowQueryRecord Record(uint64_t rid, uint64_t total_us) {
  SlowQueryRecord record;
  record.rid = rid;
  record.method = Method::kAttackOne;
  record.total_us = total_us;
  record.run_us = total_us;
  return record;
}

TEST(SlowQueryLogTest, KeepsWorstNInOrder) {
  SlowQueryLog log(3);
  log.Record(Record(1, 100));
  log.Record(Record(2, 500));
  log.Record(Record(3, 50));
  log.Record(Record(4, 300));  // evicts rid 3
  log.Record(Record(5, 10));   // below the floor, dropped

  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].rid, 2u);
  EXPECT_EQ(worst[1].rid, 4u);
  EXPECT_EQ(worst[2].rid, 1u);
  EXPECT_EQ(log.recorded(), 5u);
}

TEST(SlowQueryLogTest, CapacityClampsToOne) {
  SlowQueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Record(Record(1, 10));
  log.Record(Record(2, 20));
  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].rid, 2u);
}

TEST(SlowQueryLogTest, TiesKeepEarlierRecords) {
  SlowQueryLog log(2);
  log.Record(Record(1, 100));
  log.Record(Record(2, 100));
  log.Record(Record(3, 100));  // tie with the floor: dropped
  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].rid, 1u);
  EXPECT_EQ(worst[1].rid, 2u);
}

TEST(SlowQueryLogTest, PreservesPhaseBreakdown) {
  SlowQueryLog log(4);
  SlowQueryRecord record;
  record.rid = 7;
  record.method = Method::kRisk;
  record.target = 12;
  record.has_target = true;
  record.max_distance = 2;
  record.code = ResponseCode::kDeadlineExceeded;
  record.queue_us = 10;
  record.run_us = 20;
  record.write_us = 30;
  record.total_us = 60;
  log.Record(record);
  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].method, Method::kRisk);
  EXPECT_TRUE(worst[0].has_target);
  EXPECT_EQ(worst[0].target, 12u);
  EXPECT_EQ(worst[0].max_distance, 2);
  EXPECT_EQ(worst[0].code, ResponseCode::kDeadlineExceeded);
  EXPECT_EQ(worst[0].queue_us, 10u);
  EXPECT_EQ(worst[0].run_us, 20u);
  EXPECT_EQ(worst[0].write_us, 30u);
  EXPECT_EQ(worst[0].total_us, 60u);
}

TEST(SlowQueryLogTest, ConcurrentRecordersStayBoundedAndCounted) {
  SlowQueryLog log(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(Record(static_cast<uint64_t>(t * kPerThread + i),
                          static_cast<uint64_t>(i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<SlowQueryRecord> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 8u);
  for (size_t i = 1; i < worst.size(); ++i) {
    EXPECT_GE(worst[i - 1].total_us, worst[i].total_us);
  }
  // Every retained record is from the global worst tail.
  for (const SlowQueryRecord& record : worst) {
    EXPECT_GE(record.total_us, static_cast<uint64_t>(kPerThread - 8));
  }
  EXPECT_EQ(log.recorded(), static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace hinpriv::service
