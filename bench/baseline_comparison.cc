// Compares DeHIN against the seed-and-propagate baseline (Narayanan &
// Shmatikov, S&P'09 style — Section 2.2 of the paper) on identical
// datasets. The paper's argument for DeHIN: it needs no out-of-band seed
// mappings and no large-scale detectable structures. This bench quantifies
// that — propagation precision is reported for several seed budgets, on
// targets whose largest clique has size <= 3 (checked), exactly the
// setting the paper says seed-based attacks struggle with.

#include <algorithm>
#include <iostream>

#include "anon/kdd_anonymizer.h"
#include "baselines/clique_seeds.h"
#include "baselines/propagation_attack.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

// Precision over all non-seed target users: a propagation mapping is
// correct iff it equals the ground truth (unmapped counts as a miss, like
// a non-unique DeHIN candidate set).
double PropagationPrecision(const baselines::PropagationResult& result,
                            const std::vector<hin::VertexId>& ground_truth,
                            size_t num_seeds) {
  size_t correct = 0;
  for (hin::VertexId v = num_seeds; v < result.mapping.size(); ++v) {
    if (result.mapping[v] == ground_truth[v]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(result.mapping.size() - num_seeds);
}

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, anonymizer, /*strip_majority=*/false, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const auto& d = dataset.value();

  std::printf("Attack comparison at density %.3f (%zu aux users)\n\n",
              d.target_density, d.auxiliary.num_vertices());
  util::TablePrinter table(
      {"attack", "seeds", "precision%", "notes"});

  // DeHIN: no seeds, profile + neighborhood matching.
  core::Dehin dehin(&d.auxiliary, bench::AttackConfig(false));
  for (int n : {0, 1, 2}) {
    const auto metrics =
        eval::EvaluateAttackParallel(dehin, d.target, d.ground_truth, n);
    table.AddRow({"DeHIN n=" + std::to_string(n), "0",
                  bench::Pct(metrics.precision), "no seeds needed"});
  }

  // Propagation baseline with growing seed budgets (ground-truth seeds —
  // the most generous assumption for the baseline).
  for (size_t seeds : {5u, 20u, 50u, 100u}) {
    std::vector<std::pair<hin::VertexId, hin::VertexId>> seed_pairs;
    for (hin::VertexId v = 0; v < seeds; ++v) {
      seed_pairs.emplace_back(v, d.ground_truth[v]);
    }
    auto result = baselines::RunPropagationAttack(d.target, d.auxiliary,
                                                  seed_pairs);
    if (!result.ok()) {
      std::fprintf(stderr, "propagation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const double precision =
        PropagationPrecision(result.value(), d.ground_truth, seeds);
    table.AddRow({"propagation", std::to_string(seeds),
                  bench::Pct(precision),
                  std::to_string(result.value().num_mapped - seeds) +
                      " mapped in " +
                      std::to_string(result.value().iterations_run) +
                      " passes"});
  }
  // Fully end-to-end baseline: the adversary discovers its own seeds by
  // matching small cliques between the graphs (NS09 style). The paper's
  // critique is that such structures cannot be detected reliably; the row
  // below shows how few usable seeds survive.
  {
    auto seeds = baselines::GenerateCliqueSeeds(d.target, d.auxiliary);
    if (!seeds.ok()) {
      std::fprintf(stderr, "clique seeding failed: %s\n",
                   seeds.status().ToString().c_str());
      return 1;
    }
    size_t correct_seeds = 0;
    for (const auto& [vt, va] : seeds.value().seeds) {
      if (d.ground_truth[vt] == va) ++correct_seeds;
    }
    auto result = baselines::RunPropagationAttack(d.target, d.auxiliary,
                                                  seeds.value().seeds);
    double precision = 0.0;
    if (result.ok() && !result.value().mapping.empty()) {
      size_t correct = 0;
      for (hin::VertexId v = 0; v < result.value().mapping.size(); ++v) {
        if (result.value().mapping[v] == d.ground_truth[v]) ++correct;
      }
      precision = static_cast<double>(correct) /
                  static_cast<double>(result.value().mapping.size());
    }
    table.AddRow({"propagation + clique seeds",
                  std::to_string(seeds.value().seeds.size()),
                  bench::Pct(precision),
                  std::to_string(correct_seeds) + " of " +
                      std::to_string(seeds.value().seeds.size()) +
                      " discovered seeds correct"});
  }

  table.Print(std::cout);
  std::printf("\nExpected shape: DeHIN at n>=1 dominates the seed-based "
              "baseline even when the baseline is handed ground-truth "
              "seeds, and the fully end-to-end variant (clique-discovered "
              "seeds) collapses because the degree signatures drift between "
              "the snapshot and the grown auxiliary — the paper's argument "
              "for attacks that need no seeds (Sections 1.3 / 2.2).\n");
  return 0;
}
