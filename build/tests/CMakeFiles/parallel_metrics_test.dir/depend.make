# Empty dependencies file for parallel_metrics_test.
# This may be replaced when dependencies are built.
