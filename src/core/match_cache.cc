#include "core/match_cache.h"

namespace hinpriv::core {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

MatchCache::MatchCache(size_t num_shards)
    : shards_(RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards)),
      shard_mask_(shards_.size() - 1) {}

size_t MatchCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& map : shard.by_depth) total += map.size();
  }
  return total;
}

std::vector<MatchCacheShardStats> MatchCache::ShardStats() const {
  std::vector<MatchCacheShardStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.push_back(shard.stats);
  }
  return stats;
}

MatchCacheShardStats MatchCache::TotalStats() const {
  MatchCacheShardStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.stats;
  }
  return total;
}

obs::Counter* MatchCache::GlobalHitCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/hits");
  return counter;
}

obs::Counter* MatchCache::GlobalMissCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/misses");
  return counter;
}

obs::Counter* MatchCache::GlobalInsertCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("match_cache/inserts");
  return counter;
}

}  // namespace hinpriv::core
