// Auxiliary-network scaling study: how DeHIN's precision and candidate-set
// sizes depend on the size of the adversary's crawl. The paper runs one
// point (2,320,895 users); this sweep substantiates EXPERIMENTS.md's
// residual-gap analysis — profile-only candidate sets grow linearly with
// the auxiliary, pushing distance-0 precision down toward the paper's
// values, while distance-1+ precision degrades only mildly because
// neighborhood constraints keep binding.

#include <iostream>
#include <vector>

#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density");
  flags.Define("scales", "10000,25000,50000,100000,200000",
               "comma-separated auxiliary sizes to sweep");
  flags.Define("json", "", "also write machine-readable results to this path");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  std::vector<size_t> scales;
  const std::string scales_flag = flags.GetString("scales");
  for (const auto& field : util::Split(scales_flag, ',')) {
    auto parsed = util::ParseUint64(util::Trim(field));
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --scales entry: %s\n",
                   std::string(field).c_str());
      return 2;
    }
    scales.push_back(parsed.value());
  }

  const double density = flags.GetDouble("density");
  std::printf("Auxiliary scaling at density %.3f (paper point: 2,320,895 "
              "users)\n\n",
              density);
  util::TablePrinter table({"aux users", "n=0 prec%", "n=0 candidates",
                            "n=1 prec%", "n=1 candidates", "n=2 prec%"});

  anon::KddAnonymizer anonymizer;
  std::vector<bench::BenchJsonEntry> json_entries;
  for (size_t scale : scales) {
    synth::TqqConfig config = bench::AuxConfigFromFlags(flags);
    config.num_users = scale;
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    auto dataset = eval::BuildExperimentDataset(
        config, bench::TargetSpecFromFlags(flags, density),
        synth::GrowthConfig{}, anonymizer, /*strip_majority=*/false, &rng);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset failed at scale %zu: %s\n", scale,
                   dataset.status().ToString().c_str());
      return 1;
    }
    core::Dehin dehin(&dataset.value().auxiliary,
                      bench::AttackConfig(false, flags));
    const auto d0 = eval::EvaluateAttackParallel(
        dehin, dataset.value().target, dataset.value().ground_truth, 0);
    const auto d1 = eval::EvaluateAttackParallel(
        dehin, dataset.value().target, dataset.value().ground_truth, 1);
    const auto d2 = eval::EvaluateAttackParallel(
        dehin, dataset.value().target, dataset.value().ground_truth, 2);
    table.AddRow({std::to_string(scale), bench::Pct(d0.precision),
                  util::FormatDouble(d0.mean_candidate_count, 1),
                  bench::Pct(d1.precision),
                  util::FormatDouble(d1.mean_candidate_count, 1),
                  bench::Pct(d2.precision)});
    bench::BenchJsonEntry entry;
    entry.name = "aux_scaling/" + std::to_string(scale);
    entry.counters = {
        {"d0_precision", d0.precision},
        {"d0_candidates", d0.mean_candidate_count},
        {"d1_precision", d1.precision},
        {"d1_candidates", d1.mean_candidate_count},
        {"d2_precision", d2.precision},
    };
    json_entries.push_back(std::move(entry));
  }
  if (flags.GetBool("tsv")) {
    table.PrintTsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    const auto context = bench::CommonBenchContext(
        flags,
        {{"density", flags.GetString("density")}, {"scales", scales_flag}});
    if (!bench::WriteBenchJson(json_path, json_entries, context)) return 1;
  }
  std::printf("\nExpected shape: distance-0 candidate sets grow linearly "
              "with the auxiliary (precision falls toward the paper's 5.4%% "
              "at 2.3M users); distance-1+ precision stays high because "
              "typed-neighborhood constraints scale with the target, not "
              "the auxiliary.\n");
  return 0;
}
