file(REMOVE_RECURSE
  "CMakeFiles/hinpriv_anon.dir/anonymizer.cc.o"
  "CMakeFiles/hinpriv_anon.dir/anonymizer.cc.o.d"
  "CMakeFiles/hinpriv_anon.dir/complete_graph_anonymizer.cc.o"
  "CMakeFiles/hinpriv_anon.dir/complete_graph_anonymizer.cc.o.d"
  "CMakeFiles/hinpriv_anon.dir/k_degree_anonymizer.cc.o"
  "CMakeFiles/hinpriv_anon.dir/k_degree_anonymizer.cc.o.d"
  "CMakeFiles/hinpriv_anon.dir/utility_tradeoff_anonymizers.cc.o"
  "CMakeFiles/hinpriv_anon.dir/utility_tradeoff_anonymizers.cc.o.d"
  "libhinpriv_anon.a"
  "libhinpriv_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinpriv_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
