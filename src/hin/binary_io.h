#ifndef HINPRIV_HIN_BINARY_IO_H_
#define HINPRIV_HIN_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::hin {

// Binary graph serialization for large networks. The text format (io.h) is
// human-inspectable but parses at ~1M edges/s; this format writes the
// attribute columns and CSR edge arrays as raw little-endian blocks and
// loads the paper-scale 2.3M-user / 60M-link network in seconds.
//
// Layout (all integers little-endian):
//   magic "HINPRIVB"  u32 version
//   schema: u16 entity type count; per type: string name, u16 attr count,
//           per attr: string name, u8 growable
//           u16 link type count; per type: string name, u16 src, u16 dst,
//           u8 has_strength, u8 growable, u8 self_link
//   u64 vertex count; vertex entity types (u16 each)
//   per entity type, per attribute: raw AttrValue column
//   per link type: u64 edge count, then (u32 dst, u32 strength) pairs in
//   out-CSR order preceded by the u64 offsets array
// The loader re-validates every count and id, like the text loader.
util::Status SaveGraphBinary(const Graph& graph, std::ostream& os);
util::Status SaveGraphBinaryToFile(const Graph& graph,
                                   const std::string& path);

util::Result<Graph> LoadGraphBinary(std::istream& is);
util::Result<Graph> LoadGraphBinaryFromFile(const std::string& path);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_BINARY_IO_H_
