#ifndef HINPRIV_HIN_TQQ_SCHEMA_H_
#define HINPRIV_HIN_TQQ_SCHEMA_H_

#include "hin/schema.h"

namespace hinpriv::hin {

// Factories for the t.qq (KDD Cup 2012) schemas used throughout the paper.

// Entity-type / link-type / attribute name constants for the t.qq schemas.
// Using named constants keeps experiment code free of typo-prone literals.
inline constexpr char kUserType[] = "User";
inline constexpr char kTweetType[] = "Tweet";
inline constexpr char kCommentType[] = "Comment";
inline constexpr char kItemType[] = "Item";

inline constexpr char kAttrGender[] = "gender";
inline constexpr char kAttrYob[] = "yob";
inline constexpr char kAttrTweetCount[] = "tweet_count";
inline constexpr char kAttrTagCount[] = "tag_count";

inline constexpr char kLinkFollow[] = "follow";
inline constexpr char kLinkMention[] = "mention";
inline constexpr char kLinkRetweet[] = "retweet";
inline constexpr char kLinkComment[] = "comment";

// Link-type ids in the *target* t.qq schema, fixed by construction.
inline constexpr LinkTypeId kFollowLink = 0;
inline constexpr LinkTypeId kMentionLink = 1;
inline constexpr LinkTypeId kRetweetLink = 2;
inline constexpr LinkTypeId kCommentLink = 3;
inline constexpr size_t kNumTqqLinkTypes = 4;

// Attribute ids of the User entity type, fixed by construction.
inline constexpr AttributeId kGenderAttr = 0;
inline constexpr AttributeId kYobAttr = 1;
inline constexpr AttributeId kTweetCountAttr = 2;
inline constexpr AttributeId kTagCountAttr = 3;

// The full t.qq network schema of the paper's Figure 2: entity types User,
// Tweet, Comment, Item; link types post/mention/retweet/comment-on/follow/
// recommendation. Users carry gender, yob, tweet_count (growable) and
// tag_count profile attributes.
NetworkSchema TqqFullSchema();

// The target meta paths of Section 3 over TqqFullSchema() — follow
// (reproduced), mention, retweet, and comment (short-circuited) — bundled
// as a projection spec. `full` must be TqqFullSchema().
TargetSchemaSpec TqqTargetSpec(const NetworkSchema& full);

// The projected target network schema of Figure 3: a single User entity
// type with follow/mention/retweet/comment strength links, in that order
// (kFollowLink..kCommentLink). This is the schema every experiment graph in
// this repository uses.
NetworkSchema TqqTargetSchema();

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_TQQ_SCHEMA_H_
