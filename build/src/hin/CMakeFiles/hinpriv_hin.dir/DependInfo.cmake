
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hin/binary_io.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/binary_io.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/binary_io.cc.o.d"
  "/root/repo/src/hin/density.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/density.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/density.cc.o.d"
  "/root/repo/src/hin/graph.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph.cc.o.d"
  "/root/repo/src/hin/graph_builder.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph_builder.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph_builder.cc.o.d"
  "/root/repo/src/hin/graph_stats.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph_stats.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/graph_stats.cc.o.d"
  "/root/repo/src/hin/homogenize.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/homogenize.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/homogenize.cc.o.d"
  "/root/repo/src/hin/io.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/io.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/io.cc.o.d"
  "/root/repo/src/hin/kdd_loader.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/kdd_loader.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/kdd_loader.cc.o.d"
  "/root/repo/src/hin/projection.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/projection.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/projection.cc.o.d"
  "/root/repo/src/hin/schema.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/schema.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/schema.cc.o.d"
  "/root/repo/src/hin/subgraph.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/subgraph.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/subgraph.cc.o.d"
  "/root/repo/src/hin/tqq_schema.cc" "src/hin/CMakeFiles/hinpriv_hin.dir/tqq_schema.cc.o" "gcc" "src/hin/CMakeFiles/hinpriv_hin.dir/tqq_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hinpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
