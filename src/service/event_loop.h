#ifndef HINPRIV_SERVICE_EVENT_LOOP_H_
#define HINPRIV_SERVICE_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace hinpriv::service {

// Non-blocking epoll front-end for the attack service: one thread owning
// every socket, replacing the thread-per-connection accept/reader pair.
// The loop accepts, assembles length-prefixed frames from readiness-driven
// reads, and hands each complete frame to the server's handler *on the
// loop thread*; responses are enqueued from any thread via Send() (workers
// finish a request, enqueue, and wake the loop through an eventfd) and
// flushed by the loop, with EPOLLOUT armed only while a connection has
// unsent bytes.
//
// Contract with the handler: it runs on the loop thread, so it must either
// answer inline without blocking (admin verbs — exactly the existing
// "answers under saturation" property, now load-shielded by construction
// because the loop never runs attack work) or hand off to the executor and
// return (serving verbs: parse, admit into the bounded queue or shed BUSY,
// submit a drain task).
//
// Backpressure and hygiene:
//   * a frame whose length prefix exceeds kMaxFrameBytes closes the
//     connection (same policy as the blocking reader);
//   * a connection holding more than max_pending_write_bytes of unsent
//     responses is disconnected — a client that pipelines requests but
//     never reads cannot grow the write queues unboundedly;
//   * Shutdown() drains: pending writes are flushed (bounded by
//     drain_grace_ms), then every socket is closed and the thread joined.
class EventLoop {
 public:
  struct Options {
    // Disconnect a connection whose queued unsent bytes exceed this.
    size_t max_pending_write_bytes = 64u << 20;
    // How long Shutdown() keeps flushing queued responses to slow readers
    // before closing regardless.
    int drain_grace_ms = 5000;
    // Loop-thread callbacks around connection lifecycle (telemetry).
    std::function<void(uint64_t)> on_accept;
    std::function<void(uint64_t)> on_close;
    // Called when a queued response is discarded — its connection died
    // first, or the write failed (the peer hung up without waiting).
    std::function<void()> on_dropped_response;
  };

  // Called on the loop thread with every complete frame payload.
  using FrameHandler = std::function<void(uint64_t conn_id, std::string frame)>;

  EventLoop(FrameHandler on_frame, Options options);
  ~EventLoop();  // implies Shutdown()

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the listening socket (non-blocking) and the epoll/eventfd
  // plumbing. Must precede Start().
  util::Status Listen(const std::string& host, uint16_t port);

  // The actually-bound port (after Listen with port 0).
  uint16_t port() const { return port_; }

  // Spawns the loop thread.
  void Start();

  // Queues one response frame (the loop adds the length prefix) for
  // `conn_id` and wakes the loop; if the connection is already gone by
  // flush time the response is dropped and on_dropped_response fires.
  // Returns false only when the loop has already shut down. Thread-safe;
  // callable from the loop thread itself (admin verbs answering inline).
  bool Send(uint64_t conn_id, std::string payload);

  // Stops accepting new connections; established ones keep serving.
  // Thread-safe, idempotent.
  void StopAccepting();

  // Flushes pending writes (up to drain_grace_ms), closes every socket,
  // stops and joins the loop thread. Idempotent.
  void Shutdown();

  // Live connection count (observability).
  size_t num_connections() const;

 private:
  struct Conn {
    int fd = -1;
    std::string read_buf;
    // Unsent frames; front() is partially written up to write_offset.
    std::deque<std::string> write_queue;
    size_t write_offset = 0;
    size_t pending_bytes = 0;
    bool epollout_armed = false;
  };

  void LoopMain();
  void AcceptReady();
  // Reads until EAGAIN, slicing complete frames to the handler. Returns
  // false when the connection must be closed (EOF, error, oversize frame).
  bool ReadReady(uint64_t id, Conn* conn);
  // Writes until EAGAIN or empty; arms/disarms EPOLLOUT. Returns false on
  // a fatal write error.
  bool FlushWrites(uint64_t id, Conn* conn);
  void CloseConn(uint64_t id);
  void DrainMailbox();
  void UpdateEvents(uint64_t id, Conn* conn);
  void WakeLoop();

  FrameHandler on_frame_;
  Options options_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> finished_{false};
  std::mutex shutdown_mu_;

  // Cross-thread mailbox: responses enqueued by workers, drained by the
  // loop each iteration.
  std::mutex mail_mu_;
  std::deque<std::pair<uint64_t, std::string>> mailbox_;

  // Owned by the loop thread after Start(); conn_count_ mirrors size() for
  // cross-thread reads.
  std::unordered_map<uint64_t, Conn> conns_;
  std::atomic<size_t> conn_count_{0};
  uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = eventfd
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_EVENT_LOOP_H_
