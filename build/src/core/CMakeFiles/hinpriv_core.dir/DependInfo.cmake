
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymity_metrics.cc" "src/core/CMakeFiles/hinpriv_core.dir/anonymity_metrics.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/anonymity_metrics.cc.o.d"
  "/root/repo/src/core/candidate_index.cc" "src/core/CMakeFiles/hinpriv_core.dir/candidate_index.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/candidate_index.cc.o.d"
  "/root/repo/src/core/dehin.cc" "src/core/CMakeFiles/hinpriv_core.dir/dehin.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/dehin.cc.o.d"
  "/root/repo/src/core/matchers.cc" "src/core/CMakeFiles/hinpriv_core.dir/matchers.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/matchers.cc.o.d"
  "/root/repo/src/core/privacy_risk.cc" "src/core/CMakeFiles/hinpriv_core.dir/privacy_risk.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/privacy_risk.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/core/CMakeFiles/hinpriv_core.dir/signature.cc.o" "gcc" "src/core/CMakeFiles/hinpriv_core.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hin/CMakeFiles/hinpriv_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hinpriv_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
