# Empty dependencies file for growth_test.
# This may be replaced when dependencies are built.
