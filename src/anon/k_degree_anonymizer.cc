#include "anon/k_degree_anonymizer.h"

#include <algorithm>
#include <unordered_set>

#include "hin/graph_builder.h"

namespace hinpriv::anon {

namespace {

using hin::Edge;
using hin::Graph;
using hin::GraphBuilder;
using hin::LinkTypeId;
using hin::VertexId;

// Copies vertices (with attributes) of `base` into a fresh builder.
util::Status CopyVertices(const Graph& base, GraphBuilder* builder) {
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    const hin::EntityTypeId t = base.entity_type(v);
    builder->AddVertex(t);
    const size_t num_attrs = base.num_attributes(t);
    for (hin::AttributeId a = 0; a < num_attrs; ++a) {
      HINPRIV_RETURN_IF_ERROR(builder->SetAttribute(v, a, base.attribute(v, a)));
    }
  }
  return util::Status::OK();
}

}  // namespace

util::Result<AnonymizedGraph> KDegreeAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  if (k_ < 2) {
    return util::Status::InvalidArgument("k-degree anonymity requires k >= 2");
  }
  auto permuted = PermuteVertices(target, rng);
  if (!permuted.ok()) return permuted.status();
  const Graph& base = permuted.value().graph;
  const size_t n = base.num_vertices();
  if (n < k_) {
    return util::Status::InvalidArgument(
        "graph smaller than the requested k");
  }

  GraphBuilder builder(base.schema());
  HINPRIV_RETURN_IF_ERROR(CopyVertices(base, &builder));

  for (LinkTypeId lt = 0; lt < base.num_link_types(); ++lt) {
    // Real edges first.
    for (VertexId v = 0; v < n; ++v) {
      for (const Edge& e : base.OutEdges(lt, v)) {
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, e.neighbor, lt, e.strength));
      }
    }
    // Greedy degree-sequence anonymization: vertices sorted by out-degree
    // descending, grouped in runs of size >= k, every member raised to the
    // group's maximum degree by adding fake edges to random non-neighbors.
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return base.OutDegree(lt, a) > base.OutDegree(lt, b);
    });
    size_t group_start = 0;
    while (group_start < n) {
      // The last group absorbs any remainder smaller than k.
      size_t group_end = group_start + k_;
      if (group_end > n || n - group_end < k_) group_end = n;
      const size_t group_max = base.OutDegree(lt, order[group_start]);
      for (size_t i = group_start; i < group_end; ++i) {
        const VertexId v = order[i];
        size_t degree = base.OutDegree(lt, v);
        if (degree >= group_max) continue;
        std::unordered_set<VertexId> taken;
        for (const Edge& e : base.OutEdges(lt, v)) taken.insert(e.neighbor);
        // Random non-neighbors; bounded retries in case the row is nearly
        // full, then a deterministic sweep finishes the job.
        size_t attempts = 0;
        while (degree < group_max && attempts < 16 * n) {
          ++attempts;
          const VertexId dst = static_cast<VertexId>(rng->UniformU64(n));
          if (dst == v || taken.contains(dst)) continue;
          taken.insert(dst);
          HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, dst, lt, fake_strength_));
          ++degree;
        }
        for (VertexId dst = 0; degree < group_max && dst < n; ++dst) {
          if (dst == v || taken.contains(dst)) continue;
          taken.insert(dst);
          HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, dst, lt, fake_strength_));
          ++degree;
        }
      }
      group_start = group_end;
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(),
                         std::move(permuted).value().to_original};
}

util::Result<AnonymizedGraph> EdgePerturbationAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  if (removal_prob_ < 0.0 || removal_prob_ > 1.0) {
    return util::Status::InvalidArgument("removal_prob must be in [0, 1]");
  }
  auto permuted = PermuteVertices(target, rng);
  if (!permuted.ok()) return permuted.status();
  const Graph& base = permuted.value().graph;
  const size_t n = base.num_vertices();

  GraphBuilder builder(base.schema());
  HINPRIV_RETURN_IF_ERROR(CopyVertices(base, &builder));
  size_t removed = 0;
  for (LinkTypeId lt = 0; lt < base.num_link_types(); ++lt) {
    for (VertexId v = 0; v < n; ++v) {
      for (const Edge& e : base.OutEdges(lt, v)) {
        if (rng->Bernoulli(removal_prob_)) {
          ++removed;
          continue;
        }
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, e.neighbor, lt, e.strength));
      }
    }
  }
  // Replace removed edges with fakes to keep the edge count (and thus the
  // published density) steady.
  const size_t num_links = base.num_link_types();
  for (size_t i = 0; i < removed && n >= 2; ++i) {
    const LinkTypeId lt = static_cast<LinkTypeId>(rng->UniformU64(num_links));
    const VertexId src = static_cast<VertexId>(rng->UniformU64(n));
    const VertexId dst = static_cast<VertexId>(rng->UniformU64(n));
    if (src == dst && !base.schema().link_type(lt).allows_self_link) continue;
    HINPRIV_RETURN_IF_ERROR(builder.AddEdge(src, dst, lt, fake_strength_));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(),
                         std::move(permuted).value().to_original};
}

}  // namespace hinpriv::anon
