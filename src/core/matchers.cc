#include "core/matchers.h"

#include "hin/tqq_schema.h"

namespace hinpriv::core {

MatchOptions DefaultTqqMatchOptions() {
  MatchOptions options;
  options.exact_attributes = {hin::kGenderAttr, hin::kYobAttr,
                              hin::kTagCountAttr};
  options.growable_attributes = {hin::kTweetCountAttr};
  options.link_types = {hin::kFollowLink, hin::kMentionLink, hin::kRetweetLink,
                        hin::kCommentLink};
  options.growth_aware = true;
  options.use_in_edges = false;
  return options;
}

bool EntityAttributesMatch(const hin::Graph& target, hin::VertexId vt,
                           const hin::Graph& aux, hin::VertexId va,
                           const MatchOptions& options) {
  for (hin::AttributeId a : options.exact_attributes) {
    if (target.attribute(vt, a) != aux.attribute(va, a)) return false;
  }
  for (hin::AttributeId a : options.growable_attributes) {
    if (options.growth_aware) {
      if (aux.attribute(va, a) < target.attribute(vt, a)) return false;
    } else {
      if (aux.attribute(va, a) != target.attribute(vt, a)) return false;
    }
  }
  return true;
}

std::vector<hin::LinkTypeId> AllLinkTypes(const hin::Graph& graph) {
  std::vector<hin::LinkTypeId> types(graph.num_link_types());
  for (size_t i = 0; i < types.size(); ++i) {
    types[i] = static_cast<hin::LinkTypeId>(i);
  }
  return types;
}

}  // namespace hinpriv::core
