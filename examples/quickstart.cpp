// Quickstart: the paper's motivating example (Section 1.1) in ~100 lines.
//
// A microblogging site publishes an anonymized copy of its user network.
// An adversary holding a later crawl of the same site (the auxiliary
// dataset) wants to re-identify the anonymized user "A3H", who accepted a
// bank recommendation. We build both datasets by hand, measure the privacy
// risk of the published data, and run the DeHIN attack.

#include <cstdio>

#include "anon/kdd_anonymizer.h"
#include "core/dehin.h"
#include "core/privacy_risk.h"
#include "hin/density.h"
#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "util/random.h"

namespace {

using hinpriv::hin::Graph;
using hinpriv::hin::GraphBuilder;
using hinpriv::hin::VertexId;

// Builds the "time T0" network that the publisher anonymizes: six users
// with profiles and a few typed, weighted interactions. Returns the graph;
// vertex 0 is the eventual attack target ("Ada" / anonymized "A3H").
Graph BuildOriginalNetwork() {
  GraphBuilder builder(hinpriv::hin::TqqTargetSchema());
  struct UserSpec {
    const char* name;
    int gender, yob, tweets, tags;
  };
  const UserSpec users[] = {
      {"Ada", 1, 1980, 120, 3},   // the target
      {"F8P", 0, 1985, 80, 2},    // commented 15 times by Ada
      {"M7R", 1, 1970, 400, 5},   // retweeted 10 times by Ada
      {"Bob", 1, 1980, 120, 3},   // same profile as Ada: profiles alone tie
      {"Eve", 0, 1990, 10, 1},
      {"Zed", 1, 1975, 55, 4},
  };
  for (const auto& u : users) {
    const VertexId v = builder.AddVertex(0);
    (void)builder.SetAttribute(v, hinpriv::hin::kGenderAttr, u.gender);
    (void)builder.SetAttribute(v, hinpriv::hin::kYobAttr, u.yob);
    (void)builder.SetAttribute(v, hinpriv::hin::kTweetCountAttr, u.tweets);
    (void)builder.SetAttribute(v, hinpriv::hin::kTagCountAttr, u.tags);
  }
  // Ada's distinguishing heterogeneous neighborhood (Figure 4 style):
  // 15 comments to F8P, 10 retweets of M7R, follows Zed.
  (void)builder.AddEdge(0, 1, hinpriv::hin::kCommentLink, 15);
  (void)builder.AddEdge(0, 2, hinpriv::hin::kRetweetLink, 10);
  (void)builder.AddEdge(0, 5, hinpriv::hin::kFollowLink, 1);
  // Bob shares Ada's profile but interacts differently.
  (void)builder.AddEdge(3, 4, hinpriv::hin::kMentionLink, 2);
  (void)builder.AddEdge(3, 5, hinpriv::hin::kFollowLink, 1);
  // Background chatter.
  (void)builder.AddEdge(4, 0, hinpriv::hin::kMentionLink, 1);
  (void)builder.AddEdge(5, 2, hinpriv::hin::kRetweetLink, 3);
  auto built = std::move(builder).Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(built).value();
}

}  // namespace

int main() {
  hinpriv::util::Rng rng(42);
  const Graph original = BuildOriginalNetwork();
  std::printf("Original network: %zu users, %zu typed links, density %.4f\n",
              original.num_vertices(), original.num_edges(),
              hinpriv::hin::Density(original));

  // --- The publisher measures privacy risk before release (Section 4) ---
  hinpriv::core::SignatureOptions sig_options;
  sig_options.attributes = {hinpriv::hin::kGenderAttr, hinpriv::hin::kYobAttr,
                            hinpriv::hin::kTagCountAttr};
  sig_options.link_types = hinpriv::core::AllLinkTypes(original);
  const auto risk =
      hinpriv::core::NetworkPrivacyRisk(original, sig_options, 2);
  for (const auto& level : risk) {
    std::printf(
        "Privacy risk at max distance %d: %.3f (cardinality %zu of %zu)\n",
        level.max_distance, level.risk, level.cardinality,
        original.num_vertices());
  }

  // --- The publisher releases an id-randomized copy (KDD Cup style) ------
  hinpriv::anon::KddAnonymizer anonymizer;
  auto published = anonymizer.Anonymize(original, &rng);
  if (!published.ok()) {
    std::fprintf(stderr, "anonymize failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  // Ada's anonymized id in the published graph.
  VertexId a3h = 0;
  for (VertexId v = 0; v < published.value().graph.num_vertices(); ++v) {
    if (published.value().to_original[v] == 0) a3h = v;
  }
  std::printf("\nPublished: Ada is now the meaningless id %u ('A3H')\n", a3h);

  // --- The adversary runs DeHIN with the original site as auxiliary ------
  hinpriv::core::DehinConfig config;
  config.match = hinpriv::core::DefaultTqqMatchOptions();
  config.match.growth_aware = false;  // time-synchronized for the demo
  config.max_distance = 1;
  hinpriv::core::Dehin dehin(&original, config);

  const auto profile_only = dehin.Deanonymize(published.value().graph, a3h, 0);
  std::printf("Profile-only candidates for A3H: %zu (ambiguous: Bob shares "
              "Ada's profile)\n",
              profile_only.size());
  const auto with_links = dehin.Deanonymize(published.value().graph, a3h, 1);
  std::printf("Candidates after utilizing distance-1 heterogeneous links: "
              "%zu\n",
              with_links.size());
  if (with_links.size() == 1 && with_links[0] == 0) {
    std::printf("A3H uniquely de-anonymized as auxiliary user 0 (Ada): the "
                "adversary now knows Ada's bank preference.\n");
    return 0;
  }
  std::printf("unexpected: attack did not converge to Ada\n");
  return 1;
}
