file(REMOVE_RECURSE
  "CMakeFiles/clique_seeds_test.dir/baselines/clique_seeds_test.cc.o"
  "CMakeFiles/clique_seeds_test.dir/baselines/clique_seeds_test.cc.o.d"
  "clique_seeds_test"
  "clique_seeds_test.pdb"
  "clique_seeds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
