# Empty dependencies file for hinpriv_cli.
# This may be replaced when dependencies are built.
