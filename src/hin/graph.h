#ifndef HINPRIV_HIN_GRAPH_H_
#define HINPRIV_HIN_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "hin/schema.h"
#include "hin/types.h"
#include "util/status.h"

namespace hinpriv::hin {

// One directed adjacency entry: the neighbor and the link strength
// (1 for unweighted link types such as follow).
struct Edge {
  VertexId neighbor = kInvalidVertex;
  Strength strength = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// The snapshot format (snapshot.h) stores Edge arrays verbatim, so the
// in-memory layout is part of the on-disk contract.
static_assert(sizeof(Edge) == 8 && std::is_trivially_copyable_v<Edge>,
              "Edge layout is part of the HINPRIVS snapshot format");

namespace internal {

// Heap backing store for a Graph built by GraphBuilder. The Graph's spans
// point into these vectors; a shared_ptr to the arena keeps them alive.
// Mapped snapshots use a util::MappedFile as the arena instead — the Graph
// never knows (or cares) which one backs it.
struct GraphArena {
  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<Edge> edges;
  };

  std::vector<EntityTypeId> vtype;
  std::vector<uint32_t> dense_idx;
  // attrs[entity_type][attribute][dense_index]
  std::vector<std::vector<std::vector<AttrValue>>> attrs;
  std::vector<Csr> out;  // one per link type
  std::vector<Csr> in;   // one per link type
};

}  // namespace internal

class SnapshotReader;

// An immutable heterogeneous information network instance (Definition 1):
// a directed graph whose vertices carry an entity type and per-type profile
// attributes, and whose edges carry a link type and a strength.
//
// Storage is per-link-type CSR, with both out- and in-adjacency, entries
// sorted by neighbor id; attributes are columnar per entity type. All bulk
// data is exposed through std::span views over an owned arena — either a
// heap arena filled by GraphBuilder (graph_builder.h) or an mmap'd snapshot
// (snapshot.h) used in place with zero deserialization. Immutable after
// construction, so const access is safe to share across threads; moving a
// Graph does not invalidate spans already taken from it (the arena's bytes
// never move).
class Graph {
 public:
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  const NetworkSchema& schema() const { return schema_; }

  size_t num_vertices() const { return vtype_.size(); }
  // Total directed edges across all link types (after duplicate merging).
  size_t num_edges() const { return num_edges_; }
  size_t num_link_types() const { return schema_.num_link_types(); }

  EntityTypeId entity_type(VertexId v) const { return vtype_[v]; }
  size_t NumVerticesOfType(EntityTypeId t) const {
    return type_counts_[t];
  }

  // Out-neighbors of v via link type lt, sorted by neighbor id.
  std::span<const Edge> OutEdges(LinkTypeId lt, VertexId v) const {
    const CsrView& adj = out_[lt];
    return adj.edges.subspan(adj.offsets[v], adj.offsets[v + 1] -
                                                 adj.offsets[v]);
  }
  // In-neighbors of v via link type lt (edge.neighbor is the source vertex),
  // sorted by neighbor id.
  std::span<const Edge> InEdges(LinkTypeId lt, VertexId v) const {
    const CsrView& adj = in_[lt];
    return adj.edges.subspan(adj.offsets[v], adj.offsets[v + 1] -
                                                 adj.offsets[v]);
  }

  size_t OutDegree(LinkTypeId lt, VertexId v) const {
    return out_[lt].offsets[v + 1] - out_[lt].offsets[v];
  }
  size_t InDegree(LinkTypeId lt, VertexId v) const {
    return in_[lt].offsets[v + 1] - in_[lt].offsets[v];
  }
  // Out-degree summed over all link types.
  size_t TotalOutDegree(VertexId v) const;

  // Strength of the edge src --lt--> dst, or 0 if absent. O(log deg).
  Strength EdgeStrength(LinkTypeId lt, VertexId src, VertexId dst) const;
  bool HasEdge(LinkTypeId lt, VertexId src, VertexId dst) const {
    return EdgeStrength(lt, src, dst) > 0;
  }

  // Profile attribute `attr` (an AttributeId within v's entity type) of v.
  AttrValue attribute(VertexId v, AttributeId attr) const {
    return attrs_[vtype_[v]][attr][dense_idx_[v]];
  }
  size_t num_attributes(EntityTypeId t) const {
    return schema_.entity_type(t).attributes.size();
  }

  // The full attribute column for one entity type; index i holds the value
  // for the i-th vertex of that type in vertex-id order. Used by cardinality
  // and index-building code paths.
  std::span<const AttrValue> AttributeColumn(EntityTypeId t,
                                             AttributeId attr) const {
    return attrs_[t][attr];
  }
  // Position of v inside its entity type's attribute columns.
  uint32_t dense_index(VertexId v) const { return dense_idx_[v]; }

  // True when this graph's bulk data lives in an mmap'd snapshot rather
  // than a heap arena (diagnostics / bench labeling only — behaviour is
  // identical either way).
  bool is_mapped() const { return mapped_; }

 private:
  friend class GraphBuilder;
  friend class SnapshotReader;
  Graph() = default;

  struct CsrView {
    std::span<const uint64_t> offsets;  // size num_vertices + 1
    std::span<const Edge> edges;
  };

  NetworkSchema schema_;
  std::span<const EntityTypeId> vtype_;
  std::span<const uint32_t> dense_idx_;
  std::vector<size_t> type_counts_;
  // attrs_[entity_type][attribute] -> column span of length type_counts_
  std::vector<std::vector<std::span<const AttrValue>>> attrs_;
  std::vector<CsrView> out_;  // one per link type
  std::vector<CsrView> in_;   // one per link type
  size_t num_edges_ = 0;
  bool mapped_ = false;
  // Type-erased owner of every byte the spans above reference: an
  // internal::GraphArena for built graphs, a util::MappedFile for
  // snapshots.
  std::shared_ptr<const void> arena_;
};

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_GRAPH_H_
