#include "util/hashing.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

TEST(HashingTest, Mix64Deterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(HashingTest, Mix64AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t base = Mix64(0xdeadbeefcafef00dULL);
  for (int bit = 0; bit < 64; bit += 7) {
    const uint64_t flipped = Mix64(0xdeadbeefcafef00dULL ^ (1ULL << bit));
    const int differing = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(differing, 16) << "bit " << bit;
    EXPECT_LT(differing, 48) << "bit " << bit;
  }
}

TEST(HashingTest, HashCombineOrderDependent) {
  const uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashingTest, HashCombineDistinguishesLengths) {
  // (1) vs (1, 0): appending an element must change the hash.
  const uint64_t one = HashCombine(0, 1);
  const uint64_t one_zero = HashCombine(HashCombine(0, 1), 0);
  EXPECT_NE(one, one_zero);
}

TEST(HashingTest, FewCollisionsOnSequentialKeys) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(HashingTest, FnV1aBasics) {
  EXPECT_EQ(FnV1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(FnV1a("abc"), FnV1a("abc"));
  EXPECT_NE(FnV1a("abc"), FnV1a("abd"));
  EXPECT_NE(FnV1a("ab"), FnV1a("abc"));
}

}  // namespace
}  // namespace hinpriv::util
