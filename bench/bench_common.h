#ifndef HINPRIV_BENCH_BENCH_COMMON_H_
#define HINPRIV_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction binaries. Each binary
// regenerates one table or figure of the paper's Section 6 on the synthetic
// t.qq substrate (see DESIGN.md for the substitution rationale): it prints
// the measured values next to the paper's published numbers so the *shape*
// comparison is immediate. Absolute values are not expected to match — the
// auxiliary network here is synthetic and (by default) smaller than the
// 2.3M-user original; pass --aux_users to scale up.

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dehin.h"
#include "core/matchers.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace hinpriv::bench {

// Registers the flags every experiment binary shares. The acceleration
// ablations (--no-prefilter, --no-shared-cache; hyphens and underscores
// both accepted) turn off one DeHIN acceleration layer each, so its
// speedup is measurable in isolation; with both set the attack reproduces
// the pre-acceleration code path.
inline void DefineCommonFlags(util::FlagParser* flags) {
  flags->Define("aux_users", "50000",
                "users in the base/auxiliary network (paper: 2,320,895)");
  flags->Define("target_size", "1000",
                "users per published target graph (paper: 1000)");
  flags->Define("seed", "20140324", "rng seed (EDBT 2014 opening day)");
  flags->Define("tsv", "false", "emit tab-separated output for plotting");
  flags->Define("no_prefilter", "false",
                "disable the neighborhood-stats prefilter (Layer 1)");
  flags->Define("no_shared_cache", "false",
                "disable the cross-call match cache (Layer 2)");
  flags->Define("dominance_kernel", "auto",
                "Layer-1 strength-dominance kernel: auto|scalar|sse2|avx2 "
                "(ablation knob; results are identical across kernels)");
}

// Parses the --dominance-kernel flag; exits with a usage error on an
// unknown spelling so sweep-script typos fail loudly.
inline core::DominanceKernel DominanceKernelFromFlags(
    const util::FlagParser& flags) {
  core::DominanceKernel kernel;
  const std::string value = flags.GetString("dominance_kernel");
  if (!core::ParseDominanceKernel(value, &kernel)) {
    std::fprintf(stderr,
                 "invalid --dominance-kernel '%s' (want auto|scalar|sse2|"
                 "avx2)\n",
                 value.c_str());
    std::exit(2);
  }
  return kernel;
}

// Parses argv; on --help or error prints and exits.
inline void ParseFlagsOrDie(util::FlagParser* flags, int argc, char** argv) {
  const util::Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags->Usage(argv[0]).c_str());
    std::exit(2);
  }
  if (flags->help_requested()) {
    std::printf("%s", flags->Usage(argv[0]).c_str());
    std::exit(0);
  }
}

inline synth::TqqConfig AuxConfigFromFlags(const util::FlagParser& flags) {
  synth::TqqConfig config;
  config.num_users = static_cast<size_t>(flags.GetInt("aux_users"));
  return config;
}

inline synth::PlantedTargetSpec TargetSpecFromFlags(
    const util::FlagParser& flags, double density) {
  synth::PlantedTargetSpec spec;
  spec.target_size = static_cast<size_t>(flags.GetInt("target_size"));
  spec.density = density;
  return spec;
}

// The attack configuration of Section 6: growth-aware t.qq matchers; the
// reconfigured variant (Section 6.2) adds the saturation fallback and is
// paired with majority-strength stripping by the caller.
inline core::DehinConfig AttackConfig(bool reconfigured) {
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  if (reconfigured) config.saturation_fraction = 0.5;
  return config;
}

// Same, with the acceleration-ablation flags applied.
inline core::DehinConfig AttackConfig(bool reconfigured,
                                      const util::FlagParser& flags) {
  core::DehinConfig config = AttackConfig(reconfigured);
  config.use_prefilter = !flags.GetBool("no_prefilter");
  config.use_shared_cache = !flags.GetBool("no_shared_cache");
  config.dominance_kernel = DominanceKernelFromFlags(flags);
  return config;
}

// Per-query latency percentiles through the same windowed-differencing
// machinery the resident service's stats verb uses: latencies recorded via
// Record() land in a registry histogram, and Snapshot() differences the
// registry against the baseline taken at construction, so the percentiles
// cover exactly this probe's lifetime — untouched by whatever the same
// process recorded into the histogram before (e.g. a warmup pass).
class WindowedLatencyProbe {
 public:
  explicit WindowedLatencyProbe(const char* name)
      : name_(name),
        histogram_(obs::MetricsRegistry::Global().GetHistogram(name)) {
    window_.SampleNow();  // baseline
  }

  void Record(uint64_t latency_us) { histogram_->Record(latency_us); }

  // The delta histogram since construction; call Percentile(50/95/99) on it.
  obs::HistogramSnapshot Snapshot() {
    window_.SampleNow();
    // A window wider than any run collapses to the baseline sample.
    return window_.HistogramWindow(name_, 1e12);
  }

 private:
  const char* name_;
  obs::Histogram* histogram_;
  obs::WindowedAggregator window_;
};

// --- machine-readable bench output ----------------------------------------

// One benchmark's result for the JSON perf log: wall time plus whatever
// counters the benchmark recorded (e.g. prefilter reject rate, match-cache
// hit rate).
struct BenchJsonEntry {
  std::string name;
  double real_time_s = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// The context facts every bench's --json output shares, so sweep tooling
// can rely on one schema: the resolved and requested dominance kernels plus
// the common sizing flags. `extra` appends bench-specific pairs. This is
// the single home of what used to be copy-pasted per bench.
inline std::vector<std::pair<std::string, std::string>> KernelContext(
    core::DominanceKernel requested) {
  const core::ResolvedDominanceKernel kernel =
      core::ResolveDominanceKernel(requested);
  return {{"dominance_kernel", kernel.name},
          {"dominance_kernel_requested",
           core::DominanceKernelChoiceName(requested)}};
}

inline std::vector<std::pair<std::string, std::string>> CommonBenchContext(
    const util::FlagParser& flags,
    std::vector<std::pair<std::string, std::string>> extra = {}) {
  std::vector<std::pair<std::string, std::string>> context =
      KernelContext(DominanceKernelFromFlags(flags));
  context.emplace_back("aux_users", flags.GetString("aux_users"));
  context.emplace_back("target_size", flags.GetString("target_size"));
  context.emplace_back("seed", flags.GetString("seed"));
  // Caveat for cross-machine comparison: wall times in these JSONs depend
  // on the core count of the machine that produced them (parallel scans,
  // background page reclaim), so a perf trajectory is only meaningful
  // between runs whose hardware_concurrency agrees.
  context.emplace_back("hardware_concurrency",
                       std::to_string(std::thread::hardware_concurrency()));
  for (auto& pair : extra) context.push_back(std::move(pair));
  return context;
}

// Writes `entries` as a stable, diffable JSON document so future PRs have
// a perf trajectory to regress against (the acceptance flow stores it as
// BENCH_dehin.json). `context` holds run-level string facts — notably the
// resolved dominance kernel — as a top-level "context" object, and a
// snapshot of the process-wide obs::MetricsRegistry (every counter/gauge/
// histogram the run touched) is embedded under "metrics", giving all
// benches one uniform context+metrics block. Returns false (with a message
// on stderr) when the file cannot be written.
inline bool WriteBenchJson(
    const std::string& path, const std::vector<BenchJsonEntry>& entries,
    const std::vector<std::pair<std::string, std::string>>& context = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench json to '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  if (!context.empty()) {
    std::fprintf(f, "  \"context\": {");
    for (size_t i = 0; i < context.size(); ++i) {
      std::fprintf(f, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                   JsonEscape(context[i].first).c_str(),
                   JsonEscape(context[i].second).c_str());
    }
    std::fprintf(f, "},\n");
  }
  {
    const std::string metrics_obj = std::string(util::Trim(
        obs::MetricsRegistry::Global().Snapshot().ToJson()));
    std::fprintf(f, "  \"metrics\": %s,\n", metrics_obj.c_str());
  }
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"real_time_s\": %.9g",
                 JsonEscape(e.name).c_str(), e.real_time_s);
    for (const auto& [key, value] : e.counters) {
      std::fprintf(f, ", \"%s\": %.9g", JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

// Percent formatting used throughout the paper's tables.
inline std::string Pct(double fraction, int decimals = 1) {
  return util::FormatDouble(fraction * 100.0, decimals);
}

}  // namespace hinpriv::bench

#endif  // HINPRIV_BENCH_BENCH_COMMON_H_
