# Empty compiler generated dependencies file for hinpriv_core.
# This may be replaced when dependencies are built.
