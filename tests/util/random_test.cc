#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformU64StaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PowerLawRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.PowerLaw(1, 100, 2.3);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
  EXPECT_EQ(rng.PowerLaw(5, 5, 2.5), 5u);
}

TEST(RngTest, PowerLawIsHeavyTailedAndDecreasing) {
  Rng rng(19);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t k = rng.PowerLaw(1, 1000, 2.3);
    if (k <= 10) ++counts[k];
  }
  // Monotone decreasing counts over small k, and k=1 dominates.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_GT(counts[1], 50000 / 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingle) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  const auto all = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.Fork();
  // The child must differ from a fresh parent-seeded stream.
  Rng b(123);
  b.NextU64();  // advance past the Fork draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfSamplerTest, RanksInRange) {
  Rng rng(37);
  ZipfSampler zipf(10, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 10u);
}

TEST(ZipfSamplerTest, RankZeroMostFrequent) {
  Rng rng(41);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10] * 5);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  Rng rng(43);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(47);
  ZipfSampler zipf(1, 2.0);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace hinpriv::util
