#ifndef HINPRIV_CORE_PRIVACY_RISK_H_
#define HINPRIV_CORE_PRIVACY_RISK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/signature.h"
#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::core {

// Privacy risk of one tuple and of a whole dataset (Definitions 7-8):
//
//   R(t_i) = l(t_i) / k(t_i)        R(T) = (1/N) sum_i R(t_i)
//
// where k(t_i) is the number of tuples sharing t_i's (combined) value and
// l(t_i) in [0,1] is the tuple's loss function (social factor). With all
// losses 1, Theorem 1 gives R(T) = C(T)/N with C(T) the number of distinct
// values.

// Per-tuple mathematical factor 1/k(t_i) for each value.
std::vector<double> PerTupleRisk(std::span<const uint64_t> values);

// Dataset risk with explicit loss functions (Definition 8). `losses` must
// have the same length as `values` with entries in [0, 1].
util::Result<double> DatasetRiskWithLoss(std::span<const uint64_t> values,
                                         std::span<const double> losses);

// Dataset risk with all losses set to 1 (Theorem 1): C(T)/N.
double DatasetRisk(std::span<const uint64_t> values);

// Lemma 1 estimator: expected dataset risk when losses are independent of
// 1/k with mean `mean_loss`:  E[R(T)] = mean_loss * C(T) / N.
double ExpectedRisk(size_t cardinality, size_t num_tuples, double mean_loss);

// One row of the Section 4.3 empirical analysis: the risk of a network's
// entities when their attribute-metapath-combined values use neighbors up
// to max distance n.
struct NetworkRiskResult {
  int max_distance = 0;
  size_t cardinality = 0;  // C(T_G*)_n observed
  double risk = 0.0;       // cardinality / num entities
};

// Computes the risk ladder for n = 0..max_distance over one graph using
// the given signature configuration (Table 1 / Figure 7 engine).
std::vector<NetworkRiskResult> NetworkPrivacyRisk(
    const hin::Graph& graph, const SignatureOptions& options,
    int max_distance);

// Theorem 2 bound exponents, in log-space to avoid overflow: the log of
// the lower/upper bounds of the expected network cardinality at distance n
// given the entity cardinality C(E*) and heterogeneous link cardinality
// C(L*):
//   log LB = 2^n     * (log C(E*) + n * log C(L*))        (Equation 2)
//   log UB = N^n     * (log C(E*) + n * log C(L*))        (Equation 3)
// Used by tests/benches to exhibit the faster-than-double-exponential
// growth the paper proves.
double LogCardinalityLowerBound(int n, double log_entity_cardinality,
                                double log_link_cardinality);
double LogCardinalityUpperBound(int n, double log_entity_cardinality,
                                double log_link_cardinality,
                                size_t num_entities);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_PRIVACY_RISK_H_
