#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/json.h"

namespace hinpriv::service {
namespace {

TEST(JsonTest, ScalarRoundTrips) {
  for (const std::string doc :
       {"null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}",
        "[1,2,3]", "{\"a\":1,\"b\":[true,null]}"}) {
    auto parsed = JsonValue::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    EXPECT_EQ(parsed.value().Serialize(), doc);
  }
}

TEST(JsonTest, StringEscapes) {
  auto parsed = JsonValue::Parse("\"a\\n\\t\\\"\\\\ b \\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "a\n\t\"\\ b \xc3\xa9");
  // Serialize -> parse is the identity on the value.
  auto reparsed = JsonValue::Parse(parsed.value().Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().AsString(), parsed.value().AsString());
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const std::string doc :
       {"", "tru", "[1,", "{\"a\"}", "{\"a\":}", "\"unterminated", "1 2",
        "[1] trailing", "{\"a\":1,}", "nul"}) {
    EXPECT_FALSE(JsonValue::Parse(doc).ok()) << doc;
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, IntegersSerializeExactly) {
  EXPECT_EQ(JsonValue::Int(1234567890123).Serialize(), "1234567890123");
  EXPECT_EQ(JsonValue::Int(-42).Serialize(), "-42");
}

TEST(ProtocolTest, RequestRoundTrips) {
  Request request;
  request.id = 42;
  request.method = Method::kAttackOne;
  request.target = 123;
  request.has_target = true;
  request.max_distance = 2;
  request.deadline_ms = 250.5;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().method, Method::kAttackOne);
  EXPECT_TRUE(decoded.value().has_target);
  EXPECT_EQ(decoded.value().target, 123u);
  EXPECT_EQ(decoded.value().max_distance, 2);
  EXPECT_DOUBLE_EQ(decoded.value().deadline_ms, 250.5);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  Response response;
  response.id = 7;
  response.code = ResponseCode::kOk;
  JsonValue payload = JsonValue::Object();
  payload.Set("num_candidates", JsonValue::Int(3));
  response.result = payload;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 7u);
  EXPECT_EQ(decoded.value().code, ResponseCode::kOk);
  EXPECT_EQ(decoded.value().result.GetInt("num_candidates"), 3);

  response.code = ResponseCode::kBusy;
  response.error = "queue full";
  decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, ResponseCode::kBusy);
  EXPECT_EQ(decoded.value().error, "queue full");
}

TEST(ProtocolTest, DecodeRequestValidates) {
  // Not an object.
  EXPECT_FALSE(DecodeRequest(JsonValue::Int(1)).ok());
  // Missing id.
  auto doc = JsonValue::Parse(R"({"method":"stats"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DecodeRequest(doc.value()).ok());
  // Unknown method.
  doc = JsonValue::Parse(R"({"id":1,"method":"frobnicate"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DecodeRequest(doc.value()).ok());
  // attack_one without target.
  doc = JsonValue::Parse(R"({"id":1,"method":"attack_one"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DecodeRequest(doc.value()).ok());
  // Negative target.
  doc = JsonValue::Parse(R"({"id":1,"method":"attack_one","target":-5})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DecodeRequest(doc.value()).ok());
  // Absurd max_distance.
  doc = JsonValue::Parse(
      R"({"id":1,"method":"risk","max_distance":1000000})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DecodeRequest(doc.value()).ok());
}

class FramePipeTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePipeTest, FrameRoundTrips) {
  const std::string payload = R"({"id":1,"method":"stats"})";
  ASSERT_TRUE(WriteFrame(fds_[0], payload).ok());
  auto read_back = ReadFrame(fds_[1]);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  ASSERT_TRUE(read_back.value().has_value());
  EXPECT_EQ(*read_back.value(), payload);
}

TEST_F(FramePipeTest, EmptyFrameRoundTrips) {
  ASSERT_TRUE(WriteFrame(fds_[0], "").ok());
  auto read_back = ReadFrame(fds_[1]);
  ASSERT_TRUE(read_back.ok());
  ASSERT_TRUE(read_back.value().has_value());
  EXPECT_TRUE(read_back.value()->empty());
}

TEST_F(FramePipeTest, CleanEofAtFrameBoundaryIsNullopt) {
  ::close(fds_[0]);
  fds_[0] = -1;
  auto read_back = ReadFrame(fds_[1]);
  ASSERT_TRUE(read_back.ok());
  EXPECT_FALSE(read_back.value().has_value());
}

TEST_F(FramePipeTest, TruncatedFrameIsCorruption) {
  // A length prefix promising 100 bytes, then hangup after 3.
  const char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  auto read_back = ReadFrame(fds_[1]);
  EXPECT_FALSE(read_back.ok());
  EXPECT_EQ(read_back.status().code(), util::Status::Code::kCorruption);
}

TEST_F(FramePipeTest, OversizedLengthPrefixRejected) {
  // 0xFFFFFFFF length: must be rejected before any allocation attempt.
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  auto read_back = ReadFrame(fds_[1]);
  EXPECT_FALSE(read_back.ok());
  EXPECT_EQ(read_back.status().code(), util::Status::Code::kCorruption);
}

TEST_F(FramePipeTest, OversizedPayloadRefusedOnWrite) {
  const std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(WriteFrame(fds_[0], big).ok());
}

TEST_F(FramePipeTest, BackToBackFramesPreserveBoundaries) {
  ASSERT_TRUE(WriteFrame(fds_[0], "first").ok());
  ASSERT_TRUE(WriteFrame(fds_[0], "second").ok());
  auto a = ReadFrame(fds_[1]);
  auto b = ReadFrame(fds_[1]);
  ASSERT_TRUE(a.ok() && a.value().has_value());
  ASSERT_TRUE(b.ok() && b.value().has_value());
  EXPECT_EQ(*a.value(), "first");
  EXPECT_EQ(*b.value(), "second");
}

}  // namespace
}  // namespace hinpriv::service
