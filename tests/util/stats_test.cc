#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 2.0, 2.0}), 0.0);
  // Sample stddev of {1, 3} is sqrt(2).
  EXPECT_NEAR(StdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, PercentileBasics) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 20.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 75.0), 7.5);
}

TEST(StatsTest, PercentileClampsOutOfRangeP) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 150.0), 2.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 10.0, 0.25};
  RunningStats s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), StdDev(xs), 1e-12);
}

TEST(RunningStatsTest, TracksMinMax) {
  RunningStats s;
  s.Add(5.0);
  s.Add(-2.0);
  s.Add(8.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

}  // namespace
}  // namespace hinpriv::util
