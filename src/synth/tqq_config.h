#ifndef HINPRIV_SYNTH_TQQ_CONFIG_H_
#define HINPRIV_SYNTH_TQQ_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace hinpriv::synth {

// Configuration of the synthetic t.qq-like network generator.
//
// The paper evaluates on the (non-redistributable) KDD Cup 2012 t.qq
// dataset; this generator is the substitution documented in DESIGN.md.
// Defaults are calibrated to the attribute cardinalities the paper reports
// for its density-0.01 samples (gender 3, yob 87, tweet count 643, tags 11)
// and to a power-law out-degree with alpha in [2, 3] (Section 4.3).
struct TqqConfig {
  // Number of user entities in the base (time-T0) network. The paper's
  // auxiliary network has 2,320,895 users; benches default lower for
  // wall-clock and scale up via flags.
  size_t num_users = 100'000;

  // --- Profile attribute distributions -----------------------------------
  // gender in [0, num_genders); t.qq exposes male/female/unknown.
  int num_genders = 3;
  // Year of birth uniformly Zipf-skewed over [yob_min, yob_max]; the span
  // matches the cardinality 87 the paper observed.
  int yob_min = 1925;
  int yob_max = 2011;  // 87 distinct values
  double yob_zipf = 1.0;
  // Tweet count: Zipf rank scaled into a long-tailed count so that a few
  // users have very large counts (observed cardinality ~643).
  int tweet_count_max = 20'000;
  double tweet_count_zipf = 1.3;
  // Number of profile tags in [0, tag_count_max] (cardinality 11).
  int tag_count_max = 10;
  double tag_zipf = 1.2;

  // --- Popularity (preferential attachment) -------------------------------
  // Link destinations are drawn Zipf(popularity_zipf) over vertex ids, so
  // low ids are global hubs (celebrities everyone follows/mentions). Hub
  // sharing between users is what keeps low-density de-anonymization hard:
  // a spurious candidate often links to the *same* popular neighbors as the
  // target, exactly as in real microblogging graphs.
  double popularity_zipf = 0.9;

  // --- Background interaction graph ---------------------------------------
  // Per link type, each user draws out-degree 0 with probability
  // zero_degree_prob, otherwise PowerLaw(1, out_degree_max, out_degree_alpha).
  double out_degree_alpha = 2.3;
  uint64_t out_degree_max = 500;
  double zero_degree_prob = 0.25;
  // Strengths of weighted links: PowerLaw(1, strength_max, strength_alpha),
  // so most interactions happen once and a few are heavy.
  uint64_t strength_max = 30;
  double strength_alpha = 2.2;
};

// Growth applied to the base network to produce the adversary's
// later-crawled auxiliary dataset (Section 5.1 threat model): the auxiliary
// is a superset of the target-time network — users and links are only
// added, growable attributes and strengths only increase.
struct GrowthConfig {
  // New users appended, as a fraction of the base user count.
  double new_user_fraction = 0.05;
  // New directed links added, as a fraction of the base edge count; sources
  // and destinations are drawn from the grown user set.
  double new_edge_fraction = 0.03;
  // Per user, probability that a growable attribute (tweet count) grows,
  // and the maximum increment.
  double attr_growth_prob = 0.3;
  int attr_growth_max = 50;
  // Per edge of a growable-strength link type, probability the strength
  // grows, and the maximum increment.
  double strength_growth_prob = 0.1;
  uint32_t strength_growth_max = 3;
};

}  // namespace hinpriv::synth

#endif  // HINPRIV_SYNTH_TQQ_CONFIG_H_
