#include "hin/graph.h"

#include <algorithm>

namespace hinpriv::hin {

size_t Graph::TotalOutDegree(VertexId v) const {
  size_t total = 0;
  for (const auto& adj : out_) {
    total += adj.offsets[v + 1] - adj.offsets[v];
  }
  return total;
}

Strength Graph::EdgeStrength(LinkTypeId lt, VertexId src, VertexId dst) const {
  const auto edges = OutEdges(lt, src);
  auto it = std::lower_bound(
      edges.begin(), edges.end(), dst,
      [](const Edge& e, VertexId v) { return e.neighbor < v; });
  if (it != edges.end() && it->neighbor == dst) return it->strength;
  return 0;
}

}  // namespace hinpriv::hin
