#include "baselines/propagation_attack.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace hinpriv::baselines {

namespace {

using hin::Edge;
using hin::Graph;
using hin::LinkTypeId;
using hin::VertexId;

// Accumulates votes for auxiliary candidates of one unmapped target
// vertex: every mapped target neighbor nominates the auxiliary vertices
// standing in the same typed/directed relation to its own image.
void CollectVotes(const Graph& target, const Graph& aux,
                  const std::vector<VertexId>& mapping,
                  const std::vector<bool>& aux_used,
                  const std::vector<LinkTypeId>& link_types,
                  bool normalize_by_degree, VertexId vt,
                  std::unordered_map<VertexId, double>* votes) {
  auto vote = [&](VertexId candidate, double weight) {
    if (aux_used[candidate]) return;  // injective mapping
    (*votes)[candidate] += weight;
  };
  for (LinkTypeId lt : link_types) {
    // v' -> b' in the target: candidates are in-neighbors of b's image.
    for (const Edge& out : target.OutEdges(lt, vt)) {
      const VertexId image = mapping[out.neighbor];
      if (image == hin::kInvalidVertex) continue;
      for (const Edge& candidate : aux.InEdges(lt, image)) {
        const double weight =
            normalize_by_degree
                ? 1.0 / std::sqrt(1.0 + static_cast<double>(
                                            aux.TotalOutDegree(
                                                candidate.neighbor)))
                : 1.0;
        vote(candidate.neighbor, weight);
      }
    }
    // b' -> v' in the target: candidates are out-neighbors of b's image.
    for (const Edge& in : target.InEdges(lt, vt)) {
      const VertexId image = mapping[in.neighbor];
      if (image == hin::kInvalidVertex) continue;
      for (const Edge& candidate : aux.OutEdges(lt, image)) {
        const double weight =
            normalize_by_degree
                ? 1.0 / std::sqrt(1.0 + static_cast<double>(
                                            aux.TotalOutDegree(
                                                candidate.neighbor)))
                : 1.0;
        vote(candidate.neighbor, weight);
      }
    }
  }
}

// Eccentricity of the score distribution: (best - second) / stddev.
// A single candidate is maximally eccentric.
bool IsEccentric(const std::unordered_map<VertexId, double>& votes,
                 double theta, VertexId* winner) {
  if (votes.empty()) return false;
  VertexId best = hin::kInvalidVertex;
  double best_score = -1.0;
  double second_score = -1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [candidate, score] : votes) {
    sum += score;
    sum_sq += score * score;
    if (score > best_score) {
      second_score = best_score;
      best_score = score;
      best = candidate;
    } else if (score > second_score) {
      second_score = score;
    }
  }
  *winner = best;
  if (votes.size() == 1) return true;
  const double n = static_cast<double>(votes.size());
  const double mean = sum / n;
  const double variance = std::max(0.0, sum_sq / n - mean * mean);
  const double stddev = std::sqrt(variance);
  if (stddev == 0.0) return false;  // a tie carries no signal
  return (best_score - second_score) / stddev >= theta;
}

}  // namespace

util::Result<PropagationResult> RunPropagationAttack(
    const hin::Graph& target, const hin::Graph& auxiliary,
    const std::vector<std::pair<VertexId, VertexId>>& seeds,
    const PropagationConfig& config) {
  if (target.num_link_types() != auxiliary.num_link_types()) {
    return util::Status::InvalidArgument(
        "target and auxiliary graphs have different link type counts");
  }
  if (config.max_iterations < 1) {
    return util::Status::InvalidArgument("max_iterations must be >= 1");
  }
  std::vector<LinkTypeId> link_types = config.link_types;
  if (link_types.empty()) {
    for (size_t lt = 0; lt < target.num_link_types(); ++lt) {
      link_types.push_back(static_cast<LinkTypeId>(lt));
    }
  }
  for (LinkTypeId lt : link_types) {
    if (lt >= target.num_link_types()) {
      return util::Status::InvalidArgument("link type out of range");
    }
  }

  PropagationResult result;
  result.mapping.assign(target.num_vertices(), hin::kInvalidVertex);
  std::vector<bool> aux_used(auxiliary.num_vertices(), false);
  for (const auto& [vt, va] : seeds) {
    if (vt >= target.num_vertices() || va >= auxiliary.num_vertices()) {
      return util::Status::OutOfRange("seed vertex out of range");
    }
    if (result.mapping[vt] != hin::kInvalidVertex || aux_used[va]) {
      return util::Status::InvalidArgument("duplicate seed mapping");
    }
    result.mapping[vt] = va;
    aux_used[va] = true;
    ++result.num_mapped;
  }

  std::unordered_map<VertexId, double> votes;
  for (int pass = 0; pass < config.max_iterations; ++pass) {
    ++result.iterations_run;
    size_t newly_mapped = 0;
    for (VertexId vt = 0; vt < target.num_vertices(); ++vt) {
      if (result.mapping[vt] != hin::kInvalidVertex) continue;
      votes.clear();
      CollectVotes(target, auxiliary, result.mapping, aux_used, link_types,
                   config.normalize_by_degree, vt, &votes);
      VertexId winner = hin::kInvalidVertex;
      if (!IsEccentric(votes, config.theta, &winner)) continue;
      result.mapping[vt] = winner;
      aux_used[winner] = true;
      ++newly_mapped;
      ++result.num_mapped;
    }
    if (newly_mapped == 0) break;
  }
  return result;
}

}  // namespace hinpriv::baselines
