# Empty compiler generated dependencies file for tqq_generator_test.
# This may be replaced when dependencies are built.
