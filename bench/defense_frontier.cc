// The utility-vs-privacy frontier the paper's future-work item (b) asks
// for: for each candidate defense, measure the attack precision it leaves
// (privacy) against how much published information it destroys (utility).
//
// Utility proxies:
//   link retention   = published real links / original links
//   strength fidelity = 1 - mean relative error of published strengths on
//                       surviving real links (fake links don't count)
//
// Defenses swept: none (KDDA), strength bucketing (Section 4.5: reduce
// C(L*)), link-type dropping ("premium-only relationships"), k-degree,
// CGA, VW-CGA, edge perturbation.

#include <cmath>
#include <iostream>
#include <memory>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "anon/utility_tradeoff_anonymizers.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

struct UtilityReport {
  double link_retention = 0.0;    // real links that survive publication
  double strength_fidelity = 0.0; // accuracy of surviving strengths
  double link_precision = 0.0;    // real fraction of *published* links
                                  // (fake-link flooding shows up here)
};

// Compares the published graph against the pre-anonymization target using
// the anonymizer permutation embedded in the experiment's ground truth is
// not available here, so we recompute utility on a second, permutation-free
// publication pass of the same anonymizer.
UtilityReport MeasureUtility(const hin::Graph& original,
                             const anon::Anonymizer& anonymizer,
                             uint64_t seed) {
  util::Rng rng(seed);
  auto published = anonymizer.Anonymize(original, &rng);
  UtilityReport report;
  if (!published.ok()) return report;
  const hin::Graph& anon_graph = published.value().graph;
  const auto& to_original = published.value().to_original;
  std::vector<hin::VertexId> to_new(original.num_vertices());
  for (hin::VertexId v = 0; v < anon_graph.num_vertices(); ++v) {
    to_new[to_original[v]] = v;
  }
  size_t total = 0;
  size_t kept = 0;
  double fidelity_sum = 0.0;
  for (hin::LinkTypeId lt = 0; lt < original.num_link_types(); ++lt) {
    for (hin::VertexId v = 0; v < original.num_vertices(); ++v) {
      for (const hin::Edge& e : original.OutEdges(lt, v)) {
        ++total;
        const hin::Strength published_strength = anon_graph.EdgeStrength(
            lt, to_new[v], to_new[e.neighbor]);
        if (published_strength == 0) continue;
        ++kept;
        const double err =
            std::fabs(static_cast<double>(published_strength) -
                      static_cast<double>(e.strength)) /
            static_cast<double>(e.strength);
        fidelity_sum += std::max(0.0, 1.0 - err);
      }
    }
  }
  if (total > 0) {
    report.link_retention = static_cast<double>(kept) /
                            static_cast<double>(total);
  }
  if (kept > 0) {
    report.strength_fidelity = fidelity_sum / static_cast<double>(kept);
  }
  if (anon_graph.num_edges() > 0) {
    report.link_precision = static_cast<double>(kept) /
                            static_cast<double>(anon_graph.num_edges());
  }
  return report;
}

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const double density = flags.GetDouble("density");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  struct Defense {
    std::unique_ptr<anon::Anonymizer> anonymizer;
    bool reconfigured;
  };
  std::vector<Defense> defenses;
  defenses.push_back({std::make_unique<anon::KddAnonymizer>(), false});
  defenses.push_back(
      {std::make_unique<anon::StrengthBucketingAnonymizer>(5), false});
  defenses.push_back(
      {std::make_unique<anon::StrengthBucketingAnonymizer>(30), false});
  defenses.push_back({std::make_unique<anon::LinkTypeDroppingAnonymizer>(
                          std::vector<hin::LinkTypeId>{hin::kFollowLink}),
                      false});
  defenses.push_back({std::make_unique<anon::KDegreeAnonymizer>(20), true});
  defenses.push_back(
      {std::make_unique<anon::CompleteGraphAnonymizer>(), true});
  defenses.push_back(
      {std::make_unique<anon::VaryingWeightCgaAnonymizer>(), true});
  defenses.push_back(
      {std::make_unique<anon::EdgePerturbationAnonymizer>(0.2), false});

  std::printf("Defense frontier at density %.3f: attack precision left vs. "
              "utility destroyed\n\n",
              density);
  util::TablePrinter table({"defense", "precision% (n=2)", "link retention%",
                            "strength fidelity%", "link precision%"});

  for (const Defense& defense : defenses) {
    util::Rng rng(seed);
    auto dataset = eval::BuildExperimentDataset(
        bench::AuxConfigFromFlags(flags),
        bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{},
        *defense.anonymizer, defense.reconfigured, &rng);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset failed for %s: %s\n",
                   defense.anonymizer->name().c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    core::Dehin dehin(&dataset.value().auxiliary,
                      bench::AttackConfig(defense.reconfigured));
    const auto metrics = eval::EvaluateAttackParallel(
        dehin, dataset.value().target, dataset.value().ground_truth, 2);

    // Utility measured against a fresh un-grown target with the same
    // distribution (same seed => same base network draw).
    util::Rng utility_rng(seed);
    auto clean = synth::BuildPlantedDataset(
        bench::AuxConfigFromFlags(flags),
        bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{},
        &utility_rng);
    UtilityReport utility;
    if (clean.ok()) {
      utility = MeasureUtility(clean.value().target, *defense.anonymizer,
                               seed + 1);
    }
    table.AddRow({defense.anonymizer->name(), bench::Pct(metrics.precision),
                  bench::Pct(utility.link_retention),
                  bench::Pct(utility.strength_fidelity),
                  bench::Pct(utility.link_precision)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: the paper's conclusion is visible as a frontier — the "
      "only defenses that meaningfully blunt DeHIN (VW-CGA, aggressive "
      "dropping) are exactly the ones that destroy published utility; "
      "cheap defenses (bucketing, k-degree) leave the attack largely "
      "intact (Sections 6.2-6.4).\n");
  return 0;
}
