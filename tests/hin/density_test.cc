#include "hin/density.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"

namespace hinpriv::hin {
namespace {

NetworkSchema FourLinkSchema(size_t self_link_types) {
  NetworkSchema schema;
  const EntityTypeId user = schema.AddEntityType("User");
  for (int i = 0; i < 4; ++i) {
    schema.AddLinkType("l" + std::to_string(i), user, user, true, true,
                       static_cast<size_t>(i) < self_link_types);
  }
  return schema;
}

TEST(DensityTest, FormulaWithoutSelfLinks) {
  // Equation 4 with m = 0: denominator = |L| * |V| * (|V| - 1).
  EXPECT_DOUBLE_EQ(DensityFromCounts(3996, 1000, 4, 0),
                   3996.0 / (4.0 * 1000.0 * 999.0));
}

TEST(DensityTest, FormulaWithSelfLinks) {
  // Equation 4 with m = 1 of 2 link types and |V| = 10:
  // denominator = 1*100 + 1*90 = 190.
  EXPECT_DOUBLE_EQ(DensityFromCounts(19, 10, 2, 1), 0.1);
}

TEST(DensityTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(DensityFromCounts(0, 1000, 4, 0), 0.0);
  EXPECT_DOUBLE_EQ(DensityFromCounts(10, 1, 4, 0), 0.0);   // < 2 vertices
  EXPECT_DOUBLE_EQ(DensityFromCounts(10, 1000, 0, 0), 0.0);  // no link types
}

TEST(DensityTest, CompleteGraphHasDensityOne) {
  // 3 vertices, 1 link type, no self links: 6 directed edges max.
  EXPECT_DOUBLE_EQ(DensityFromCounts(6, 3, 1, 0), 1.0);
}

TEST(DensityTest, GraphDensityMatchesCounts) {
  GraphBuilder builder(FourLinkSchema(0));
  builder.AddVertices(0, 10);
  ASSERT_TRUE(builder.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 1, 5).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, 2).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(Density(graph.value()),
                   DensityFromCounts(3, 10, 4, 0));
}

TEST(DensityTest, GraphDensityCountsSelfLinkTypes) {
  GraphBuilder builder(FourLinkSchema(2));
  builder.AddVertices(0, 5);
  ASSERT_TRUE(builder.AddEdge(0, 0, 0).ok());  // self link on type 0
  ASSERT_TRUE(builder.AddEdge(0, 1, 3).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(Density(graph.value()), DensityFromCounts(2, 5, 4, 2));
}

TEST(DensityTest, EdgesForDensityInvertsFormula) {
  for (double d : {0.001, 0.005, 0.01, 0.5}) {
    const size_t edges = EdgesForDensity(d, 1000, 4, 0);
    EXPECT_NEAR(DensityFromCounts(edges, 1000, 4, 0), d, 1e-6) << d;
  }
  EXPECT_EQ(EdgesForDensity(0.0, 1000, 4, 0), 0u);
  EXPECT_EQ(EdgesForDensity(0.5, 1, 4, 0), 0u);
}

TEST(DensityTest, DensityIsAlwaysInUnitInterval) {
  for (size_t e : {0u, 10u, 100u, 3996000u}) {
    const double d = DensityFromCounts(e, 1000, 4, 0);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

}  // namespace
}  // namespace hinpriv::hin
