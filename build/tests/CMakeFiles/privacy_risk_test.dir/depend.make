# Empty dependencies file for privacy_risk_test.
# This may be replaced when dependencies are built.
