#include "synth/planted_target.h"

#include <gtest/gtest.h>

#include "hin/density.h"
#include "util/random.h"

namespace hinpriv::synth {
namespace {

TqqConfig SmallConfig() {
  TqqConfig config;
  config.num_users = 5000;
  return config;
}

TEST(PlantedTargetTest, HitsRequestedDensity) {
  util::Rng rng(1);
  PlantedTargetSpec spec;
  spec.target_size = 300;
  spec.density = 0.01;
  auto dataset =
      BuildPlantedDataset(SmallConfig(), spec, GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().target.num_vertices(), 300u);
  EXPECT_NEAR(dataset.value().target_density, 0.01, 0.002);
  EXPECT_NEAR(hin::Density(dataset.value().target), 0.01, 0.002);
}

class PlantedDensityTest : public testing::TestWithParam<double> {};

TEST_P(PlantedDensityTest, DensityWithinTolerance) {
  util::Rng rng(42);
  PlantedTargetSpec spec;
  spec.target_size = 250;
  spec.density = GetParam();
  auto dataset =
      BuildPlantedDataset(SmallConfig(), spec, GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  // Achieved density within 25% of requested (background edges overshoot a
  // little at the lowest settings).
  EXPECT_NEAR(dataset.value().target_density, GetParam(),
              GetParam() * 0.25 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, PlantedDensityTest,
                         testing::Values(0.001, 0.002, 0.005, 0.008, 0.01,
                                         0.02));

TEST(PlantedTargetTest, GroundTruthMapsToIdenticalProfiles) {
  util::Rng rng(2);
  PlantedTargetSpec spec;
  spec.target_size = 200;
  spec.density = 0.005;
  auto dataset =
      BuildPlantedDataset(SmallConfig(), spec, GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  const auto& d = dataset.value();
  ASSERT_EQ(d.target_to_aux.size(), 200u);
  for (hin::VertexId v = 0; v < 200; ++v) {
    const hin::VertexId aux = d.target_to_aux[v];
    ASSERT_LT(aux, d.auxiliary.num_vertices());
    // Non-growable attributes are identical; tweet count may have grown.
    EXPECT_EQ(d.target.attribute(v, 0), d.auxiliary.attribute(aux, 0));
    EXPECT_EQ(d.target.attribute(v, 1), d.auxiliary.attribute(aux, 1));
    EXPECT_LE(d.target.attribute(v, 2), d.auxiliary.attribute(aux, 2));
    EXPECT_EQ(d.target.attribute(v, 3), d.auxiliary.attribute(aux, 3));
  }
}

TEST(PlantedTargetTest, TargetEdgesSurviveInAuxiliary) {
  util::Rng rng(3);
  PlantedTargetSpec spec;
  spec.target_size = 200;
  spec.density = 0.01;
  auto dataset =
      BuildPlantedDataset(SmallConfig(), spec, GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  const auto& d = dataset.value();
  for (hin::VertexId v = 0; v < d.target.num_vertices(); ++v) {
    for (hin::LinkTypeId lt = 0; lt < d.target.num_link_types(); ++lt) {
      for (const hin::Edge& e : d.target.OutEdges(lt, v)) {
        ASSERT_GE(d.auxiliary.EdgeStrength(lt, d.target_to_aux[v],
                                           d.target_to_aux[e.neighbor]),
                  e.strength);
      }
    }
  }
}

TEST(PlantedTargetTest, AuxiliaryGrowsBeyondBase) {
  util::Rng rng(4);
  PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.005;
  GrowthConfig growth;
  growth.new_user_fraction = 0.2;
  auto dataset = BuildPlantedDataset(SmallConfig(), spec, growth, &rng);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().auxiliary.num_vertices(), 6000u);
}

TEST(PlantedTargetTest, ActivityConcentrationAtLowDensity) {
  // At low density, edges come from a minority of active users — the
  // mechanism behind the paper's low precision at density 0.001.
  util::Rng rng(5);
  PlantedTargetSpec spec;
  spec.target_size = 1000;
  spec.density = 0.001;
  TqqConfig config;
  config.num_users = 20000;
  config.zero_degree_prob = 1.0;  // suppress background edges for clarity
  auto dataset = BuildPlantedDataset(config, spec, GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  size_t with_out_edges = 0;
  for (hin::VertexId v = 0; v < 1000; ++v) {
    if (dataset.value().target.TotalOutDegree(v) > 0) ++with_out_edges;
  }
  EXPECT_LT(with_out_edges, 300u);
  EXPECT_GT(with_out_edges, 20u);
}

TEST(PlantedTargetTest, InvalidSpecsRejected) {
  util::Rng rng(6);
  PlantedTargetSpec too_big;
  too_big.target_size = 10000;
  EXPECT_FALSE(
      BuildPlantedDataset(SmallConfig(), too_big, GrowthConfig{}, &rng).ok());

  PlantedTargetSpec tiny;
  tiny.target_size = 1;
  EXPECT_FALSE(
      BuildPlantedDataset(SmallConfig(), tiny, GrowthConfig{}, &rng).ok());

  PlantedTargetSpec bad_density;
  bad_density.target_size = 100;
  bad_density.density = 1.5;
  EXPECT_FALSE(
      BuildPlantedDataset(SmallConfig(), bad_density, GrowthConfig{}, &rng)
          .ok());
}

}  // namespace
}  // namespace hinpriv::synth
