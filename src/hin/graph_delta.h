#ifndef HINPRIV_HIN_GRAPH_DELTA_H_
#define HINPRIV_HIN_GRAPH_DELTA_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "hin/graph.h"
#include "hin/schema.h"
#include "hin/types.h"
#include "util/status.h"

namespace hinpriv::hin {

// One append-only growth batch over an existing Graph, matching the paper's
// monotone growth model (Section 5.1): new vertices with their profile
// attributes, positive bumps to growable attributes of existing vertices,
// and new or strengthened links. A delta is replayable — applying the same
// delta to the same base graph always yields the same grown graph.
struct GraphDelta {
  struct NewVertex {
    EntityTypeId type = kInvalidEntityType;
    std::vector<AttrValue> attrs;  // one per attribute of `type`, in order
  };
  struct AttrBump {
    VertexId v = kInvalidVertex;
    AttributeId attr = 0;
    AttrValue delta = 0;  // > 0; growable attributes only
  };
  struct EdgeAdd {
    LinkTypeId link = kInvalidLinkType;
    VertexId src = kInvalidVertex;
    VertexId dst = kInvalidVertex;
    Strength strength = 0;  // sums into an existing edge on growable links
  };

  // Number of vertices in the graph this delta was sampled against. New
  // vertices take ids base_num_vertices .. base_num_vertices + k - 1, and
  // EdgeAdd endpoints may reference them.
  size_t base_num_vertices = 0;
  std::vector<NewVertex> new_vertices;
  std::vector<AttrBump> attr_bumps;
  std::vector<EdgeAdd> edge_adds;

  bool empty() const {
    return new_vertices.empty() && attr_bumps.empty() && edge_adds.empty();
  }
  // Total number of delta records — the |delta| of the O(|delta|) cost
  // claims in the incremental maintenance paths.
  size_t size() const {
    return new_vertices.size() + attr_bumps.size() + edge_adds.size();
  }
};

// Structural validation of `delta` against the graph it is about to be
// applied to: base_num_vertices matches, new-vertex types and attribute
// counts fit the schema, attr bumps hit growable attributes of existing
// vertices with positive deltas, edge endpoints resolve against the
// post-append vertex set with entity types matching the link definition,
// strengths are >= 1, and self-links appear only where allowed. Duplicate
// edges (vs. the base graph or within the delta) are checked during
// GraphBuilder::ApplyDelta's merge, where non-growable link types reject
// them and growable ones fold by summing.
util::Status ValidateDelta(const Graph& graph, const GraphDelta& delta);

// Text serialization of a delta stream: one or more batches, replayed in
// order by `hinpriv_cli query --method=apply_delta --path=...`.
//
//   hinpriv-delta 1
//   batch <base_num_vertices>
//   new_vertices <count>
//     <entity_type> <attr_0> ... <attr_k>
//   attr_bumps <count>
//     <vertex> <attr> <delta>
//   edge_adds <count>
//     <link_type> <src> <dst> <strength>
//   end
//   ...                                  (more batches)
//   done
util::Status SaveDeltaStream(const std::vector<GraphDelta>& deltas,
                             std::ostream& os);
util::Status SaveDeltaStreamToFile(const std::vector<GraphDelta>& deltas,
                                   const std::string& path);
util::Result<std::vector<GraphDelta>> LoadDeltaStream(std::istream& is);
util::Result<std::vector<GraphDelta>> LoadDeltaStreamFromFile(
    const std::string& path);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_GRAPH_DELTA_H_
