#ifndef HINPRIV_SERVICE_REQUEST_QUEUE_H_
#define HINPRIV_SERVICE_REQUEST_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace hinpriv::service {

// Bounded MPMC queue between the connection readers (producers) and the
// worker pool (consumers). The bound is the service's admission control:
// TryPush never blocks — a full queue is an immediate `false`, which the
// server turns into a BUSY response (load shedding) instead of building an
// unbounded backlog that would blow every deadline downstream.
//
// Close() starts the graceful drain: producers are refused from then on,
// but consumers keep popping until the queue is empty, so every admitted
// request is still served. Pop/PopBatch return empty only when closed AND
// drained, which is the workers' exit signal.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking admission; false when full or closed (the caller sheds).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained
  // (nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Micro-batching pop: blocks for the first item, then greedily takes up
  // to max_batch - 1 more already-queued items for which
  // compatible(first, candidate) holds, preserving FIFO order. Returns the
  // number of items appended to *out (0 = closed and drained). Only
  // contiguous head items are taken, so incompatible requests are never
  // reordered past each other.
  template <typename Compatible>
  size_t PopBatch(size_t max_batch, std::vector<T>* out,
                  Compatible&& compatible) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return 0;
    const size_t start = out->size();
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    // (*out)[start] is re-indexed every iteration: push_back may
    // reallocate, so a cached reference to the head would dangle.
    while (out->size() - start < max_batch && !items_.empty() &&
           compatible((*out)[start], items_.front())) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out->size() - start;
  }

  // Non-blocking PopBatch: takes up to max_batch contiguous compatible
  // head items if any are immediately available, otherwise returns 0
  // without waiting. The executor-backed server submits one drain task per
  // admitted request and each task drains with one such call, so a task
  // that runs after a larger batch already took its item just finds the
  // queue empty and exits.
  template <typename Compatible>
  size_t TryPopBatch(size_t max_batch, std::vector<T>* out,
                     Compatible&& compatible) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return 0;
    const size_t start = out->size();
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    while (out->size() - start < max_batch && !items_.empty() &&
           compatible((*out)[start], items_.front())) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out->size() - start;
  }

  // Refuses future pushes and wakes every waiter; queued items still drain
  // through Pop/PopBatch.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_REQUEST_QUEUE_H_
