file(REMOVE_RECURSE
  "CMakeFiles/tqq_generator_test.dir/synth/tqq_generator_test.cc.o"
  "CMakeFiles/tqq_generator_test.dir/synth/tqq_generator_test.cc.o.d"
  "tqq_generator_test"
  "tqq_generator_test.pdb"
  "tqq_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqq_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
