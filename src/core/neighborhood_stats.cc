#include "core/neighborhood_stats.h"

#include <algorithm>

namespace hinpriv::core {

namespace {

void BuildSlot(const hin::Graph& graph, hin::LinkTypeId lt, bool incoming,
               std::vector<uint64_t>* offsets,
               std::vector<hin::Strength>* strengths) {
  const size_t n = graph.num_vertices();
  offsets->resize(n + 1);
  size_t total = 0;
  for (hin::VertexId v = 0; v < n; ++v) {
    (*offsets)[v] = total;
    total += incoming ? graph.InDegree(lt, v) : graph.OutDegree(lt, v);
  }
  (*offsets)[n] = total;
  strengths->resize(total);
  for (hin::VertexId v = 0; v < n; ++v) {
    const auto edges = incoming ? graph.InEdges(lt, v) : graph.OutEdges(lt, v);
    hin::Strength* out = strengths->data() + (*offsets)[v];
    for (size_t i = 0; i < edges.size(); ++i) out[i] = edges[i].strength;
    std::sort(out, out + edges.size());
  }
}

}  // namespace

NeighborhoodStats::NeighborhoodStats(
    const hin::Graph& graph, const std::vector<hin::LinkTypeId>& link_types,
    bool use_in_edges) {
  slots_.resize(link_types.size() * (use_in_edges ? 2 : 1));
  size_t slot = 0;
  for (hin::LinkTypeId lt : link_types) {
    BuildSlot(graph, lt, /*incoming=*/false, &slots_[slot].offsets,
              &slots_[slot].strengths);
    ++slot;
    if (use_in_edges) {
      BuildSlot(graph, lt, /*incoming=*/true, &slots_[slot].offsets,
                &slots_[slot].strengths);
      ++slot;
    }
  }
}

bool NeighborhoodStats::StrengthMultisetDominates(
    std::span<const hin::Strength> target_sorted,
    std::span<const hin::Strength> aux_sorted, bool growth_aware) {
  const size_t k = target_sorted.size();
  const size_t m = aux_sorted.size();
  if (m < k) return false;
  if (growth_aware) {
    // The i-th smallest of the k largest auxiliary strengths dominates the
    // i-th smallest strength of ANY k-subset, so if even that assignment
    // fails somewhere, no injective aux >= target assignment exists.
    for (size_t i = 0; i < k; ++i) {
      if (aux_sorted[m - k + i] < target_sorted[i]) return false;
    }
    return true;
  }
  // Exact semantics: every target strength needs a distinct equal auxiliary
  // strength, i.e. multiset containment; merged scan over the sorted spans.
  size_t j = 0;
  for (size_t i = 0; i < k; ++i) {
    while (j < m && aux_sorted[j] < target_sorted[i]) ++j;
    if (j == m || aux_sorted[j] != target_sorted[i]) return false;
    ++j;
  }
  return true;
}

}  // namespace hinpriv::core
