#include "eval/parallel_metrics.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace hinpriv::eval {

AttackMetrics EvaluateAttackParallel(
    const core::Dehin& dehin, const hin::Graph& target,
    const std::vector<hin::VertexId>& ground_truth, int max_distance,
    size_t num_threads) {
  AttackMetrics metrics;
  metrics.num_targets = target.num_vertices();
  if (metrics.num_targets == 0) return metrics;
  const core::DehinStats stats_before = dehin.stats();
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, metrics.num_targets);

  struct Partial {
    size_t unique_correct = 0;
    size_t containing_truth = 0;
    double reduction_sum = 0.0;
    double candidate_sum = 0.0;
  };
  std::vector<Partial> partials(num_threads);
  std::atomic<hin::VertexId> next{0};
  const double aux_size =
      static_cast<double>(dehin.auxiliary().num_vertices());

  auto worker = [&](size_t tid) {
    Partial& p = partials[tid];
    while (true) {
      const hin::VertexId vt = next.fetch_add(1, std::memory_order_relaxed);
      if (vt >= target.num_vertices()) break;
      const auto candidates = dehin.Deanonymize(target, vt, max_distance);
      const bool contains_truth = std::binary_search(
          candidates.begin(), candidates.end(), ground_truth[vt]);
      if (contains_truth) ++p.containing_truth;
      if (contains_truth && candidates.size() == 1) ++p.unique_correct;
      p.reduction_sum +=
          1.0 - static_cast<double>(candidates.size()) / aux_size;
      p.candidate_sum += static_cast<double>(candidates.size());
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  double reduction_sum = 0.0;
  double candidate_sum = 0.0;
  for (const Partial& p : partials) {
    metrics.num_unique_correct += p.unique_correct;
    metrics.num_containing_truth += p.containing_truth;
    reduction_sum += p.reduction_sum;
    candidate_sum += p.candidate_sum;
  }
  const double n = static_cast<double>(metrics.num_targets);
  metrics.precision = static_cast<double>(metrics.num_unique_correct) / n;
  metrics.reduction_rate = reduction_sum / n;
  metrics.mean_candidate_count = candidate_sum / n;
  metrics.dehin_stats = dehin.stats() - stats_before;
  return metrics;
}

}  // namespace hinpriv::eval
