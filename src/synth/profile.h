#ifndef HINPRIV_SYNTH_PROFILE_H_
#define HINPRIV_SYNTH_PROFILE_H_

#include "hin/graph_builder.h"
#include "hin/types.h"
#include "synth/tqq_config.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::synth {

// One sampled t.qq user profile.
struct Profile {
  hin::AttrValue gender = 0;
  hin::AttrValue yob = 0;
  hin::AttrValue tweet_count = 0;
  hin::AttrValue tag_count = 0;
};

// Draws user profiles from the TqqConfig attribute distributions.
// Constructing the sampler precomputes the Zipf CDFs once; Sample() is
// O(log n).
class ProfileSampler {
 public:
  explicit ProfileSampler(const TqqConfig& config);

  Profile Sample(util::Rng* rng) const;

 private:
  TqqConfig config_;
  util::ZipfSampler gender_;
  util::ZipfSampler yob_;
  util::ZipfSampler tweet_count_;
  util::ZipfSampler tags_;
};

// Writes a profile onto a vertex whose entity type follows the t.qq
// attribute layout (kGenderAttr..kTagCountAttr).
util::Status ApplyProfile(hin::GraphBuilder* builder, hin::VertexId v,
                          const Profile& profile);

}  // namespace hinpriv::synth

#endif  // HINPRIV_SYNTH_PROFILE_H_
