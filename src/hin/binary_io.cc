#include "hin/binary_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "hin/graph_builder.h"

namespace hinpriv::hin {

namespace {

constexpr char kMagic[8] = {'H', 'I', 'N', 'P', 'R', 'I', 'V', 'B'};
constexpr uint32_t kVersion = 1;
// Hard caps that keep a corrupted length field from driving a multi-GB
// allocation before validation can catch it.
constexpr uint64_t kMaxStringLength = 1 << 16;
constexpr uint64_t kMaxCount = 1ULL << 40;

template <typename T>
void WriteRaw(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteRaw<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
util::Status ReadRaw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!is) return util::Status::Corruption("unexpected end of binary graph");
  return util::Status::OK();
}

util::Status ReadString(std::istream& is, std::string* s) {
  uint32_t length = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &length));
  if (length > kMaxStringLength) {
    return util::Status::Corruption("string length out of range");
  }
  s->resize(length);
  is.read(s->data(), length);
  if (!is) return util::Status::Corruption("unexpected end of binary graph");
  return util::Status::OK();
}

}  // namespace

util::Status SaveGraphBinary(const Graph& graph, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  WriteRaw<uint32_t>(os, kVersion);

  const NetworkSchema& schema = graph.schema();
  WriteRaw<uint16_t>(os, static_cast<uint16_t>(schema.num_entity_types()));
  for (size_t t = 0; t < schema.num_entity_types(); ++t) {
    const auto& et = schema.entity_type(static_cast<EntityTypeId>(t));
    WriteString(os, et.name);
    WriteRaw<uint16_t>(os, static_cast<uint16_t>(et.attributes.size()));
    for (const auto& attr : et.attributes) {
      WriteString(os, attr.name);
      WriteRaw<uint8_t>(os, attr.growable ? 1 : 0);
    }
  }
  WriteRaw<uint16_t>(os, static_cast<uint16_t>(schema.num_link_types()));
  for (size_t lt = 0; lt < schema.num_link_types(); ++lt) {
    const auto& def = schema.link_type(static_cast<LinkTypeId>(lt));
    WriteString(os, def.name);
    WriteRaw<uint16_t>(os, def.src);
    WriteRaw<uint16_t>(os, def.dst);
    WriteRaw<uint8_t>(os, def.has_strength ? 1 : 0);
    WriteRaw<uint8_t>(os, def.growable_strength ? 1 : 0);
    WriteRaw<uint8_t>(os, def.allows_self_link ? 1 : 0);
  }

  WriteRaw<uint64_t>(os, graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    WriteRaw<uint16_t>(os, graph.entity_type(v));
  }
  for (size_t t = 0; t < schema.num_entity_types(); ++t) {
    const EntityTypeId et = static_cast<EntityTypeId>(t);
    const size_t num_attrs = schema.entity_type(et).attributes.size();
    for (AttributeId a = 0; a < num_attrs; ++a) {
      const auto column = graph.AttributeColumn(et, a);
      WriteRaw<uint64_t>(os, column.size());
      os.write(reinterpret_cast<const char*>(column.data()),
               static_cast<std::streamsize>(column.size() *
                                            sizeof(AttrValue)));
    }
  }
  for (size_t lt = 0; lt < schema.num_link_types(); ++lt) {
    uint64_t count = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      count += graph.OutDegree(static_cast<LinkTypeId>(lt), v);
    }
    WriteRaw<uint64_t>(os, count);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const Edge& e : graph.OutEdges(static_cast<LinkTypeId>(lt), v)) {
        WriteRaw<uint32_t>(os, v);
        WriteRaw<uint32_t>(os, e.neighbor);
        WriteRaw<uint32_t>(os, e.strength);
      }
    }
  }
  if (!os) return util::Status::IoError("write failure (binary graph)");
  return util::Status::OK();
}

util::Status SaveGraphBinaryToFile(const Graph& graph,
                                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return SaveGraphBinary(graph, out);
}

util::Result<Graph> LoadGraphBinary(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::Corruption("bad binary graph magic");
  }
  uint32_t version = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &version));
  if (version != kVersion) {
    return util::Status::Corruption("unsupported binary graph version");
  }

  NetworkSchema schema;
  uint16_t num_entity_types = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_entity_types));
  for (uint16_t t = 0; t < num_entity_types; ++t) {
    std::string name;
    HINPRIV_RETURN_IF_ERROR(ReadString(is, &name));
    const EntityTypeId et = schema.AddEntityType(std::move(name));
    uint16_t num_attrs = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_attrs));
    for (uint16_t a = 0; a < num_attrs; ++a) {
      std::string attr_name;
      HINPRIV_RETURN_IF_ERROR(ReadString(is, &attr_name));
      uint8_t growable = 0;
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &growable));
      schema.AddAttribute(et, std::move(attr_name), growable != 0);
    }
  }
  uint16_t num_link_types = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_link_types));
  for (uint16_t lt = 0; lt < num_link_types; ++lt) {
    std::string name;
    HINPRIV_RETURN_IF_ERROR(ReadString(is, &name));
    uint16_t src = 0;
    uint16_t dst = 0;
    uint8_t has_strength = 0;
    uint8_t growable = 0;
    uint8_t self_link = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &src));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &dst));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &has_strength));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &growable));
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &self_link));
    if (src >= schema.num_entity_types() || dst >= schema.num_entity_types()) {
      return util::Status::Corruption("link endpoint type out of range");
    }
    schema.AddLinkType(std::move(name), src, dst, has_strength != 0,
                       growable != 0, self_link != 0);
  }
  HINPRIV_RETURN_IF_ERROR(schema.Validate());

  uint64_t num_vertices = 0;
  HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &num_vertices));
  if (num_vertices > kMaxCount) {
    return util::Status::Corruption("vertex count out of range");
  }
  GraphBuilder builder(schema);
  // Grown incrementally, never pre-sized to num_vertices: a corrupt count
  // within kMaxCount could otherwise drive a terabyte-scale allocation
  // before the per-vertex reads hit end-of-stream and fail cleanly.
  std::vector<uint16_t> vertex_types;
  vertex_types.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_vertices, 1u << 20)));
  std::vector<uint64_t> type_counts(schema.num_entity_types(), 0);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    uint16_t et = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &et));
    if (et >= schema.num_entity_types()) {
      return util::Status::Corruption("vertex entity type out of range");
    }
    builder.AddVertex(et);
    vertex_types.push_back(et);
    ++type_counts[et];
  }

  // Attribute columns are stored in dense per-type order, which is the
  // vertex-id order restricted to that type.
  for (uint16_t t = 0; t < schema.num_entity_types(); ++t) {
    const size_t num_attrs = schema.entity_type(t).attributes.size();
    for (AttributeId a = 0; a < num_attrs; ++a) {
      uint64_t column_size = 0;
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &column_size));
      if (column_size != type_counts[t]) {
        return util::Status::Corruption("attribute column size mismatch");
      }
      std::vector<AttrValue> column(column_size);
      is.read(reinterpret_cast<char*>(column.data()),
              static_cast<std::streamsize>(column_size * sizeof(AttrValue)));
      if (!is) {
        return util::Status::Corruption("unexpected end of binary graph");
      }
      size_t dense = 0;
      for (uint64_t v = 0; v < num_vertices; ++v) {
        if (vertex_types[v] != t) continue;
        HINPRIV_RETURN_IF_ERROR(builder.SetAttribute(
            static_cast<VertexId>(v), a, column[dense++]));
      }
    }
  }

  for (uint16_t lt = 0; lt < schema.num_link_types(); ++lt) {
    uint64_t count = 0;
    HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &count));
    if (count > kMaxCount) {
      return util::Status::Corruption("edge count out of range");
    }
    for (uint64_t e = 0; e < count; ++e) {
      uint32_t src = 0;
      uint32_t dst = 0;
      uint32_t strength = 0;
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &src));
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &dst));
      HINPRIV_RETURN_IF_ERROR(ReadRaw(is, &strength));
      if (src >= num_vertices || dst >= num_vertices) {
        return util::Status::Corruption("edge endpoint out of range");
      }
      HINPRIV_RETURN_IF_ERROR(builder.AddEdge(src, dst, lt, strength));
    }
  }
  return std::move(builder).Build();
}

util::Result<Graph> LoadGraphBinaryFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return LoadGraphBinary(in);
}

}  // namespace hinpriv::hin
