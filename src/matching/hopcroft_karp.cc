#include "matching/hopcroft_karp.h"

#include <limits>
#include <queue>

namespace hinpriv::matching {

namespace {

constexpr uint32_t kInfDistance = std::numeric_limits<uint32_t>::max();

// Hopcroft-Karp working state: match arrays for both sides and the BFS
// layering over left vertices.
struct HkState {
  std::vector<int32_t> match_left;
  std::vector<int32_t> match_right;
  std::vector<uint32_t> dist;

  explicit HkState(const BipartiteGraph& g)
      : match_left(g.num_left(), kUnmatched),
        match_right(g.num_right(), kUnmatched),
        dist(g.num_left(), kInfDistance) {}
};

// Builds alternating BFS layers from free left vertices; returns true if
// some free right vertex is reachable (i.e., an augmenting path exists).
bool Bfs(const BipartiteGraph& g, HkState* s) {
  std::queue<uint32_t> queue;
  for (uint32_t u = 0; u < g.num_left(); ++u) {
    if (s->match_left[u] == kUnmatched) {
      s->dist[u] = 0;
      queue.push(u);
    } else {
      s->dist[u] = kInfDistance;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop();
    for (uint32_t v : g.Neighbors(u)) {
      const int32_t w = s->match_right[v];
      if (w == kUnmatched) {
        found_augmenting = true;
      } else if (s->dist[static_cast<uint32_t>(w)] == kInfDistance) {
        s->dist[static_cast<uint32_t>(w)] = s->dist[u] + 1;
        queue.push(static_cast<uint32_t>(w));
      }
    }
  }
  return found_augmenting;
}

// DFS along the BFS layering; augments if a free right vertex is reached.
bool Dfs(const BipartiteGraph& g, uint32_t u, HkState* s) {
  for (uint32_t v : g.Neighbors(u)) {
    const int32_t w = s->match_right[v];
    if (w == kUnmatched ||
        (s->dist[static_cast<uint32_t>(w)] == s->dist[u] + 1 &&
         Dfs(g, static_cast<uint32_t>(w), s))) {
      s->match_left[u] = static_cast<int32_t>(v);
      s->match_right[v] = static_cast<int32_t>(u);
      return true;
    }
  }
  s->dist[u] = kInfDistance;  // dead end; prune for this phase
  return false;
}

}  // namespace

size_t HopcroftKarpMaximumMatching(const BipartiteGraph& graph,
                                   std::vector<int32_t>* match_left) {
  HkState state(graph);
  size_t matching = 0;
  while (Bfs(graph, &state)) {
    for (uint32_t u = 0; u < graph.num_left(); ++u) {
      if (state.match_left[u] == kUnmatched && Dfs(graph, u, &state)) {
        ++matching;
      }
    }
  }
  if (match_left != nullptr) *match_left = std::move(state.match_left);
  return matching;
}

namespace {

bool KuhnTryAugment(const BipartiteGraph& g, uint32_t u,
                    std::vector<int32_t>* match_right,
                    std::vector<bool>* visited) {
  for (uint32_t v : g.Neighbors(u)) {
    if ((*visited)[v]) continue;
    (*visited)[v] = true;
    const int32_t w = (*match_right)[v];
    if (w == kUnmatched ||
        KuhnTryAugment(g, static_cast<uint32_t>(w), match_right, visited)) {
      (*match_right)[v] = static_cast<int32_t>(u);
      return true;
    }
  }
  return false;
}

}  // namespace

size_t KuhnMaximumMatching(const BipartiteGraph& graph,
                           std::vector<int32_t>* match_left) {
  std::vector<int32_t> match_right(graph.num_right(), kUnmatched);
  size_t matching = 0;
  for (uint32_t u = 0; u < graph.num_left(); ++u) {
    std::vector<bool> visited(graph.num_right(), false);
    if (KuhnTryAugment(graph, u, &match_right, &visited)) ++matching;
  }
  if (match_left != nullptr) {
    match_left->assign(graph.num_left(), kUnmatched);
    for (uint32_t v = 0; v < graph.num_right(); ++v) {
      if (match_right[v] != kUnmatched) {
        (*match_left)[static_cast<uint32_t>(match_right[v])] =
            static_cast<int32_t>(v);
      }
    }
  }
  return matching;
}

bool HasPerfectLeftMatching(const BipartiteGraph& graph) {
  if (graph.num_left() > graph.num_right()) return false;
  for (uint32_t u = 0; u < graph.num_left(); ++u) {
    if (graph.Neighbors(u).empty()) return false;
  }
  return HopcroftKarpMaximumMatching(graph) == graph.num_left();
}

}  // namespace hinpriv::matching
