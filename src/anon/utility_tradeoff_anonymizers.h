#ifndef HINPRIV_ANON_UTILITY_TRADEOFF_ANONYMIZERS_H_
#define HINPRIV_ANON_UTILITY_TRADEOFF_ANONYMIZERS_H_

#include <vector>

#include "anon/anonymizer.h"

namespace hinpriv::anon {

// Defenses built from the paper's own Section 4.5 guidance (and its
// future-work item b): reduce the heterogeneous link cardinality C(L*) —
// which drives the Theorem-2 double-exponential risk growth — rather than
// suppressing profile data or faking structure.

// Rounds every published strength of growable-strength link types down to
// a bucket boundary: strength s becomes 1 + floor((s-1)/bucket)*bucket.
// This shrinks the strength alphabet (C(L*)) by the bucket factor while
// preserving every link and the ordering of strong vs. weak ties — far
// cheaper in utility than CGA's fake links. The transformation is
// growth-consistent (bucketed value <= original), so DeHIN's growth-aware
// matchers remain sound and the attack's precision loss is purely from the
// lost cardinality.
class StrengthBucketingAnonymizer : public Anonymizer {
 public:
  explicit StrengthBucketingAnonymizer(hin::Strength bucket)
      : bucket_(bucket) {}

  std::string name() const override {
    return "BUCKET" + std::to_string(bucket_);
  }

  util::Result<AnonymizedGraph> Anonymize(const hin::Graph& target,
                                          util::Rng* rng) const override;

 private:
  hin::Strength bucket_;
};

// Publishes only the given link types (the paper's "online forums may only
// allow premium users to access all or partial types of relationships"):
// all other links are withheld. Vertices and profiles are untouched.
class LinkTypeDroppingAnonymizer : public Anonymizer {
 public:
  explicit LinkTypeDroppingAnonymizer(std::vector<hin::LinkTypeId> kept)
      : kept_(std::move(kept)) {}

  std::string name() const override;

  util::Result<AnonymizedGraph> Anonymize(const hin::Graph& target,
                                          util::Rng* rng) const override;

 private:
  std::vector<hin::LinkTypeId> kept_;
};

}  // namespace hinpriv::anon

#endif  // HINPRIV_ANON_UTILITY_TRADEOFF_ANONYMIZERS_H_
