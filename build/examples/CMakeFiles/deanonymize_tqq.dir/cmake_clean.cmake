file(REMOVE_RECURSE
  "CMakeFiles/deanonymize_tqq.dir/deanonymize_tqq.cpp.o"
  "CMakeFiles/deanonymize_tqq.dir/deanonymize_tqq.cpp.o.d"
  "deanonymize_tqq"
  "deanonymize_tqq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deanonymize_tqq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
