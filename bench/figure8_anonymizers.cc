// Reproduces Figure 8 (a)-(j): DeHIN precision against the three published
// anonymizations — the original KDD Cup anonymization (KDDA), Complete
// Graph Anonymity (CGA, attacked with the reconfigured DeHIN), and Varying
// Weight Complete Graph Anonymity (VW-CGA) — for each density 0.001..0.01
// across max distances 0..3.

#include <array>
#include <iostream>
#include <memory>

#include "anon/complete_graph_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

constexpr std::array<double, 10> kDensities = {0.001, 0.002, 0.003, 0.004,
                                               0.005, 0.006, 0.007, 0.008,
                                               0.009, 0.010};

struct Scheme {
  std::unique_ptr<anon::Anonymizer> anonymizer;
  bool reconfigured;  // strip + saturation fallback (Section 6.2)
};

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("max_distance", "3", "largest max distance to evaluate");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const int max_distance = static_cast<int>(flags.GetInt("max_distance"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  Scheme schemes[3];
  schemes[0] = {std::make_unique<anon::KddAnonymizer>(), false};
  schemes[1] = {std::make_unique<anon::CompleteGraphAnonymizer>(), true};
  schemes[2] = {std::make_unique<anon::VaryingWeightCgaAnonymizer>(), true};

  std::printf("Figure 8: DeHIN precision (%%) against KDDA / CGA / VW-CGA "
              "per density (panels a-j)\n\n");

  for (size_t panel = 0; panel < kDensities.size(); ++panel) {
    const double density = kDensities[panel];
    std::printf("Figure 8(%c): density %.3f\n",
                static_cast<char>('a' + panel), density);
    std::vector<std::string> header = {"scheme"};
    for (int n = 0; n <= max_distance; ++n) {
      header.push_back("n=" + std::to_string(n));
    }
    util::TablePrinter table(header);
    for (const Scheme& scheme : schemes) {
      auto dataset = eval::BuildExperimentDataset(
          bench::AuxConfigFromFlags(flags),
          bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{},
          *scheme.anonymizer, scheme.reconfigured, &rng);
      if (!dataset.ok()) {
        std::fprintf(stderr, "dataset failed: %s\n",
                     dataset.status().ToString().c_str());
        return 1;
      }
      core::Dehin dehin(&dataset.value().auxiliary,
                        bench::AttackConfig(scheme.reconfigured));
      std::vector<std::string> cells = {scheme.anonymizer->name()};
      for (int n = 0; n <= max_distance; ++n) {
        const auto metrics = eval::EvaluateAttackParallel(
            dehin, dataset.value().target, dataset.value().ground_truth, n);
        cells.push_back(bench::Pct(metrics.precision));
      }
      table.AddRow(std::move(cells));
    }
    if (flags.GetBool("tsv")) {
      table.PrintTsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape per panel: KDDA highest, CGA slightly below "
              "it, VW-CGA flat at the n=0 level (neighbor utilization "
              "defeated, Section 6.3).\n");
  return 0;
}
