#include "util/string_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace hinpriv::util {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

// strtoll/strtod skip leading whitespace; strict field parsing must not.
bool HasLeadingSpace(std::string_view s) {
  return !s.empty() && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n' ||
                        s[0] == '\r' || s[0] == '\v' || s[0] == '\f');
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  if (HasLeadingSpace(s)) {
    return Status::InvalidArgument("leading whitespace in integer field");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflow: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  if (HasLeadingSpace(s)) {
    return Status::InvalidArgument("leading whitespace in integer field");
  }
  if (s[0] == '-') {
    return Status::InvalidArgument("negative value for unsigned field: '" +
                                   std::string(s) + "'");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflow: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed integer: '" + buf + "'");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  if (HasLeadingSpace(s)) {
    return Status::InvalidArgument("leading whitespace in numeric field");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double overflow: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  }
  return v;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

}  // namespace hinpriv::util
