#include "obs/windowed.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace hinpriv::obs {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Deterministic clock: every SampleNow() is stamped with whatever the test
// set, so window arithmetic is exact.
struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{} + milliseconds(1);
  void Advance(milliseconds d) { now += d; }
};

struct Fixture {
  Fixture(size_t ring_capacity = 64) {
    WindowedAggregatorOptions options;
    options.ring_capacity = ring_capacity;
    options.clock = [this] { return clock.now; };
    aggregator = std::make_unique<WindowedAggregator>(&registry, options);
  }
  MetricsRegistry registry;
  FakeClock clock;
  std::unique_ptr<WindowedAggregator> aggregator;
};

TEST(WindowedAggregatorTest, FewerThanTwoSamplesReportsZero) {
  Fixture f;
  f.registry.GetCounter("test/requests")->Add(100);
  EXPECT_EQ(f.aggregator->CounterRate("test/requests", 1.0).delta, 0u);
  EXPECT_EQ(f.aggregator->CounterRate("test/requests", 1.0).rate, 0.0);
  f.aggregator->SampleNow();
  const auto one = f.aggregator->CounterRate("test/requests", 1.0);
  EXPECT_EQ(one.delta, 0u);
  EXPECT_EQ(one.seconds, 0.0);
  EXPECT_EQ(f.aggregator->HistogramWindow("test/latency", 1.0).count, 0u);
  // The single retained sample still answers cumulative queries.
  EXPECT_EQ(f.aggregator->CounterValue("test/requests"), 100u);
}

TEST(WindowedAggregatorTest, CounterRateOverExactWindow) {
  Fixture f;
  Counter* requests = f.registry.GetCounter("test/requests");
  f.aggregator->SampleNow();
  for (int tick = 0; tick < 10; ++tick) {
    f.clock.Advance(milliseconds(1000));
    requests->Add(50);
    f.aggregator->SampleNow();
  }
  // 1s window: exactly the last tick's 50 increments.
  const auto one = f.aggregator->CounterRate("test/requests", 1.0);
  EXPECT_EQ(one.delta, 50u);
  EXPECT_DOUBLE_EQ(one.seconds, 1.0);
  EXPECT_DOUBLE_EQ(one.rate, 50.0);
  // 5s window.
  const auto five = f.aggregator->CounterRate("test/requests", 5.0);
  EXPECT_EQ(five.delta, 250u);
  EXPECT_DOUBLE_EQ(five.seconds, 5.0);
  EXPECT_DOUBLE_EQ(five.rate, 50.0);
}

TEST(WindowedAggregatorTest, ShortHistoryClampsAndReportsCoveredSeconds) {
  Fixture f;
  Counter* requests = f.registry.GetCounter("test/requests");
  f.aggregator->SampleNow();
  f.clock.Advance(milliseconds(2000));
  requests->Add(80);
  f.aggregator->SampleNow();
  // A 60s window with only 2s of history: the delta covers what exists and
  // the covered seconds say so — the rate divides by 2, not 60.
  const auto window = f.aggregator->CounterRate("test/requests", 60.0);
  EXPECT_EQ(window.delta, 80u);
  EXPECT_DOUBLE_EQ(window.seconds, 2.0);
  EXPECT_DOUBLE_EQ(window.rate, 40.0);
}

TEST(WindowedAggregatorTest, RingRolloverForgetsEvictedHistory) {
  Fixture f(/*ring_capacity=*/4);
  Counter* requests = f.registry.GetCounter("test/requests");
  for (int tick = 0; tick < 20; ++tick) {
    requests->Add(10);
    f.aggregator->SampleNow();
    f.clock.Advance(milliseconds(1000));
  }
  EXPECT_EQ(f.aggregator->num_samples(), 4u);
  // Widest answerable window = ring span (3 intervals), regardless of the
  // requested width.
  const auto wide = f.aggregator->CounterRate("test/requests", 1000.0);
  EXPECT_EQ(wide.delta, 30u);
  EXPECT_DOUBLE_EQ(wide.seconds, 3.0);
  EXPECT_DOUBLE_EQ(f.aggregator->coverage_seconds(), 3.0);
}

TEST(WindowedAggregatorTest, RegistryResetClampsDeltaToZero) {
  Fixture f;
  Counter* requests = f.registry.GetCounter("test/requests");
  requests->Add(1000);
  f.aggregator->SampleNow();
  f.clock.Advance(milliseconds(1000));
  requests->Reset();
  requests->Add(5);
  f.aggregator->SampleNow();
  // 5 < 1000: the registry was reset mid-window; a naive unsigned
  // subtraction would report ~2^64.
  EXPECT_EQ(f.aggregator->CounterRate("test/requests", 10.0).delta, 0u);
}

TEST(WindowedAggregatorTest, HistogramWindowIsolatesInWindowSamples) {
  Fixture f;
  Histogram* latency = f.registry.GetHistogram("test/latency_us");
  // Warmup noise before the window: huge values that must not contaminate
  // the windowed percentiles.
  for (int i = 0; i < 100; ++i) latency->Record(1'000'000);
  f.aggregator->SampleNow();
  f.clock.Advance(milliseconds(1000));
  // In-window load: 1000 samples spread over [0, 999].
  for (uint64_t v = 0; v < 1000; ++v) latency->Record(v);
  f.aggregator->SampleNow();

  const HistogramSnapshot window =
      f.aggregator->HistogramWindow("test/latency_us", 1.0);
  EXPECT_EQ(window.count, 1000u);
  EXPECT_EQ(window.sum, 999u * 1000u / 2u);
  // Log2 buckets bound each percentile within a factor of 2 of the exact
  // rank statistic; the warmup's 1e6 values must be absent entirely.
  const double p50 = window.Percentile(50.0);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1023.0);
  const double p99 = window.Percentile(99.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
  EXPECT_LE(window.max, 1023u);  // bucket-high bound, not the warmup 1e6
}

TEST(WindowedAggregatorTest, WindowedPercentilesTrackReplayedLoadShape) {
  Fixture f;
  Histogram* latency = f.registry.GetHistogram("test/latency_us");
  f.aggregator->SampleNow();

  // Tick 1: fast phase, all samples ~100us.
  f.clock.Advance(milliseconds(1000));
  for (int i = 0; i < 500; ++i) latency->Record(100);
  f.aggregator->SampleNow();

  // Tick 2: slow phase, all samples ~100000us.
  f.clock.Advance(milliseconds(1000));
  for (int i = 0; i < 500; ++i) latency->Record(100'000);
  f.aggregator->SampleNow();

  // The 1s window sees only the slow phase...
  const HistogramSnapshot slow =
      f.aggregator->HistogramWindow("test/latency_us", 1.0);
  EXPECT_EQ(slow.count, 500u);
  EXPECT_GE(slow.Percentile(50.0), 65536.0);   // 2^16 <= 100000 < 2^17
  EXPECT_LE(slow.Percentile(50.0), 131071.0);
  // ...while the 2s window mixes both phases: its p50 is still fast-phase,
  // its p99 slow-phase.
  const HistogramSnapshot both =
      f.aggregator->HistogramWindow("test/latency_us", 2.0);
  EXPECT_EQ(both.count, 1000u);
  EXPECT_LE(both.Percentile(50.0), 127.0);
  EXPECT_GE(both.Percentile(99.0), 65536.0);
}

TEST(WindowedAggregatorTest, GaugeReportsLatestSample) {
  Fixture f;
  Gauge* depth = f.registry.GetGauge("test/queue_depth");
  depth->Set(3.0);
  f.aggregator->SampleNow();
  f.clock.Advance(milliseconds(1000));
  depth->Set(7.0);
  f.aggregator->SampleNow();
  EXPECT_DOUBLE_EQ(f.aggregator->GaugeValue("test/queue_depth"), 7.0);
  EXPECT_DOUBLE_EQ(f.aggregator->GaugeValue("test/absent"), 0.0);
}

TEST(WindowedAggregatorTest, SamplerThreadCollectsWithoutFakeClock) {
  MetricsRegistry registry;
  registry.GetCounter("test/requests")->Add(1);
  WindowedAggregatorOptions options;
  options.tick = milliseconds(5);
  WindowedAggregator aggregator(&registry, options);
  aggregator.Start();
  aggregator.Start();  // idempotent
  // One sample lands per tick; wait for a few without assuming scheduler
  // fairness beyond eventual progress.
  for (int spin = 0; spin < 1000 && aggregator.num_samples() < 3; ++spin) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(aggregator.num_samples(), 3u);
  aggregator.Stop();
  aggregator.Stop();  // idempotent
  const size_t after_stop = aggregator.num_samples();
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(aggregator.num_samples(), after_stop);
}

}  // namespace
}  // namespace hinpriv::obs
