# Empty dependencies file for complete_graph_anonymizer_test.
# This may be replaced when dependencies are built.
