file(REMOVE_RECURSE
  "CMakeFiles/defense_frontier.dir/bench/defense_frontier.cc.o"
  "CMakeFiles/defense_frontier.dir/bench/defense_frontier.cc.o.d"
  "bench/defense_frontier"
  "bench/defense_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
