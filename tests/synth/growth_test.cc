#include "synth/growth.h"

#include <vector>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::synth {
namespace {

void ExpectGraphsIdentical(const hin::Graph& a, const hin::Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (hin::VertexId v = 0; v < a.num_vertices(); ++v) {
    for (hin::AttributeId attr = 0; attr < 4; ++attr) {
      ASSERT_EQ(a.attribute(v, attr), b.attribute(v, attr));
    }
    for (hin::LinkTypeId lt = 0; lt < a.num_link_types(); ++lt) {
      const auto out_a = a.OutEdges(lt, v);
      const auto out_b = b.OutEdges(lt, v);
      ASSERT_EQ(out_a.size(), out_b.size()) << "lt=" << lt << " v=" << v;
      for (size_t i = 0; i < out_a.size(); ++i) {
        ASSERT_EQ(out_a[i].neighbor, out_b[i].neighbor);
        ASSERT_EQ(out_a[i].strength, out_b[i].strength);
      }
    }
  }
}

hin::Graph HeapCopy(const hin::Graph& source) {
  hin::GraphBuilder builder(source.schema());
  EXPECT_TRUE(hin::CopyVerticesWithAttributes(source, &builder).ok());
  EXPECT_TRUE(hin::CopyEdges(source, &builder).ok());
  auto copy = std::move(builder).Build();
  EXPECT_TRUE(copy.ok());
  return std::move(copy).value();
}

hin::Graph MakeBase(size_t users, uint64_t seed) {
  TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GrowthTest, AddsUsersAndEdges) {
  const hin::Graph base = MakeBase(2000, 1);
  GrowthConfig growth;
  growth.new_user_fraction = 0.10;
  growth.new_edge_fraction = 0.05;
  util::Rng rng(2);
  auto grown = GrowNetwork(base, growth, TqqConfig{}, &rng);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  EXPECT_EQ(grown.value().num_vertices(), 2200u);
  EXPECT_GE(grown.value().num_edges(), base.num_edges());
}

// The invariant DeHIN's growth-aware matchers rely on (Section 5.1): the
// auxiliary is a superset — every base edge survives with >= strength, every
// growable attribute only grows, non-growable attributes are unchanged.
TEST(GrowthTest, GrowthIsMonotoneSuperset) {
  const hin::Graph base = MakeBase(1500, 3);
  GrowthConfig growth;  // defaults exercise all growth channels
  util::Rng rng(4);
  auto grown_result = GrowNetwork(base, growth, TqqConfig{}, &rng);
  ASSERT_TRUE(grown_result.ok());
  const hin::Graph& grown = grown_result.value();

  for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
    EXPECT_EQ(grown.attribute(v, hin::kGenderAttr),
              base.attribute(v, hin::kGenderAttr));
    EXPECT_EQ(grown.attribute(v, hin::kYobAttr),
              base.attribute(v, hin::kYobAttr));
    EXPECT_EQ(grown.attribute(v, hin::kTagCountAttr),
              base.attribute(v, hin::kTagCountAttr));
    EXPECT_GE(grown.attribute(v, hin::kTweetCountAttr),
              base.attribute(v, hin::kTweetCountAttr));
    for (hin::LinkTypeId lt = 0; lt < base.num_link_types(); ++lt) {
      for (const hin::Edge& e : base.OutEdges(lt, v)) {
        ASSERT_GE(grown.EdgeStrength(lt, v, e.neighbor), e.strength)
            << "base edge lost or weakened";
      }
    }
  }
}

TEST(GrowthTest, SomeGrowthActuallyHappens) {
  const hin::Graph base = MakeBase(1500, 5);
  GrowthConfig growth;
  growth.attr_growth_prob = 0.5;
  growth.strength_growth_prob = 0.3;
  util::Rng rng(6);
  auto grown = GrowNetwork(base, growth, TqqConfig{}, &rng);
  ASSERT_TRUE(grown.ok());
  size_t attr_grew = 0;
  size_t strength_grew = 0;
  for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
    if (grown.value().attribute(v, hin::kTweetCountAttr) >
        base.attribute(v, hin::kTweetCountAttr)) {
      ++attr_grew;
    }
    for (const hin::Edge& e : base.OutEdges(hin::kMentionLink, v)) {
      if (grown.value().EdgeStrength(hin::kMentionLink, v, e.neighbor) >
          e.strength) {
        ++strength_grew;
      }
    }
  }
  EXPECT_GT(attr_grew, base.num_vertices() / 4);
  EXPECT_GT(strength_grew, 0u);
}

TEST(GrowthTest, FollowStrengthsNeverGrowViaStrengthChannel) {
  // follow is not growable-strength: only *new* follow links may appear;
  // the growth channel must not inflate existing follow weights beyond
  // coincidental new-duplicate folding. With new_edge_fraction = 0, every
  // follow strength must remain exactly 1.
  const hin::Graph base = MakeBase(1500, 7);
  GrowthConfig growth;
  growth.new_edge_fraction = 0.0;
  growth.strength_growth_prob = 0.9;
  util::Rng rng(8);
  auto grown = GrowNetwork(base, growth, TqqConfig{}, &rng);
  ASSERT_TRUE(grown.ok());
  for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const hin::Edge& e :
         grown.value().OutEdges(hin::kFollowLink, v)) {
      ASSERT_EQ(e.strength, 1u);
    }
  }
}

TEST(GrowthTest, ZeroGrowthIsIdentityOnBaseUsers) {
  const hin::Graph base = MakeBase(800, 9);
  GrowthConfig growth;
  growth.new_user_fraction = 0.0;
  growth.new_edge_fraction = 0.0;
  growth.attr_growth_prob = 0.0;
  growth.strength_growth_prob = 0.0;
  util::Rng rng(10);
  auto grown = GrowNetwork(base, growth, TqqConfig{}, &rng);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown.value().num_vertices(), base.num_vertices());
  EXPECT_EQ(grown.value().num_edges(), base.num_edges());
  for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (hin::AttributeId a = 0; a < 4; ++a) {
      ASSERT_EQ(grown.value().attribute(v, a), base.attribute(v, a));
    }
  }
}

// The refactor contract: GrowNetworkWithDelta draws the same RNG sequence
// as the historical direct materialization, and the delta it returns is a
// faithful recording — replaying it onto a heap copy of the base
// reproduces the grown graph exactly.
TEST(GrowthTest, DeltaReplayReproducesGrownNetwork) {
  const hin::Graph base = MakeBase(1200, 12);
  GrowthConfig growth;  // defaults: all four growth channels fire
  util::Rng rng_direct(13);
  util::Rng rng_delta(13);
  auto direct = GrowNetwork(base, growth, TqqConfig{}, &rng_direct);
  ASSERT_TRUE(direct.ok());
  auto recorded = GrowNetworkWithDelta(base, growth, TqqConfig{}, &rng_delta);
  ASSERT_TRUE(recorded.ok());
  ExpectGraphsIdentical(direct.value(), recorded.value().graph);

  EXPECT_EQ(recorded.value().delta.base_num_vertices, base.num_vertices());
  EXPECT_GT(recorded.value().delta.size(), 0u);
  hin::Graph replay = HeapCopy(base);
  ASSERT_TRUE(
      hin::GraphBuilder::ApplyDelta(&replay, recorded.value().delta).ok());
  ExpectGraphsIdentical(replay, recorded.value().graph);
}

// Deltas sampled against successive states chain: each batch's
// base_num_vertices picks up where the previous one left off, and
// replaying the stream end to end equals growing step by step.
TEST(GrowthTest, SuccessiveDeltasChain) {
  const hin::Graph base = MakeBase(800, 14);
  GrowthConfig growth;
  growth.new_user_fraction = 0.02;
  util::Rng rng(15);
  hin::Graph current = HeapCopy(base);
  std::vector<hin::GraphDelta> stream;
  for (int b = 0; b < 3; ++b) {
    auto delta = SampleGrowthDelta(current, growth, TqqConfig{}, &rng);
    ASSERT_TRUE(delta.ok());
    EXPECT_EQ(delta.value().base_num_vertices, current.num_vertices());
    ASSERT_TRUE(
        hin::GraphBuilder::ApplyDelta(&current, delta.value()).ok());
    stream.push_back(std::move(delta).value());
  }
  hin::Graph replay = HeapCopy(base);
  for (const hin::GraphDelta& delta : stream) {
    ASSERT_TRUE(hin::GraphBuilder::ApplyDelta(&replay, delta).ok());
  }
  ExpectGraphsIdentical(replay, current);
}

TEST(GrowthTest, RejectsMultiEntityGraphs) {
  TqqFullConfig config;
  config.num_users = 50;
  util::Rng rng(11);
  auto full = GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(GrowNetwork(full.value(), GrowthConfig{}, TqqConfig{}, &rng).ok());
}

}  // namespace
}  // namespace hinpriv::synth
