#ifndef HINPRIV_SERVICE_SERVER_H_
#define HINPRIV_SERVICE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dehin.h"
#include "exec/executor.h"
#include "hin/graph.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "service/event_loop.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/shard_router.h"
#include "service/slow_query_log.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace hinpriv::service {

// Configuration of the resident attack service.
struct ServerConfig {
  // IPv4 listen address; the default binds loopback only — the service
  // hands out de-anonymization results, keep it off public interfaces.
  std::string host = "127.0.0.1";
  // 0 = kernel-assigned ephemeral port (read back via Server::port()).
  uint16_t port = 0;
  // Size of the execution pool the server creates when `executor` is
  // null (0 = hardware concurrency). Requests run as high-priority tasks
  // on that pool, so this bounds request concurrency; Dehin::Deanonymize
  // is thread-safe over the shared per-target state and match cache.
  size_t num_workers = 4;
  // Shared work-stealing executor to run on instead of an owned pool;
  // borrowed, must outlive the server. Request drain tasks are submitted
  // at Priority::kHigh and intra-query scan grains at kNormal, so
  // admitted requests never starve behind another query's scan work.
  //
  // A coordinator and its shard servers must NEVER share one executor:
  // coordinator drain tasks block on shard network I/O, so a shared pool
  // deadlocks the moment every worker holds a coordinator task waiting on
  // shard replies that have no worker left to compute them.
  exec::Executor* executor = nullptr;
  // When the executor has more than one worker, serve attack_one with the
  // intra-query parallel candidate scan (Dehin::DeanonymizeParallel);
  // results are bit-identical to the serial path.
  bool parallel_scan = true;
  // Bound of the request queue = admission control. A full queue sheds
  // with BUSY instead of queueing into certain deadline misses.
  size_t queue_capacity = 128;
  // Micro-batching: one worker pops up to this many same-method requests
  // at once so consecutive attack_one calls reuse the hot per-target state
  // and cache lines. 1 disables batching.
  size_t max_batch = 8;
  // Default max neighbor distance n for requests that omit it.
  int default_max_distance = 1;
  // Default per-request deadline for requests that omit it; 0 = none.
  double default_deadline_ms = 0.0;
  // Upper bound on the sleep debug method (load testing aid).
  double max_sleep_ms = 10'000.0;
  // When nonempty, Shutdown() writes a final hinpriv-metrics-v1 snapshot
  // of the global registry here after the drain completes.
  std::string metrics_json_path;
  // Attack configuration (match options, prefilter/cache/kernels).
  core::DehinConfig dehin;

  // Streaming growth: when non-null (and aliasing the same graph as
  // `auxiliary`), the apply_delta verb is enabled — it loads a
  // hinpriv-delta stream from a server-side path and applies each batch
  // in place under the warm-state lock, refreshing the candidate index,
  // prefilter tables, and match caches incrementally (O(|delta|) instead
  // of a full rebuild). Null (the default) rejects apply_delta with
  // INVALID_REQUEST; mmap-backed snapshots and coordinator mode must
  // leave it null (the heap arena is the only appendable representation).
  hin::Graph* mutable_aux = nullptr;

  // --- sharded tier (see DESIGN.md §12) -------------------------------------
  // Nonempty switches this server into *coordinator* mode: attack_one is
  // scattered to every endpoint (position i = shard i) and the verdicts
  // merged into an answer bit-identical to the unsharded scan. The
  // coordinator runs no local candidate scan, so `auxiliary` may be null;
  // risk and sleep stay local (risk needs only the target graph).
  std::vector<ShardEndpoint> shard_endpoints;
  // Halo depth the shard slices were extracted with. A coordinator rejects
  // attack_one whose resolved max_distance exceeds it (INVALID_REQUEST):
  // beyond the halo, shard verdicts would silently diverge from the
  // unsharded scan. < 0 = don't enforce (unsharded mode, or full-graph
  // shards in tests).
  int shard_halo_depth = -1;
  // Shard-worker side: sub-id -> parent-id translation applied to accepted
  // candidates before they are encoded (ShardSlice::to_parent). The map is
  // monotone over the owned prefix, so per-shard candidate lists stay
  // sorted after translation. Empty = serve ids untranslated.
  std::vector<hin::VertexId> aux_id_map;
  // >= 0 labels every service/* instrument of this server with a
  // `|shard=N` suffix (rendered as a real `shard="N"` Prometheus label),
  // so an M-shard tier in one process exports M labeled series instead of
  // fighting over one set of counters. -1 = unlabeled (the coordinator and
  // standalone servers).
  int metric_shard = -1;
  // Event-loop front-end: disconnect a connection whose queued unsent
  // response bytes exceed this (a client that pipelines requests but never
  // reads).
  size_t max_pending_write_bytes = 64u << 20;
  // How long Shutdown() keeps flushing queued responses to slow readers.
  int drain_grace_ms = 5000;

  // --- live introspection ---------------------------------------------------
  // Watchdog tick: every tick the global registry is sampled into the
  // windowed ring and the health state is re-evaluated. <= 0 disables the
  // watchdog thread entirely (stats still answers, with empty windows and
  // health pinned at "ok").
  int introspection_tick_ms = 250;
  // Snapshots retained in the windowed ring; tick * ring bounds the widest
  // answerable window (the defaults cover a 60s window with headroom).
  size_t introspection_ring = 256;
  // Worst-N slow-query log returned by the `stats` verb.
  size_t slow_log_capacity = 16;
  // Health policy (see DESIGN.md §11): "shedding" when any request was
  // shed within shed_window_sec or the queue is full; otherwise "degraded"
  // when the queue sits at or above degraded_queue_fraction of capacity or
  // the deadline-miss fraction over miss_window_sec exceeds
  // degraded_miss_rate; otherwise "ok".
  double shed_window_sec = 1.0;
  double miss_window_sec = 10.0;
  double degraded_queue_fraction = 0.75;
  double degraded_miss_rate = 0.10;
};

// Watchdog-derived serving condition, exported as the service/health_state
// gauge (the numeric value) and by the `health` admin verb (the name).
enum class HealthState {
  kOk = 0,
  kDegraded = 1,
  kShedding = 2,
};

const char* HealthStateName(HealthState state);

// The resident de-anonymization attack service. Loads nothing itself: the
// caller provides the anonymized target graph and the adversary's
// auxiliary graph (both must outlive the server), and the server builds
// the expensive `Dehin` state — candidate index, neighborhood prefilter
// tables, shared match cache — once at Start(), then answers queries as
// high-priority tasks on a work-stealing executor fed by a bounded
// queue. The same executor runs the intra-query parallel candidate scan
// (at normal priority), so a lone expensive query can saturate the pool
// without starving newly admitted requests.
//
// The front-end is a single-threaded epoll event loop (EventLoop): one
// thread owns every socket, assembles frames from readiness-driven reads,
// answers admin verbs inline (they never block on compute, so `stats`
// responds while the pool is saturated), and admits serving verbs into
// the bounded queue — shedding BUSY on overflow exactly as before.
//
// Production semantics (see DESIGN.md §7):
//   * admission control — a full queue sheds with BUSY immediately;
//   * per-request deadlines — enforced both while queued and inside the
//     Dehin recursion via util::CancelToken (DEADLINE_EXCEEDED);
//   * micro-batching — same-method runs pop together for cache locality;
//   * graceful drain — Shutdown() stops accepting, finishes every
//     admitted request, flushes every queued response, joins all threads,
//     and writes a final metrics snapshot.
//
// Coordinator mode (config.shard_endpoints nonempty, DESIGN.md §12):
// attack_one fans out to the shard tier over the same wire protocol and
// the per-shard verdicts merge into the unsharded answer; stats/health
// aggregate the tier with honest per-shard window coverage. Coordinator
// stats/health fan-outs block on shard I/O, so they run on a dedicated
// admin thread instead of the event loop.
//
// Telemetry: service/* counters (received, ok, shed, deadline_exceeded,
// invalid, connections, batches, write_errors), the service/queue_depth
// gauge, service/request_latency_us and service/batch_size histograms,
// and HINPRIV_SPAN coverage of the loop/worker paths, so a serving run
// produces the same Chrome-trace flame timelines as the batch path. With
// config.metric_shard >= 0 every instrument carries a `|shard=N` label.
class Server {
 public:
  Server(const hin::Graph* target, const hin::Graph* auxiliary,
         ServerConfig config);
  ~Server();  // implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the event loop and worker threads, and warms
  // the per-target Dehin state so the first request does not pay the
  // build.
  util::Status Start();

  // The actually-bound port (differs from config.port when that was 0).
  uint16_t port() const { return port_; }

  // Instantaneous queue depth (observability).
  size_t queue_depth() const { return queue_.size(); }

  // Current watchdog health verdict (kOk until the first watchdog tick).
  HealthState health() const;

  // One-line self-report over roughly the last `window_sec` seconds, read
  // from the windowed aggregator: the `serve --heartbeat_sec` loop and the
  // introspection tests consume this without a network round-trip.
  struct LiveStats {
    double window_sec = 0.0;  // actually covered seconds
    double qps = 0.0;
    double p99_us = 0.0;
    size_t queue_depth = 0;
    uint64_t requests_received = 0;  // cumulative, as of the last sample
    HealthState health = HealthState::kOk;
  };
  LiveStats Live(double window_sec = 10.0) const;

  // Graceful drain: stop accepting connections and admitting requests,
  // finish everything already admitted, join every thread, flush the
  // final metrics snapshot. Idempotent and thread-safe; blocks until the
  // drain completes.
  void Shutdown();

  // True once Shutdown() has completed.
  bool finished() const;

 private:
  struct PendingRequest {
    uint64_t conn_id = 0;
    Request request;
    std::chrono::steady_clock::time_point admitted;
    // Monotonically increasing server-side request id, assigned at
    // admission and installed as the span context while the request runs.
    uint64_t rid = 0;
  };

  // EventLoop frame handler: parse, answer admin inline (or hand the
  // coordinator fan-out verbs to the admin thread), admit into the queue
  // or shed. Runs on the loop thread — never blocks on compute.
  void OnFrame(uint64_t conn_id, std::string frame);
  // One executor task per admitted request: drains up to max_batch
  // compatible head items non-blockingly (another task may already have
  // batched this task's item away, in which case it pops nothing).
  void DrainOne();
  // Coordinator-only: serves the admin verbs that block on shard fan-out
  // (stats, health) off the event loop.
  void AdminLoop();

  Response Process(const PendingRequest& pending);
  Response ProcessAttackOne(const PendingRequest& pending,
                            const util::CancelToken& token);
  Response ProcessAttackOneSharded(const PendingRequest& pending,
                                   const util::CancelToken& token);
  Response ProcessRisk(const Request& request);
  Response ProcessApplyDelta(const PendingRequest& pending,
                             const util::CancelToken& token);
  Response ProcessStats(const Request& request);
  Response ProcessSleep(const Request& request,
                        const util::CancelToken& token);
  // Admin verbs, dispatched inline on the loop thread (never queued) so
  // they answer while the serving path is saturated.
  Response ProcessAdmin(const Request& request);
  Response ProcessHealth(const Request& request);
  Response ProcessMetrics(const Request& request);
  Response ProcessTraceStart(const Request& request);
  Response ProcessTraceStop(const Request& request);
  Response ProcessTraceDump(const Request& request);
  // Coordinator fan-out aggregation for stats/health (admin thread).
  void AppendShardStats(JsonValue* payload);
  HealthState AppendShardHealth(JsonValue* payload);

  void WatchdogLoop();
  void EvaluateHealth();

  void Respond(uint64_t conn_id, const Response& response);

  // True when this server coordinates a shard tier instead of scanning
  // locally.
  bool coordinator() const { return !config_.shard_endpoints.empty(); }

  // The registry instrument name for `base` under this server's shard
  // label (config_.metric_shard). Every instrument resolution AND every
  // windowed-aggregator query must go through this, or a labeled shard
  // server would sample one name and query another.
  std::string MetricName(const char* base) const;

  // Per-distance risk results over the target graph, computed lazily and
  // cached (signature pass + per-tuple risk); per-entity queries then cost
  // one array read.
  struct RiskEntry {
    std::vector<double> per_tuple;
    double network_risk = 0.0;
    size_t cardinality = 0;
  };
  util::Result<const RiskEntry*> RiskForDistance(int max_distance);

  int ResolveMaxDistance(const Request& request) const;

  const hin::Graph* target_;
  const hin::Graph* aux_;
  ServerConfig config_;
  // Null in coordinator mode — the coordinator owns no candidate scan.
  std::unique_ptr<core::Dehin> dehin_;

  uint16_t port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers

  BoundedQueue<PendingRequest> queue_;
  std::unique_ptr<EventLoop> loop_;
  // Coordinator mode only: scatter-gather fabric + dedicated admin thread.
  std::unique_ptr<ShardRouter> router_;
  std::thread admin_thread_;
  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  std::deque<PendingRequest> admin_queue_;
  bool admin_stop_ = false;

  // Execution pool: config_.executor when the caller shares one, else an
  // owned pool sized from config_.num_workers. Outstanding drain tasks
  // are counted so Shutdown can wait for the queue to empty: every push
  // submits exactly one task and a task pops at least one item whenever
  // the queue is nonempty, so tasks-outstanding >= items-queued always
  // holds and drain_tasks_ == 0 implies the queue is drained.
  exec::Executor* executor_ = nullptr;
  std::unique_ptr<exec::Executor> owned_executor_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t drain_tasks_ = 0;

  std::mutex risk_mu_;
  std::map<int, RiskEntry> risk_cache_;

  // Warm-state lock for streaming growth: apply_delta holds it exclusively
  // while mutating the auxiliary graph + Dehin warm state batch by batch;
  // attack_one and risk hold it shared. Uncontended in the common case (no
  // deltas in flight), and the unique_lock acquire/release per batch gives
  // queries a window between batches of a long stream.
  std::shared_mutex warm_mu_;

  // Introspection plane: a windowed view over the global registry, fed by
  // the watchdog thread (which also re-evaluates the health verdict each
  // tick), plus the worst-N slow-query log and the request-id source.
  obs::WindowedAggregator window_;
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<int> health_{static_cast<int>(HealthState::kOk)};
  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<uint64_t> next_rid_{0};
  SlowQueryLog slow_log_;

  // Distances 0..kMaxDistanceBucket get their own per-distance counters;
  // anything larger lands in the final overflow slot.
  static constexpr int kMaxDistanceBucket = 8;
  static constexpr size_t kDistanceSlots = kMaxDistanceBucket + 2;

  // Registry instruments, resolved once at construction (under the
  // metric_shard label when configured).
  obs::Counter* requests_received_;
  obs::Counter* responses_ok_;
  obs::Counter* shed_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* cancelled_;
  obs::Counter* invalid_;
  obs::Counter* internal_errors_;
  obs::Counter* connections_accepted_;
  obs::Counter* batches_;
  obs::Counter* write_errors_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* latency_us_;
  obs::Histogram* batch_size_;
  obs::Counter* admin_requests_;
  obs::Gauge* health_gauge_;
  obs::Counter* health_transitions_;
  obs::Counter* attack_by_distance_[kDistanceSlots];
  obs::Counter* deanon_by_distance_[kDistanceSlots];
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_SERVER_H_
