#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/work_stealing_deque.h"
#include "util/cancellation.h"

namespace hinpriv::exec {
namespace {

TEST(ResolveThreadsTest, ZeroMapsToHardwareConcurrency) {
  const size_t resolved = ResolveThreads(0);
  EXPECT_GE(resolved, 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0) {
    EXPECT_EQ(resolved, static_cast<size_t>(hw));
  }
}

TEST(ResolveThreadsTest, NonZeroPassesThrough) {
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
  EXPECT_EQ(ResolveThreads(64), 64u);
}

TEST(WorkStealingDequeTest, OwnerPopsLifo) {
  WorkStealingDeque deque(4);
  int values[3] = {1, 2, 3};
  deque.PushBottom(&values[0]);
  deque.PushBottom(&values[1]);
  deque.PushBottom(&values[2]);
  EXPECT_EQ(deque.ApproxSize(), 3u);
  EXPECT_EQ(deque.PopBottom(), &values[2]);
  EXPECT_EQ(deque.PopBottom(), &values[1]);
  EXPECT_EQ(deque.PopBottom(), &values[0]);
  EXPECT_EQ(deque.PopBottom(), nullptr);
}

TEST(WorkStealingDequeTest, ThiefStealsFifo) {
  WorkStealingDeque deque(4);
  int values[3] = {1, 2, 3};
  deque.PushBottom(&values[0]);
  deque.PushBottom(&values[1]);
  deque.PushBottom(&values[2]);
  EXPECT_EQ(deque.Steal(), &values[0]);
  EXPECT_EQ(deque.Steal(), &values[1]);
  // Owner takes the freshest remaining item.
  EXPECT_EQ(deque.PopBottom(), &values[2]);
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque deque(2);
  std::vector<int> values(1000);
  for (int& v : values) deque.PushBottom(&v);
  EXPECT_EQ(deque.ApproxSize(), values.size());
  for (size_t i = values.size(); i-- > 0;) {
    EXPECT_EQ(deque.PopBottom(), &values[i]);
  }
}

// Conservation stress: every pushed item is taken exactly once, whether by
// the owner or a thief. The interesting interleavings are the last-element
// CAS race and steals racing a concurrent Grow.
TEST(WorkStealingDequeTest, ConcurrentStealConservesItems) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque deque(8);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& cell : taken) cell.store(0);
  std::vector<int> values(kItems);
  std::iota(values.begin(), values.end(), 0);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (void* item = deque.Steal()) {
          taken[*static_cast<int*>(item)].fetch_add(1);
        }
      }
      // Final sweep so nothing is stranded if the owner finished first.
      while (void* item = deque.Steal()) {
        taken[*static_cast<int*>(item)].fetch_add(1);
      }
    });
  }

  // Owner: push in bursts, pop some back, so bottom moves both ways.
  for (int i = 0; i < kItems; ++i) {
    deque.PushBottom(&values[i]);
    if (i % 3 == 0) {
      if (void* item = deque.PopBottom()) {
        taken[*static_cast<int*>(item)].fetch_add(1);
      }
    }
  }
  while (void* item = deque.PopBottom()) {
    taken[*static_cast<int*>(item)].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
  }
}

TEST(ExecutorTest, SubmitRunsTasks) {
  Executor executor(3);
  EXPECT_EQ(executor.num_workers(), 3u);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    executor.Submit([&] {
      if (ran.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return ran.load() == kTasks; }));
}

TEST(ExecutorTest, CurrentIdentifiesWorkerThreads) {
  Executor executor(2);
  EXPECT_EQ(Executor::Current(), nullptr);
  TaskGroup group(&executor);
  std::atomic<Executor*> seen{nullptr};
  group.Run([&] { seen.store(Executor::Current()); });
  group.Wait();
  EXPECT_EQ(seen.load(), &executor);
}

// With one worker pinned by a blocker, a high-priority submission must be
// scheduled ahead of every already-queued normal task.
TEST(ExecutorTest, HighPriorityRunsBeforeQueuedNormalWork) {
  Executor executor(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> blocker_running{false};

  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<int> remaining{4};

  TaskGroup group(&executor);
  group.Run([&] {
    blocker_running.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!blocker_running.load()) std::this_thread::yield();

  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
    remaining.fetch_sub(1);
  };
  group.Run([&] { record(1); }, Priority::kNormal);
  group.Run([&] { record(2); }, Priority::kNormal);
  group.Run([&] { record(3); }, Priority::kNormal);
  group.Run([&] { record(100); }, Priority::kHigh);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  group.Wait();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 100);
}

TEST(TaskGroupTest, WaitPropagatesFirstException) {
  Executor executor(2);
  TaskGroup group(&executor);
  group.Run([] { throw std::runtime_error("task boom"); });
  group.Run([] {});
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The error is consumed; a second Wait is clean.
  group.Wait();
}

TEST(TaskGroupTest, NestedForkJoinFromWorkerContext) {
  Executor executor(2);
  TaskGroup outer(&executor);
  std::atomic<int> inner_ran{0};
  outer.Run([&] {
    TaskGroup inner(&executor);
    for (int i = 0; i < 16; ++i) {
      inner.Run([&] { inner_ran.fetch_add(1); });
    }
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_ran.load(), 16);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  Executor executor(4);
  for (size_t n : {0u, 1u, 3u, 7u, 1000u}) {
    for (size_t grain : {0u, 1u, 13u, 4096u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelForOptions options;
      options.grain = grain;
      const ParallelForResult result = executor.ParallelFor(
          n,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          },
          options);
      EXPECT_EQ(result.completed, n);
      EXPECT_FALSE(result.stopped);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, SingleWorkerExecutorRunsInline) {
  Executor executor(1);
  std::atomic<uint64_t> sum{0};
  const ParallelForResult result = executor.ParallelFor(
      100, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
      });
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(sum.load(), 99u * 100u / 2);
}

TEST(ParallelForTest, NestedInsideWorkerDoesNotDeadlock) {
  Executor executor(2);
  TaskGroup group(&executor);
  std::atomic<uint64_t> sum{0};
  group.Run([&] {
    executor.ParallelFor(64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
    });
  });
  group.Wait();
  EXPECT_EQ(sum.load(), 64u * 65u / 2);
}

TEST(ParallelForTest, BodyExceptionPropagates) {
  Executor executor(4);
  EXPECT_THROW(executor.ParallelFor(1000,
                                    [&](size_t begin, size_t) {
                                      if (begin >= 100) {
                                        throw std::runtime_error("grain boom");
                                      }
                                    },
                                    {.grain = 10}),
               std::runtime_error);
}

// Cancellation contract: once the token fires, no further grain is
// claimed; already-claimed grains finish; the executed set is exactly the
// prefix [0, completed).
TEST(ParallelForTest, CancelStopsClaimingAndReturnsExactPrefix) {
  Executor executor(4);
  constexpr size_t kN = 100000;
  util::CancelToken cancel;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  std::atomic<size_t> executed{0};

  ParallelForOptions options;
  options.grain = 16;
  options.cancel = &cancel;
  const ParallelForResult result = executor.ParallelFor(
      kN,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1);
          if (executed.fetch_add(1) + 1 == 1000) cancel.Cancel();
        }
      },
      options);

  EXPECT_TRUE(result.stopped);
  EXPECT_LT(result.completed, kN);
  EXPECT_GE(executed.load(), 1000u);
  // Exact prefix: everything below `completed` ran exactly once, nothing
  // at or above it ran at all.
  for (size_t i = 0; i < kN; ++i) {
    const int expected = i < result.completed ? 1 : 0;
    ASSERT_EQ(hits[i].load(), expected) << "i=" << i;
  }
}

TEST(ParallelForTest, PreCancelledTokenRunsNothing) {
  Executor executor(2);
  util::CancelToken cancel;
  cancel.Cancel();
  std::atomic<int> ran{0};
  ParallelForOptions options;
  options.cancel = &cancel;
  const ParallelForResult result = executor.ParallelFor(
      1000, [&](size_t, size_t) { ran.fetch_add(1); }, options);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForTest, GlobalExecutorIsUsable) {
  std::atomic<uint64_t> sum{0};
  Executor::Global().ParallelFor(256, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 256u);
}

// Repeated mixed load: ParallelFors racing fire-and-forget tasks across
// two executors. Mostly a TSan target.
TEST(GrainPolicyTest, ResolvesTargetChunksWithClamp) {
  const GrainPolicy defaults;
  // 8 chunks per worker: 64k iterations over 8 workers → grain 1024.
  EXPECT_EQ(defaults.Resolve(65536, 8), 1024u);
  // Small ranges never resolve below min_grain.
  EXPECT_EQ(defaults.Resolve(10, 8), 1u);
  EXPECT_EQ(defaults.Resolve(0, 8), 1u);
  // Huge ranges clamp at max_grain so chunks stay claimable.
  EXPECT_EQ(defaults.Resolve(100'000'000, 1), 8192u);

  GrainPolicy custom{/*chunks_per_worker=*/2, /*min_grain=*/4,
                     /*max_grain=*/16};
  EXPECT_EQ(custom.Resolve(64, 2), 16u);   // 64/4 clamps to max 16
  EXPECT_EQ(custom.Resolve(8, 2), 4u);     // below min clamps up
  EXPECT_EQ(custom.Resolve(48, 2), 12u);   // in range: 48/4
  // Degenerate configuration (zeroes) still yields a sane grain.
  GrainPolicy zeros{/*chunks_per_worker=*/0, /*min_grain=*/0,
                    /*max_grain=*/0};
  EXPECT_EQ(zeros.Resolve(100, 0), 1u);
}

TEST(ParallelForTest, ExplicitPolicyMatchesExplicitGrainResults) {
  Executor pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForOptions options;
  options.grain_policy.chunks_per_worker = 2;
  options.grain_policy.max_grain = 64;
  const ParallelForResult result = pool.ParallelFor(
      kN,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      options);
  EXPECT_EQ(result.completed, kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ExecutorStressTest, MixedLoadCompletes) {
  Executor a(3);
  Executor b(2);
  std::atomic<uint64_t> total{0};
  TaskGroup group(&a);
  for (int round = 0; round < 8; ++round) {
    group.Run([&] {
      b.ParallelFor(512, [&](size_t begin, size_t end) {
        total.fetch_add(end - begin);
      });
    });
    group.Run([&] {
      a.ParallelFor(512, [&](size_t begin, size_t end) {
        total.fetch_add(end - begin);
      });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 16u * 512u);
}

}  // namespace
}  // namespace hinpriv::exec
