// Reproduces Table 3 and Figure 9: DeHIN precision and reduction rate at
// density 0.01 as the amount of utilized target network schema link types
// grows (Section 6.1, "the performance improves as the utilized
// heterogeneity information grows").

#include <array>
#include <iostream>
#include <map>

#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

// Paper Table 3 precision (%) in TqqLinkTypeSubsets() row order; columns
// are max distances 1, 2, 3.
constexpr std::array<std::array<double, 3>, 15> kPaperTable3 = {{
    {68.1, 77.6, 77.7},  // f
    {80.9, 87.8, 88.0},  // m
    {82.8, 88.7, 88.8},  // c
    {81.1, 88.7, 88.9},  // r
    {89.3, 94.2, 94.2},  // f-m
    {90.1, 94.6, 94.6},  // f-c
    {89.2, 94.9, 95.0},  // f-r
    {84.7, 89.6, 89.7},  // m-c
    {83.2, 89.5, 89.7},  // m-r
    {85.2, 90.3, 90.5},  // c-r
    {91.6, 94.8, 94.8},  // f-m-c
    {90.6, 95.1, 95.2},  // f-m-r
    {91.5, 95.4, 95.5},  // f-c-r
    {86.5, 91.0, 91.2},  // m-c-r
    {92.5, 95.6, 95.7},  // f-m-c-r
}};

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density (paper: 0.01)");
  flags.Define("max_distance", "3", "largest max distance to evaluate");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const int max_distance = static_cast<int>(flags.GetInt("max_distance"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, anonymizer, /*strip_majority=*/false, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 3: DeHIN at density %.3f vs. utilized link types "
              "(precision %% [paper] / reduction rate %%)\n\n",
              dataset.value().target_density);

  std::vector<std::string> header = {"links"};
  for (int n = 1; n <= max_distance; ++n) {
    header.push_back("n=" + std::to_string(n) + " prec");
    header.push_back("paper");
    header.push_back("redux");
  }
  util::TablePrinter table(header);

  const auto subsets = eval::TqqLinkTypeSubsets();
  std::map<size_t, std::vector<util::RunningStats>> figure9;
  for (size_t row = 0; row < subsets.size(); ++row) {
    core::DehinConfig config = bench::AttackConfig(false);
    config.match.link_types = subsets[row].link_types;
    core::Dehin dehin(&dataset.value().auxiliary, config);
    std::vector<std::string> cells = {subsets[row].label};
    auto& stats = figure9[subsets[row].link_types.size()];
    stats.resize(max_distance);
    for (int n = 1; n <= max_distance; ++n) {
      const auto metrics = eval::EvaluateAttackParallel(
          dehin, dataset.value().target, dataset.value().ground_truth, n);
      cells.push_back(bench::Pct(metrics.precision));
      cells.push_back(n <= 3 ? util::FormatDouble(kPaperTable3[row][n - 1], 1)
                             : "-");
      cells.push_back(bench::Pct(metrics.reduction_rate, 3));
      stats[n - 1].Add(metrics.precision);
    }
    table.AddRow(std::move(cells));
  }
  if (flags.GetBool("tsv")) {
    table.PrintTsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  std::printf("\nFigure 9: mean DeHIN precision (%%) by number of utilized "
              "link types\n");
  util::TablePrinter figure({"#link types", "n=1", "n=2", "n=3"});
  for (const auto& [size, stats] : figure9) {
    std::vector<std::string> cells = {std::to_string(size)};
    for (int n = 0; n < max_distance && n < 3; ++n) {
      cells.push_back(bench::Pct(stats[n].mean()));
    }
    while (cells.size() < 4) cells.push_back("-");
    figure.AddRow(std::move(cells));
  }
  figure.Print(std::cout);
  std::printf("\nExpected shape: precision improves as more link types are "
              "utilized, mirroring the privacy-risk growth of Figure 7.\n");
  return 0;
}
