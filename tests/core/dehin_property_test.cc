// Property tests over DeHIN's soundness guarantee: for growth-consistent
// publication pipelines (no real-edge deletion), the true counterpart must
// remain in every candidate set — across anonymizers, reconfiguration,
// homogenization and bucketing, at every distance.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "eval/experiment.h"
#include "hin/homogenize.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

enum class Defense { kKdda, kCga, kVwCga, kKDegree, kBucketing };

struct PropertyParams {
  Defense defense;
  bool reconfigured;  // strip + saturation fallback
  uint64_t seed;
};

std::unique_ptr<anon::Anonymizer> MakeAnonymizer(Defense defense) {
  switch (defense) {
    case Defense::kKdda:
      return std::make_unique<anon::KddAnonymizer>();
    case Defense::kCga:
      return std::make_unique<anon::CompleteGraphAnonymizer>();
    case Defense::kVwCga:
      return std::make_unique<anon::VaryingWeightCgaAnonymizer>();
    case Defense::kKDegree:
      return std::make_unique<anon::KDegreeAnonymizer>(10);
    case Defense::kBucketing:
      return std::make_unique<anon::StrengthBucketingAnonymizer>(7);
  }
  return nullptr;
}

class DehinDefenseSoundnessTest
    : public testing::TestWithParam<PropertyParams> {};

TEST_P(DehinDefenseSoundnessTest, TruthSurvivesEveryPipeline) {
  const PropertyParams p = GetParam();
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 120;
  spec.density = 0.015;
  util::Rng rng(p.seed);
  auto anonymizer = MakeAnonymizer(p.defense);
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, *anonymizer, p.reconfigured, &rng);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  if (p.reconfigured) attack.saturation_fraction = 0.5;
  Dehin dehin(&dataset.value().auxiliary, attack);
  for (hin::VertexId vt = 0; vt < dataset.value().target.num_vertices();
       ++vt) {
    for (int n : {0, 1, 2}) {
      const auto candidates =
          dehin.Deanonymize(dataset.value().target, vt, n);
      ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                     dataset.value().ground_truth[vt]))
          << "defense=" << static_cast<int>(p.defense) << " vt=" << vt
          << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, DehinDefenseSoundnessTest,
    testing::Values(
        PropertyParams{Defense::kKdda, false, 1},
        PropertyParams{Defense::kKdda, true, 2},  // blanket reconfiguration
        PropertyParams{Defense::kCga, true, 3},
        PropertyParams{Defense::kVwCga, true, 4},
        PropertyParams{Defense::kKDegree, true, 5},
        PropertyParams{Defense::kBucketing, false, 6}));

// Homogenized pipeline: collapsing link types on BOTH sides preserves
// soundness (merged target strengths are dominated by merged auxiliary
// strengths under growth).
TEST(DehinHomogeneousSoundnessTest, TruthSurvivesHomogenization) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 120;
  spec.density = 0.015;
  util::Rng rng(7);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());
  auto homo_target = hin::HomogenizeGraph(dataset.value().target);
  auto homo_aux = hin::HomogenizeGraph(dataset.value().auxiliary);
  ASSERT_TRUE(homo_target.ok());
  ASSERT_TRUE(homo_aux.ok());

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  attack.match.link_types = {0};
  Dehin dehin(&homo_aux.value(), attack);
  for (hin::VertexId vt = 0; vt < homo_target.value().num_vertices(); ++vt) {
    const auto candidates = dehin.Deanonymize(homo_target.value(), vt, 2);
    ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                   dataset.value().ground_truth[vt]));
  }
}

// Dropping link types from the published target only removes constraints:
// candidate sets grow (weakly) relative to the full publication, and the
// truth stays inside.
TEST(DehinLinkDropMonotonicityTest, DroppingTypesWeakensButStaysSound) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.015;
  util::Rng rng(8);
  auto planted =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(planted.ok());

  // Publish twice with the same permutation stream: full vs follow-only.
  util::Rng full_rng(11);
  util::Rng drop_rng(11);
  anon::KddAnonymizer full_publisher;
  anon::LinkTypeDroppingAnonymizer drop_publisher({hin::kFollowLink});
  auto full = full_publisher.Anonymize(planted.value().target, &full_rng);
  auto dropped = drop_publisher.Anonymize(planted.value().target, &drop_rng);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(dropped.ok());
  ASSERT_EQ(full.value().to_original, dropped.value().to_original);

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  Dehin dehin(&planted.value().auxiliary, attack);
  for (hin::VertexId vt = 0; vt < 100; ++vt) {
    const auto with_all = dehin.Deanonymize(full.value().graph, vt, 1);
    const auto with_drop = dehin.Deanonymize(dropped.value().graph, vt, 1);
    ASSERT_GE(with_drop.size(), with_all.size());
    const hin::VertexId truth =
        planted.value().target_to_aux[full.value().to_original[vt]];
    ASSERT_TRUE(
        std::binary_search(with_drop.begin(), with_drop.end(), truth));
  }
}

// Candidate sets are monotone in the enabled link-type set: enabling more
// heterogeneity can only eliminate candidates (Table 3's mechanism).
TEST(DehinLinkTypeMonotonicityTest, MoreLinkTypesNeverGrowCandidateSets) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.015;
  util::Rng rng(9);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());

  DehinConfig follow_only;
  follow_only.match = DefaultTqqMatchOptions();
  follow_only.match.link_types = {hin::kFollowLink};
  DehinConfig all;
  all.match = DefaultTqqMatchOptions();
  Dehin weak(&dataset.value().auxiliary, follow_only);
  Dehin strong(&dataset.value().auxiliary, all);
  for (hin::VertexId vt = 0; vt < 100; ++vt) {
    const auto weak_candidates =
        weak.Deanonymize(dataset.value().target, vt, 1);
    const auto strong_candidates =
        strong.Deanonymize(dataset.value().target, vt, 1);
    ASSERT_LE(strong_candidates.size(), weak_candidates.size());
    // And the strong set is a subset of the weak set.
    ASSERT_TRUE(std::includes(weak_candidates.begin(), weak_candidates.end(),
                              strong_candidates.begin(),
                              strong_candidates.end()));
  }
}

// ---------------------------------------------------------------------------
// Differential tests for the acceleration layers: the neighborhood-stats
// prefilter and the cross-call shared match cache must be invisible in the
// results — bit-identical candidate sets versus the legacy full scan, on
// every pipeline, at every distance.

std::vector<std::vector<hin::VertexId>> AllCandidates(const Dehin& dehin,
                                                      const hin::Graph& target,
                                                      int max_distance) {
  std::vector<std::vector<hin::VertexId>> result;
  result.reserve(target.num_vertices());
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    result.push_back(dehin.Deanonymize(target, vt, max_distance));
  }
  return result;
}

class DehinAccelerationDifferentialTest
    : public testing::TestWithParam<PropertyParams> {};

TEST_P(DehinAccelerationDifferentialTest, AcceleratedMatchesLegacyScan) {
  const PropertyParams p = GetParam();
  synth::TqqConfig config;
  config.num_users = 2000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 80;
  spec.density = 0.02;
  util::Rng rng(p.seed + 100);
  auto anonymizer = MakeAnonymizer(p.defense);
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, *anonymizer, p.reconfigured, &rng);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  DehinConfig accelerated;
  accelerated.match = DefaultTqqMatchOptions();
  if (p.reconfigured) accelerated.saturation_fraction = 0.5;
  DehinConfig legacy = accelerated;
  legacy.use_prefilter = false;
  legacy.use_shared_cache = false;

  Dehin fast(&dataset.value().auxiliary, accelerated);
  Dehin slow(&dataset.value().auxiliary, legacy);
  for (int n : {0, 1, 2, 3}) {
    const auto fast_sets = AllCandidates(fast, dataset.value().target, n);
    const auto slow_sets = AllCandidates(slow, dataset.value().target, n);
    ASSERT_EQ(fast_sets, slow_sets)
        << "defense=" << static_cast<int>(p.defense)
        << " reconfigured=" << p.reconfigured << " n=" << n;
  }
  // The layers actually engaged (this is a differential test, not two runs
  // of the same code path). Saturation-heavy pipelines may legitimately
  // never reject, so only assert on the plain baseline.
  if (p.defense == Defense::kKdda && !p.reconfigured) {
    EXPECT_GT(fast.stats().prefilter_rejects, 0u);
  }
  EXPECT_EQ(slow.stats().prefilter_rejects, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, DehinAccelerationDifferentialTest,
    testing::Values(
        PropertyParams{Defense::kKdda, false, 1},
        PropertyParams{Defense::kKdda, true, 2},
        PropertyParams{Defense::kCga, true, 3},
        PropertyParams{Defense::kVwCga, true, 4},
        PropertyParams{Defense::kKDegree, true, 5},
        PropertyParams{Defense::kBucketing, false, 6}));

// Exact (time-synchronized) matching exercises the multiset-containment
// branch of the prefilter; in-edge matching exercises the interleaved
// direction slots. Both must stay answer-preserving.
TEST(DehinAccelerationDifferentialTest, ExactModeAndInEdgesMatchLegacy) {
  synth::TqqConfig config;
  config.num_users = 2000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 80;
  spec.density = 0.02;
  synth::GrowthConfig no_growth;
  no_growth.new_user_fraction = 0.0;
  no_growth.new_edge_fraction = 0.0;
  no_growth.attr_growth_prob = 0.0;
  no_growth.strength_growth_prob = 0.0;
  util::Rng rng(42);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(config, spec, no_growth,
                                              anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());

  for (const bool exact : {false, true}) {
    DehinConfig accelerated;
    accelerated.match = DefaultTqqMatchOptions();
    accelerated.match.growth_aware = !exact;
    accelerated.match.use_in_edges = true;
    DehinConfig legacy = accelerated;
    legacy.use_prefilter = false;
    legacy.use_shared_cache = false;
    Dehin fast(&dataset.value().auxiliary, accelerated);
    Dehin slow(&dataset.value().auxiliary, legacy);
    for (int n : {1, 2}) {
      ASSERT_EQ(AllCandidates(fast, dataset.value().target, n),
                AllCandidates(slow, dataset.value().target, n))
          << "exact=" << exact << " n=" << n;
    }
  }
}

// A custom link matcher replaces the strength semantics the prefilter
// reasons about, so the prefilter must disable itself — and the results
// must still agree with the unaccelerated run of the same override.
TEST(DehinAccelerationDifferentialTest, LinkOverrideDisablesPrefilter) {
  synth::TqqConfig config;
  config.num_users = 1500;
  synth::PlantedTargetSpec spec;
  spec.target_size = 60;
  spec.density = 0.02;
  util::Rng rng(43);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());

  // Deliberately NOT monotone in the strengths: dominance reasoning would
  // be unsound for this predicate.
  auto parity_match = [](hin::Strength t, hin::Strength a) {
    return (t % 2) == (a % 2);
  };
  DehinConfig accelerated;
  accelerated.match = DefaultTqqMatchOptions();
  accelerated.link_match_override = parity_match;
  DehinConfig legacy = accelerated;
  legacy.use_prefilter = false;
  legacy.use_shared_cache = false;
  Dehin fast(&dataset.value().auxiliary, accelerated);
  Dehin slow(&dataset.value().auxiliary, legacy);
  for (int n : {1, 2}) {
    ASSERT_EQ(AllCandidates(fast, dataset.value().target, n),
              AllCandidates(slow, dataset.value().target, n));
  }
  EXPECT_EQ(fast.stats().prefilter_rejects, 0u);  // auto-disabled
}

// Regression for the legacy memo-key packing, which stored (vt << 36 |
// va << 4 | depth) in one uint64: any max_distance > 15 overflowed the
// 4-bit depth field and silently collided depth d with depth d & 0xF,
// corrupting candidate sets. The widened per-depth tables must keep deep
// recursions sound, monotone, and identical across acceleration modes.
TEST(DehinDeepRecursionTest, DistancesBeyondFifteenStaySoundAndMonotone) {
  synth::TqqConfig config;
  config.num_users = 1500;
  synth::PlantedTargetSpec spec;
  spec.target_size = 60;
  spec.density = 0.02;
  util::Rng rng(44);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());

  DehinConfig accelerated;
  accelerated.match = DefaultTqqMatchOptions();
  DehinConfig legacy = accelerated;
  legacy.use_prefilter = false;
  legacy.use_shared_cache = false;
  Dehin fast(&dataset.value().auxiliary, accelerated);
  Dehin slow(&dataset.value().auxiliary, legacy);

  for (hin::VertexId vt = 0; vt < dataset.value().target.num_vertices();
       ++vt) {
    const hin::VertexId truth = dataset.value().ground_truth[vt];
    std::vector<hin::VertexId> previous;
    // 15 is the last depth the old packing represented; 16 wrapped to 0
    // and 17 collided with depth-1 entries.
    for (const int n : {15, 16, 17, 20}) {
      const auto candidates = fast.Deanonymize(dataset.value().target, vt, n);
      ASSERT_EQ(candidates, slow.Deanonymize(dataset.value().target, vt, n))
          << "vt=" << vt << " n=" << n;
      ASSERT_TRUE(
          std::binary_search(candidates.begin(), candidates.end(), truth))
          << "vt=" << vt << " n=" << n;
      if (!previous.empty()) {
        // Deeper matching only adds constraints.
        ASSERT_TRUE(std::includes(previous.begin(), previous.end(),
                                  candidates.begin(), candidates.end()))
            << "vt=" << vt << " n=" << n;
      }
      previous = candidates;
    }
  }
}

}  // namespace
}  // namespace hinpriv::core
