file(REMOVE_RECURSE
  "libhinpriv_core.a"
)
