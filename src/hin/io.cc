#include "hin/io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "hin/binary_io.h"
#include "hin/graph_builder.h"
#include "hin/snapshot.h"
#include "util/string_util.h"

namespace hinpriv::hin {

namespace {

constexpr char kMagic[] = "hinpriv-graph";
constexpr int kVersion = 1;

// Reads the next non-empty line; returns IoError at end of stream.
util::Status NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const std::string_view trimmed = util::Trim(*line);
    if (!trimmed.empty()) {
      *line = std::string(trimmed);
      return util::Status::OK();
    }
  }
  return util::Status::IoError("unexpected end of graph stream");
}

util::Result<std::vector<std::string_view>> ExpectFields(
    const std::string& line, size_t min_fields) {
  auto fields = util::Split(line, ' ');
  if (fields.size() < min_fields) {
    return util::Status::Corruption("malformed line: '" + line + "'");
  }
  return fields;
}

}  // namespace

util::Status SaveGraph(const Graph& graph, std::ostream& os) {
  const NetworkSchema& schema = graph.schema();
  os << kMagic << ' ' << kVersion << '\n';
  os << "entity_types " << schema.num_entity_types() << '\n';
  for (size_t t = 0; t < schema.num_entity_types(); ++t) {
    const auto& et = schema.entity_type(static_cast<EntityTypeId>(t));
    os << et.name << ' ' << et.attributes.size() << '\n';
    for (const auto& attr : et.attributes) {
      os << "attr " << attr.name << ' ' << (attr.growable ? 1 : 0) << '\n';
    }
  }
  os << "link_types " << schema.num_link_types() << '\n';
  for (size_t lt = 0; lt < schema.num_link_types(); ++lt) {
    const auto& def = schema.link_type(static_cast<LinkTypeId>(lt));
    os << def.name << ' ' << def.src << ' ' << def.dst << ' '
       << (def.has_strength ? 1 : 0) << ' ' << (def.growable_strength ? 1 : 0)
       << ' ' << (def.allows_self_link ? 1 : 0) << '\n';
  }
  os << "vertices " << graph.num_vertices() << '\n';
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const EntityTypeId t = graph.entity_type(v);
    os << t;
    const size_t num_attrs = graph.num_attributes(t);
    for (AttributeId a = 0; a < num_attrs; ++a) {
      os << ' ' << graph.attribute(v, a);
    }
    os << '\n';
  }
  for (size_t lt = 0; lt < schema.num_link_types(); ++lt) {
    size_t count = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      count += graph.OutDegree(static_cast<LinkTypeId>(lt), v);
    }
    os << "edges " << lt << ' ' << count << '\n';
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const Edge& e :
           graph.OutEdges(static_cast<LinkTypeId>(lt), v)) {
        os << v << ' ' << e.neighbor << ' ' << e.strength << '\n';
      }
    }
  }
  os << "end\n";
  if (!os) return util::Status::IoError("write failure while saving graph");
  return util::Status::OK();
}

util::Status SaveGraphToFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return SaveGraph(graph, out);
}

util::Result<Graph> LoadGraph(std::istream& is) {
  std::string line;
  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  {
    auto fields = ExpectFields(line, 2);
    if (!fields.ok()) return fields.status();
    if (fields.value()[0] != kMagic) {
      return util::Status::Corruption("bad magic: expected 'hinpriv-graph'");
    }
    auto version = util::ParseInt64(fields.value()[1]);
    if (!version.ok() || version.value() != kVersion) {
      return util::Status::Corruption("unsupported graph format version");
    }
  }

  NetworkSchema schema;
  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  auto header = ExpectFields(line, 2);
  if (!header.ok()) return header.status();
  if (header.value()[0] != "entity_types") {
    return util::Status::Corruption("expected 'entity_types' section");
  }
  auto num_entity_types = util::ParseUint64(header.value()[1]);
  if (!num_entity_types.ok()) return num_entity_types.status();
  for (uint64_t t = 0; t < num_entity_types.value(); ++t) {
    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    auto fields = ExpectFields(line, 2);
    if (!fields.ok()) return fields.status();
    const EntityTypeId et = schema.AddEntityType(std::string(fields.value()[0]));
    auto num_attrs = util::ParseUint64(fields.value()[1]);
    if (!num_attrs.ok()) return num_attrs.status();
    for (uint64_t a = 0; a < num_attrs.value(); ++a) {
      HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
      auto attr_fields = ExpectFields(line, 3);
      if (!attr_fields.ok()) return attr_fields.status();
      if (attr_fields.value()[0] != "attr") {
        return util::Status::Corruption("expected 'attr' row");
      }
      auto growable = util::ParseUint64(attr_fields.value()[2]);
      if (!growable.ok()) return growable.status();
      schema.AddAttribute(et, std::string(attr_fields.value()[1]),
                          growable.value() != 0);
    }
  }

  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  header = ExpectFields(line, 2);
  if (!header.ok()) return header.status();
  if (header.value()[0] != "link_types") {
    return util::Status::Corruption("expected 'link_types' section");
  }
  auto num_link_types = util::ParseUint64(header.value()[1]);
  if (!num_link_types.ok()) return num_link_types.status();
  for (uint64_t lt = 0; lt < num_link_types.value(); ++lt) {
    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    auto fields = ExpectFields(line, 6);
    if (!fields.ok()) return fields.status();
    auto src = util::ParseUint64(fields.value()[1]);
    auto dst = util::ParseUint64(fields.value()[2]);
    auto has_strength = util::ParseUint64(fields.value()[3]);
    auto growable = util::ParseUint64(fields.value()[4]);
    auto self_link = util::ParseUint64(fields.value()[5]);
    for (const auto* r : {&src, &dst, &has_strength, &growable, &self_link}) {
      if (!r->ok()) return r->status();
    }
    if (src.value() >= schema.num_entity_types() ||
        dst.value() >= schema.num_entity_types()) {
      return util::Status::Corruption("link type endpoint out of range");
    }
    schema.AddLinkType(std::string(fields.value()[0]),
                       static_cast<EntityTypeId>(src.value()),
                       static_cast<EntityTypeId>(dst.value()),
                       has_strength.value() != 0, growable.value() != 0,
                       self_link.value() != 0);
  }
  HINPRIV_RETURN_IF_ERROR(schema.Validate());

  GraphBuilder builder(schema);
  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  header = ExpectFields(line, 2);
  if (!header.ok()) return header.status();
  if (header.value()[0] != "vertices") {
    return util::Status::Corruption("expected 'vertices' section");
  }
  auto num_vertices = util::ParseUint64(header.value()[1]);
  if (!num_vertices.ok()) return num_vertices.status();
  for (uint64_t v = 0; v < num_vertices.value(); ++v) {
    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    auto fields = ExpectFields(line, 1);
    if (!fields.ok()) return fields.status();
    auto etype = util::ParseUint64(fields.value()[0]);
    if (!etype.ok()) return etype.status();
    if (etype.value() >= schema.num_entity_types()) {
      return util::Status::Corruption("vertex entity type out of range");
    }
    const EntityTypeId t = static_cast<EntityTypeId>(etype.value());
    const size_t num_attrs =
        schema.entity_type(t).attributes.size();
    if (fields.value().size() != 1 + num_attrs) {
      return util::Status::Corruption(
          "vertex row has wrong attribute count: '" + line + "'");
    }
    const VertexId id = builder.AddVertex(t);
    for (size_t a = 0; a < num_attrs; ++a) {
      auto value = util::ParseInt64(fields.value()[1 + a]);
      if (!value.ok()) return value.status();
      HINPRIV_RETURN_IF_ERROR(builder.SetAttribute(
          id, static_cast<AttributeId>(a),
          static_cast<AttrValue>(value.value())));
    }
  }

  for (uint64_t section = 0; section < schema.num_link_types(); ++section) {
    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    auto fields = ExpectFields(line, 3);
    if (!fields.ok()) return fields.status();
    if (fields.value()[0] != "edges") {
      return util::Status::Corruption("expected 'edges' section");
    }
    auto lt = util::ParseUint64(fields.value()[1]);
    auto count = util::ParseUint64(fields.value()[2]);
    if (!lt.ok()) return lt.status();
    if (!count.ok()) return count.status();
    if (lt.value() >= schema.num_link_types()) {
      return util::Status::Corruption("edge section link type out of range");
    }
    for (uint64_t e = 0; e < count.value(); ++e) {
      HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
      auto edge_fields = ExpectFields(line, 3);
      if (!edge_fields.ok()) return edge_fields.status();
      auto src = util::ParseUint64(edge_fields.value()[0]);
      auto dst = util::ParseUint64(edge_fields.value()[1]);
      auto strength = util::ParseUint64(edge_fields.value()[2]);
      for (const auto* r : {&src, &dst, &strength}) {
        if (!r->ok()) return r->status();
      }
      if (src.value() >= num_vertices.value() ||
          dst.value() >= num_vertices.value()) {
        return util::Status::Corruption("edge endpoint out of range");
      }
      HINPRIV_RETURN_IF_ERROR(builder.AddEdge(
          static_cast<VertexId>(src.value()),
          static_cast<VertexId>(dst.value()),
          static_cast<LinkTypeId>(lt.value()),
          static_cast<Strength>(strength.value())));
    }
  }

  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  if (util::Trim(line) != "end") {
    return util::Status::Corruption("missing 'end' terminator");
  }
  return std::move(builder).Build();
}

util::Result<Graph> LoadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return LoadGraph(in);
}

util::Result<Graph> LoadGraphAuto(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return util::Status::IoError("cannot open for read: " + path);
    char magic[8] = {};
    probe.read(magic, sizeof(magic));
    if (probe.gcount() == 8 && std::memcmp(magic, "HINPRIVB", 8) == 0) {
      return LoadGraphBinaryFromFile(path);
    }
    if (probe.gcount() == 8 && std::memcmp(magic, "HINPRIVS", 8) == 0) {
      return LoadGraphSnapshot(path);
    }
  }
  return LoadGraphFromFile(path);
}

util::Status SaveGraphAuto(const Graph& graph, const std::string& path) {
  if (path.ends_with(".bin") || path.ends_with(".bgraph")) {
    return SaveGraphBinaryToFile(graph, path);
  }
  if (path.ends_with(".snap")) {
    return SaveGraphSnapshot(graph, path);
  }
  return SaveGraphToFile(graph, path);
}

}  // namespace hinpriv::hin
