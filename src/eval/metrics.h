#ifndef HINPRIV_EVAL_METRICS_H_
#define HINPRIV_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/dehin.h"
#include "hin/graph.h"

namespace hinpriv::eval {

// The two Section 6 metrics plus supporting counts.
//
//   Precision      = (1/|V'|) * sum_i s(v'_i), where s = 1 iff the
//                    candidate set is exactly {true counterpart}.
//   Reduction rate = (1/|V'|) * sum_i (1 - |C(v'_i)| / |V|).
struct AttackMetrics {
  double precision = 0.0;
  double reduction_rate = 0.0;
  size_t num_targets = 0;
  // Targets actually scored. Equals num_targets except when an evaluation
  // was interrupted by a cancel token (ParallelEvalOptions::cancel), in
  // which case the rates below are over the evaluated prefix only.
  size_t num_evaluated = 0;
  // True when a cancel token stopped the evaluation before every target
  // was scored.
  bool interrupted = false;
  // Targets whose candidate set was a unique, correct match.
  size_t num_unique_correct = 0;
  // Targets whose candidate set contains the true counterpart (soundness
  // indicator: 100% under growth-consistent anonymization without edge
  // deletion).
  size_t num_containing_truth = 0;
  double mean_candidate_count = 0.0;
  // Acceleration-layer counters accumulated by the Dehin over this
  // evaluation (delta of Dehin::stats() around the run): prefilter reject
  // rate and match-cache hit rate for observability and the bench JSON.
  core::DehinStats dehin_stats;
};

// Runs dehin.Deanonymize on every vertex of `target` at `max_distance` and
// scores against ground_truth (target vertex i's true auxiliary vertex).
AttackMetrics EvaluateAttack(const core::Dehin& dehin,
                             const hin::Graph& target,
                             const std::vector<hin::VertexId>& ground_truth,
                             int max_distance);

}  // namespace hinpriv::eval

#endif  // HINPRIV_EVAL_METRICS_H_
