#include "hin/subgraph.h"

#include <cstdint>
#include <unordered_map>

#include "hin/graph_builder.h"

namespace hinpriv::hin {

util::Result<SubgraphResult> InducedSubgraph(
    const Graph& parent, const std::vector<VertexId>& vertices) {
  std::unordered_map<VertexId, VertexId> to_sub;
  to_sub.reserve(vertices.size());
  GraphBuilder builder(parent.schema());
  for (VertexId pv : vertices) {
    if (pv >= parent.num_vertices()) {
      return util::Status::OutOfRange("subgraph vertex id out of range");
    }
    if (to_sub.contains(pv)) {
      return util::Status::InvalidArgument("duplicate vertex in subgraph set");
    }
    const VertexId sv = builder.AddVertex(parent.entity_type(pv));
    to_sub.emplace(pv, sv);
    const EntityTypeId t = parent.entity_type(pv);
    const size_t num_attrs = parent.num_attributes(t);
    for (AttributeId a = 0; a < num_attrs; ++a) {
      HINPRIV_RETURN_IF_ERROR(
          builder.SetAttribute(sv, a, parent.attribute(pv, a)));
    }
  }
  const size_t num_links = parent.num_link_types();
  for (VertexId pv : vertices) {
    const VertexId sv = to_sub.at(pv);
    for (LinkTypeId lt = 0; lt < num_links; ++lt) {
      for (const Edge& e : parent.OutEdges(lt, pv)) {
        auto it = to_sub.find(e.neighbor);
        if (it == to_sub.end()) continue;
        HINPRIV_RETURN_IF_ERROR(
            builder.AddEdge(sv, it->second, lt, e.strength));
      }
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  SubgraphResult result{std::move(built).value(), vertices};
  return result;
}

util::Result<HaloSubgraphResult> HaloInducedSubgraph(
    const Graph& parent, const std::vector<VertexId>& seeds, int depth) {
  std::vector<uint8_t> included(parent.num_vertices(), 0);
  std::vector<VertexId> ordered;
  ordered.reserve(seeds.size());
  for (VertexId pv : seeds) {
    if (pv >= parent.num_vertices()) {
      return util::Status::OutOfRange("halo seed id out of range");
    }
    if (included[pv]) {
      return util::Status::InvalidArgument("duplicate halo seed");
    }
    included[pv] = 1;
    ordered.push_back(pv);
  }
  // Level-by-level BFS over every link type in both directions; discovery
  // order is deterministic (frontier order, then link type, then out
  // before in), so identical inputs always produce identical subgraphs.
  const size_t num_links = parent.num_link_types();
  std::vector<VertexId> frontier = ordered;
  std::vector<VertexId> next;
  for (int d = 0; d < depth && !frontier.empty(); ++d) {
    next.clear();
    for (VertexId pv : frontier) {
      for (LinkTypeId lt = 0; lt < num_links; ++lt) {
        for (const Edge& e : parent.OutEdges(lt, pv)) {
          if (!included[e.neighbor]) {
            included[e.neighbor] = 1;
            next.push_back(e.neighbor);
          }
        }
        for (const Edge& e : parent.InEdges(lt, pv)) {
          if (!included[e.neighbor]) {
            included[e.neighbor] = 1;
            next.push_back(e.neighbor);
          }
        }
      }
    }
    ordered.insert(ordered.end(), next.begin(), next.end());
    frontier.swap(next);
  }
  auto induced = InducedSubgraph(parent, ordered);
  if (!induced.ok()) return induced.status();
  HaloSubgraphResult result{std::move(induced.value().graph),
                            std::move(induced.value().to_parent),
                            seeds.size()};
  return result;
}

util::Result<SubgraphResult> SampleInducedSubgraph(const Graph& parent,
                                                   size_t count,
                                                   util::Rng* rng,
                                                   EntityTypeId entity_type) {
  std::vector<VertexId> pool;
  if (entity_type == kInvalidEntityType) {
    pool.resize(parent.num_vertices());
    for (VertexId v = 0; v < parent.num_vertices(); ++v) pool[v] = v;
  } else {
    if (entity_type >= parent.schema().num_entity_types()) {
      return util::Status::InvalidArgument("entity type out of range");
    }
    pool.reserve(parent.NumVerticesOfType(entity_type));
    for (VertexId v = 0; v < parent.num_vertices(); ++v) {
      if (parent.entity_type(v) == entity_type) pool.push_back(v);
    }
  }
  if (count > pool.size()) {
    return util::Status::InvalidArgument(
        "sample size exceeds available vertices");
  }
  const auto picks = rng->SampleWithoutReplacement(pool.size(), count);
  std::vector<VertexId> vertices;
  vertices.reserve(count);
  for (uint64_t i : picks) vertices.push_back(pool[i]);
  return InducedSubgraph(parent, vertices);
}

}  // namespace hinpriv::hin
