#ifndef HINPRIV_HIN_SCHEMA_H_
#define HINPRIV_HIN_SCHEMA_H_

#include <string>
#include <vector>

#include "hin/types.h"
#include "util/status.h"

namespace hinpriv::hin {

// One profile attribute of an entity type. `growable` marks attributes whose
// value can only increase between the target snapshot and a later auxiliary
// crawl (e.g., tweet count) — DeHIN's matchers use `>=` for these
// (Section 5.1 of the paper).
struct AttributeDef {
  std::string name;
  bool growable = false;
};

// One entity type (node type) of the network schema (Definition 3).
struct EntityTypeDef {
  std::string name;
  std::vector<AttributeDef> attributes;
};

// One link type (edge type). Per Definition 1, all edges of a link type
// share the same starting and ending entity types. `has_strength` marks
// weighted links (mention/retweet/comment strengths); `growable_strength`
// marks weights that can only grow over time. `allows_self_link` feeds the
// density denominator (Equation 4).
struct LinkTypeDef {
  std::string name;
  EntityTypeId src = kInvalidEntityType;
  EntityTypeId dst = kInvalidEntityType;
  bool has_strength = false;
  bool growable_strength = false;
  bool allows_self_link = false;
};

// The network schema T_G = (E, L) (Definition 3): a meta template listing
// entity types with their attributes and directed link types over them.
class NetworkSchema {
 public:
  NetworkSchema() = default;

  NetworkSchema(const NetworkSchema&) = default;
  NetworkSchema& operator=(const NetworkSchema&) = default;
  NetworkSchema(NetworkSchema&&) = default;
  NetworkSchema& operator=(NetworkSchema&&) = default;

  EntityTypeId AddEntityType(std::string name);

  // Adds an attribute to an existing entity type; returns its AttributeId
  // within that type.
  AttributeId AddAttribute(EntityTypeId entity_type, std::string name,
                           bool growable);

  LinkTypeId AddLinkType(std::string name, EntityTypeId src, EntityTypeId dst,
                         bool has_strength, bool growable_strength,
                         bool allows_self_link);

  size_t num_entity_types() const { return entity_types_.size(); }
  size_t num_link_types() const { return link_types_.size(); }

  const EntityTypeDef& entity_type(EntityTypeId id) const {
    return entity_types_[id];
  }
  const LinkTypeDef& link_type(LinkTypeId id) const { return link_types_[id]; }

  // Name lookups; return the kInvalid* sentinel when absent.
  EntityTypeId FindEntityType(const std::string& name) const;
  LinkTypeId FindLinkType(const std::string& name) const;
  // Attribute lookup within an entity type; returns num-attributes sentinel
  // via found=false when absent.
  util::Result<AttributeId> FindAttribute(EntityTypeId entity_type,
                                          const std::string& name) const;

  // Whether this is a heterogeneous information network schema
  // (Definition 2: more than one entity type or more than one link type).
  bool IsHeterogeneous() const {
    return entity_types_.size() > 1 || link_types_.size() > 1;
  }

  // Number of link types that allow self-links (the `m` of Equation 4).
  size_t CountSelfLinkTypes() const;

  // Structural validation: link endpoints in range, names unique.
  util::Status Validate() const;

 private:
  std::vector<EntityTypeDef> entity_types_;
  std::vector<LinkTypeDef> link_types_;
};

// One step of a meta path: traverse a link type, forward (src -> dst) or
// reverse (dst -> src, e.g., "posted by" is the reverse of "post").
struct MetaPathStep {
  LinkTypeId link = kInvalidLinkType;
  bool reverse = false;
};

// A target meta path (Definition 4): a walk over the network schema that
// starts and ends at the target entity type,
//   E* --L1--> E1 --L2--> ... --Ln--> E*.
struct MetaPath {
  std::string name;
  std::vector<MetaPathStep> steps;
};

// Checks that `path` is well-formed over `schema` and both starts and ends
// at `target_entity` (Definition 4).
util::Status ValidateMetaPath(const NetworkSchema& schema,
                              EntityTypeId target_entity,
                              const MetaPath& path);

// One link type of the target network schema (Definition 5), produced by
// short-circuiting one or more meta paths (e.g., the user mention path runs
// through either a Tweet or a Comment; both variants collapse into the
// single target link "mention" whose strength counts path instances), or by
// reproducing a length-1 path (follow).
struct TargetLinkDef {
  std::string name;
  std::vector<MetaPath> source_paths;
  bool allows_self_link = false;
  // Whether the short-circuited strength can grow between the target
  // snapshot and the auxiliary crawl.
  bool growable_strength = true;
};

// Specification of the projection T_G -> T_G* (Definition 5): which entity
// type is the adversary's target, and which meta paths become target links.
struct TargetSchemaSpec {
  EntityTypeId target_entity = kInvalidEntityType;
  std::vector<TargetLinkDef> links;
};

// The projected target network schema T_G* = (E*, L*): a single-entity-type
// schema whose link types are the short-circuited target links. Produced by
// ProjectSchema below; the projected *instance* graph is produced by
// hin::ProjectGraph (projection.h).
util::Result<NetworkSchema> ProjectSchema(const NetworkSchema& schema,
                                          const TargetSchemaSpec& spec);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_SCHEMA_H_
