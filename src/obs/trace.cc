#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace hinpriv::obs {

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

namespace {

// Default cap: at ~24 bytes/event this bounds a thread's buffer to ~1.5MB
// and keeps a full multi-thread trace_dump comfortably inside the service's
// 16MB frame limit.
constexpr size_t kDefaultTraceBufferCapacity = 1 << 16;

std::atomic<size_t> g_trace_buffer_capacity{kDefaultTraceBufferCapacity};

thread_local uint64_t tls_request_id = 0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Resolved lazily so the registry exists before the first drop; called
// under a buffer mutex, which is safe — the registry mutex never acquires
// buffer locks.
Counter* DroppedEventsCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs/trace_dropped_events");
  return counter;
}

}  // namespace

// Per-thread event buffer. Appends happen only from the owner thread but
// export and StartTracing()'s clear run on another thread, so every access
// is under the (owner-uncontended) buffer mutex. The deque is a bounded
// ring: appending past the capacity evicts the oldest event.
class ThreadTraceBuffer {
 public:
  explicit ThreadTraceBuffer(uint32_t tid) : tid_(tid) {}

  uint64_t Begin(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    Append({name, NowNs(), tls_request_id});
    return epoch_;
  }

  void End(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    // The matching Begin was wiped by a StartTracing() in between; an E
    // without its B would make the trace unbalanced.
    if (epoch != epoch_) return;
    Append({nullptr, NowNs(), 0});
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    ++epoch_;
  }

  void SetName(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    name_ = std::move(name);
  }

  // Snapshot for export.
  void Read(std::vector<TraceEvent>* events, std::string* name) const {
    std::lock_guard<std::mutex> lock(mu_);
    events->assign(events_.begin(), events_.end());
    *name = name_;
  }

  uint32_t tid() const { return tid_; }

 private:
  void Append(TraceEvent event) {
    const size_t cap =
        std::max<size_t>(2, g_trace_buffer_capacity.load(
                                std::memory_order_relaxed));
    uint64_t dropped = 0;
    while (events_.size() >= cap) {
      events_.pop_front();
      ++dropped;
    }
    if (dropped > 0) DroppedEventsCounter()->Add(dropped);
    events_.push_back(event);
  }

  mutable std::mutex mu_;
  uint32_t tid_;
  uint64_t epoch_ = 0;
  std::string name_;
  std::deque<TraceEvent> events_;
};

namespace {

// Global recorder: owns a reference to every thread buffer ever created so
// events survive worker-thread exit until the main thread exports them.
struct Recorder {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
};

Recorder& GlobalRecorder() {
  static Recorder* recorder = new Recorder();
  return *recorder;
}

std::shared_ptr<ThreadTraceBuffer> RegisterThreadBuffer() {
  Recorder& recorder = GlobalRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  auto buffer = std::make_shared<ThreadTraceBuffer>(
      static_cast<uint32_t>(recorder.buffers.size() + 1));
  recorder.buffers.push_back(buffer);
  return buffer;
}

}  // namespace

ThreadTraceBuffer* CurrentThreadBuffer() {
  thread_local const std::shared_ptr<ThreadTraceBuffer> buffer =
      RegisterThreadBuffer();
  return buffer.get();
}

uint64_t BeginSpan(ThreadTraceBuffer* buffer, const char* name) {
  return buffer->Begin(name);
}

void EndSpan(ThreadTraceBuffer* buffer, uint64_t epoch) {
  buffer->End(epoch);
}

}  // namespace internal

bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  internal::Recorder& recorder = internal::GlobalRecorder();
  {
    std::lock_guard<std::mutex> lock(recorder.mu);
    for (const auto& buffer : recorder.buffers) buffer->Clear();
  }
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

size_t TraceBufferCapacity() {
  return internal::g_trace_buffer_capacity.load(std::memory_order_relaxed);
}

void SetTraceBufferCapacity(size_t max_events) {
  internal::g_trace_buffer_capacity.store(std::max<size_t>(2, max_events),
                                          std::memory_order_relaxed);
}

void SetCurrentThreadName(std::string name) {
  internal::CurrentThreadBuffer()->SetName(std::move(name));
}

uint64_t CurrentRequestId() { return internal::tls_request_id; }

void SetCurrentRequestId(uint64_t rid) { internal::tls_request_id = rid; }

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

// Microseconds with sub-microsecond precision kept (Perfetto accepts
// fractional ts).
void AppendTimestampUs(std::string* out, uint64_t ts_ns, uint64_t origin_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ts_ns - origin_ns) / 1000.0);
  out->append(buf);
}

struct BufferDump {
  uint32_t tid;
  std::string name;
  std::vector<internal::TraceEvent> events;
};

}  // namespace

std::string ChromeTraceJson() {
  std::vector<BufferDump> dumps;
  {
    internal::Recorder& recorder = internal::GlobalRecorder();
    std::lock_guard<std::mutex> lock(recorder.mu);
    dumps.reserve(recorder.buffers.size());
    for (const auto& buffer : recorder.buffers) {
      BufferDump dump;
      dump.tid = buffer->tid();
      buffer->Read(&dump.events, &dump.name);
      dumps.push_back(std::move(dump));
    }
  }
  uint64_t origin_ns = std::numeric_limits<uint64_t>::max();
  for (const BufferDump& dump : dumps) {
    for (const internal::TraceEvent& event : dump.events) {
      origin_ns = std::min(origin_ns, event.ts_ns);
    }
  }
  if (origin_ns == std::numeric_limits<uint64_t>::max()) origin_ns = 0;

  std::string out;
  out.reserve(4096);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (const BufferDump& dump : dumps) {
    char tid_buf[64];
    std::snprintf(tid_buf, sizeof(tid_buf), "\"pid\": 1, \"tid\": %u",
                  dump.tid);
    if (!dump.name.empty()) {
      comma();
      out += "{\"name\": \"thread_name\", \"ph\": \"M\", ";
      out += tid_buf;
      out += ", \"args\": {\"name\": ";
      AppendJsonString(&out, dump.name);
      out += "}}";
    }
    // Per-buffer order is the owner thread's program order, so B/E events
    // form a proper bracket sequence per tid by construction — except that
    // the bounded buffer may have evicted a prefix, leaving E events whose
    // B is gone. Depth tracking skips exactly those orphans.
    size_t depth = 0;
    for (const internal::TraceEvent& event : dump.events) {
      if (event.name == nullptr && depth == 0) continue;  // orphaned E
      comma();
      if (event.name != nullptr) {
        ++depth;
        out += "{\"name\": ";
        AppendJsonString(&out, event.name);
        out += ", \"cat\": \"hinpriv\", \"ph\": \"B\", ";
        if (event.rid != 0) {
          char rid_buf[48];
          std::snprintf(rid_buf, sizeof(rid_buf),
                        "\"args\": {\"rid\": %llu}, ",
                        static_cast<unsigned long long>(event.rid));
          out += rid_buf;
        }
      } else {
        --depth;
        out += "{\"ph\": \"E\", ";
      }
      out += tid_buf;
      out += ", \"ts\": ";
      AppendTimestampUs(&out, event.ts_ns, origin_ns);
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

util::Status WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot write trace to: " + path);
  }
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return util::Status::IoError("short write of trace to: " + path);
  }
  return util::Status::OK();
}

size_t NumRecordedTraceEvents() {
  internal::Recorder& recorder = internal::GlobalRecorder();
  std::lock_guard<std::mutex> lock(recorder.mu);
  size_t total = 0;
  for (const auto& buffer : recorder.buffers) {
    std::vector<internal::TraceEvent> events;
    std::string name;
    buffer->Read(&events, &name);
    total += events.size();
  }
  return total;
}

}  // namespace hinpriv::obs
