#ifndef HINPRIV_EXEC_EXECUTOR_H_
#define HINPRIV_EXEC_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/work_stealing_deque.h"
#include "util/cancellation.h"

namespace hinpriv::obs {
class Counter;
class Gauge;
}  // namespace hinpriv::obs

namespace hinpriv::exec {

// The one place the "0 means hardware concurrency" convention lives.
// Previously re-derived (slightly differently) by eval, the service, and
// the CLI. Always returns at least 1.
size_t ResolveThreads(size_t requested);

// Two-level task priority. kHigh is reserved for latency-critical control
// work (service request admission); kNormal is throughput work (scan
// grains, batch targets). Workers always drain kHigh submissions before
// touching any normal-priority source, so request admission never starves
// behind a backlog of scan grains.
enum class Priority { kHigh, kNormal };

// How the adaptive grain is derived when a ParallelFor (or the intra-query
// candidate scan riding on it) leaves `grain` at 0: aim for
// `chunks_per_worker` claims per worker — enough slack that skewed
// iteration costs rebalance, few enough that the shared claim counter
// stays cold — clamped to [min_grain, max_grain] so huge ranges don't
// degenerate into per-item tasks. The defaults are the historical
// hard-coded policy; the parallel_scaling bench sweeps them.
struct GrainPolicy {
  size_t chunks_per_worker = 8;
  size_t min_grain = 1;
  size_t max_grain = 8192;

  size_t Resolve(size_t n, size_t num_workers) const {
    const size_t target_chunks = std::max<size_t>(num_workers, 1) *
                                 std::max<size_t>(chunks_per_worker, 1);
    const size_t lo = std::max<size_t>(min_grain, 1);
    const size_t hi = std::max(lo, max_grain);
    return std::clamp<size_t>(n / target_chunks, lo, hi);
  }
};

struct ParallelForOptions {
  // Iterations per claimed chunk; 0 derives the grain from `grain_policy`.
  size_t grain = 0;
  // Adaptive-grain policy applied when `grain` is 0.
  GrainPolicy grain_policy;
  // Polled before every grain claim; once it fires no further grain is
  // claimed (grains already claimed run to completion, so the executed set
  // stays exactly [0, completed)).
  const util::CancelToken* cancel = nullptr;
  // Priority of the forked claim-loop tasks.
  Priority priority = Priority::kNormal;
};

struct ParallelForResult {
  // Iterations executed; always a prefix [0, completed) of the range.
  size_t completed = 0;
  // True when the loop ended early via the cancel token.
  bool stopped = false;
};

// Persistent work-stealing executor: a fixed pool of workers, one
// Chase–Lev deque per worker, plus two mutex-backed injection queues for
// submissions from non-worker threads (and for all kHigh work).
//
// Scheduling order in each worker: high injection queue, own deque
// (LIFO), normal injection queue, then stealing from sibling deques
// (random victim order, FIFO from the victim's top).
//
// Submissions from inside a worker of the same executor go to that
// worker's own deque (stealable by idle siblings); everything else goes
// through the injection queues. Idle workers sleep on a condition
// variable behind a seq_cst epoch/sleeper-count handshake, so an enqueue
// from any thread can never be missed.
//
// Obs wiring: exec/tasks, exec/steals, exec/parallel_fors counters;
// exec/queue_high, exec/queue_normal, exec/workers gauges; each executed
// task runs under an "exec/task" trace span on a thread named
// "exec/worker-N".
class Executor {
 public:
  // ResolveThreads() is applied to num_threads (0 = hardware concurrency).
  explicit Executor(size_t num_threads = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Process-wide shared pool, sized to the hardware, created on first use
  // and joined at static destruction.
  static Executor& Global();

  // The executor owning the calling worker thread, nullptr when called
  // from any other thread.
  static Executor* Current();

  size_t num_workers() const { return workers_.size(); }

  // Fire-and-forget. fn must not throw (uncaught exceptions are counted,
  // reported to stderr once, and dropped); use TaskGroup or ParallelFor
  // when exceptions need to propagate to a joiner.
  void Submit(std::function<void()> fn, Priority priority = Priority::kNormal);

  // Runs body(begin, end) over subranges that exactly tile [0, n). Grains
  // are claimed dynamically from a shared counter, so skewed iteration
  // costs rebalance across workers; the caller participates inline, which
  // makes nested calls from worker context deadlock-free. Exceptions from
  // body propagate to the caller (first one wins). Deterministic-output
  // parallelism is the intended use: body writes to per-index or
  // per-grain slots, the caller merges them in index order afterwards.
  ParallelForResult ParallelFor(size_t n,
                                const std::function<void(size_t, size_t)>& body,
                                const ParallelForOptions& options = {});

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    // Request id active on the submitting thread, re-installed around fn()
    // so spans recorded inside worker-side work (candidate-scan grains,
    // drained service requests) attribute to the originating request.
    uint64_t rid = 0;
  };

  struct Worker {
    WorkStealingDeque deque;
    std::thread thread;
  };

  struct PFState;

  void WorkerMain(size_t index);
  // Finds and runs one task; high injection is only consulted by the
  // worker main loop (include_high), never by helpers nested inside a
  // running task, so a request task can't recurse into another request.
  bool RunOneTask(Worker* self, bool include_high);
  Task* TryPopInjected(Priority priority);
  Task* TrySteal(Worker* self);
  void Enqueue(Task* task, Priority priority);
  void NotifyWork();
  void RunTask(Task* task);
  void ClaimLoop(const std::shared_ptr<PFState>& state);

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mu_;
  std::deque<Task*> inject_high_;
  std::deque<Task*> inject_normal_;
  // Mirrors of the queue sizes so the hot scheduling path can skip the
  // mutex when a queue is empty.
  std::atomic<size_t> inject_high_size_{0};
  std::atomic<size_t> inject_normal_size_{0};

  // Sleep/wake handshake: a producer bumps wake_epoch_ after enqueueing
  // and only then reads num_sleepers_; a would-be sleeper increments
  // num_sleepers_ and only then re-reads the epoch. With seq_cst on both,
  // at least one side sees the other, so no wakeup is lost.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<uint64_t> wake_epoch_{0};
  std::atomic<size_t> num_sleepers_{0};
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> steal_seed_{0x9e3779b97f4a7c15ull};

  obs::Counter* tasks_counter_;
  obs::Counter* steals_counter_;
  obs::Counter* parallel_fors_counter_;
  obs::Counter* uncaught_counter_;
  obs::Gauge* queue_high_gauge_;
  obs::Gauge* queue_normal_gauge_;
};

// Fork/join scope over an executor: Run() submits tasks, Wait() blocks
// until all of them finished and rethrows the first exception any of them
// threw. Wait() from a worker of the same executor helps run queued work
// (own deque, steals, normal injection — never high injection) instead of
// blocking the worker. Destruction waits for stragglers but swallows
// their exceptions; call Wait() to observe them.
class TaskGroup {
 public:
  // nullptr selects Executor::Global().
  explicit TaskGroup(Executor* executor = nullptr);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn, Priority priority = Priority::kNormal);
  void Wait();

  Executor* executor() const { return executor_; }

 private:
  void WaitNoThrow();

  Executor* executor_;
  std::atomic<size_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr error_;  // guarded by mu_
};

}  // namespace hinpriv::exec

#endif  // HINPRIV_EXEC_EXECUTOR_H_
