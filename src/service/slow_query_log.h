#ifndef HINPRIV_SERVICE_SLOW_QUERY_LOG_H_
#define HINPRIV_SERVICE_SLOW_QUERY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "hin/types.h"
#include "service/protocol.h"

namespace hinpriv::service {

// One completed request as the slow-query log records it: the request id
// assigned at admission plus a per-phase wall-clock breakdown (time queued
// before a worker popped it, time inside the method handler, time writing
// the response frame).
struct SlowQueryRecord {
  uint64_t rid = 0;
  Method method = Method::kStats;
  hin::VertexId target = 0;
  bool has_target = false;
  int max_distance = -1;
  ResponseCode code = ResponseCode::kOk;
  uint64_t queue_us = 0;
  uint64_t run_us = 0;
  uint64_t write_us = 0;
  uint64_t total_us = 0;
};

// Bounded worst-N log of the slowest requests by total latency. Record()
// is serving-path: one mutex acquisition and, when the candidate beats the
// current floor, one ordered insertion into a vector that never exceeds
// `capacity` — no allocation churn once warm. The `stats` admin verb dumps
// WorstFirst() so the worst recent requests are inspectable live, each with
// its per-phase breakdown and request id (joinable against a trace dump).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity);

  // Considers one completed request; keeps it only if it ranks among the
  // `capacity` slowest seen so far.
  void Record(const SlowQueryRecord& record);

  // The retained records, slowest first.
  std::vector<SlowQueryRecord> WorstFirst() const;

  // Total requests offered to Record() (retained or not).
  uint64_t recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> worst_;  // sorted, slowest first
  uint64_t recorded_ = 0;
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_SLOW_QUERY_LOG_H_
