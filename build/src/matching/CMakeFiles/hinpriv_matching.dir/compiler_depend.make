# Empty compiler generated dependencies file for hinpriv_matching.
# This may be replaced when dependencies are built.
