#include "eval/metrics.h"

#include <algorithm>
#include <cstdio>

namespace hinpriv::eval {

AttackMetrics EvaluateAttack(const core::Dehin& dehin,
                             const hin::Graph& target,
                             const std::vector<hin::VertexId>& ground_truth,
                             int max_distance) {
  AttackMetrics metrics;
  metrics.num_targets = target.num_vertices();
  if (metrics.num_targets == 0) return metrics;
  // Mismatched inputs would read ground_truth out of bounds below; report
  // "nothing evaluated" instead of scoring garbage.
  if (ground_truth.size() < target.num_vertices()) {
    std::fprintf(stderr,
                 "EvaluateAttack: ground truth covers %zu of %zu target "
                 "vertices; refusing to evaluate\n",
                 ground_truth.size(), static_cast<size_t>(target.num_vertices()));
    return AttackMetrics{};
  }
  const core::DehinStats stats_before = dehin.stats();
  const double aux_size =
      static_cast<double>(dehin.auxiliary().num_vertices());
  double reduction_sum = 0.0;
  double candidate_sum = 0.0;
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    const auto candidates = dehin.Deanonymize(target, vt, max_distance);
    ++metrics.num_evaluated;
    const hin::VertexId truth = ground_truth[vt];
    const bool contains_truth =
        std::binary_search(candidates.begin(), candidates.end(), truth);
    if (contains_truth) ++metrics.num_containing_truth;
    if (contains_truth && candidates.size() == 1) {
      ++metrics.num_unique_correct;
    }
    reduction_sum += 1.0 - static_cast<double>(candidates.size()) / aux_size;
    candidate_sum += static_cast<double>(candidates.size());
  }
  const double n = static_cast<double>(metrics.num_targets);
  metrics.precision = static_cast<double>(metrics.num_unique_correct) / n;
  metrics.reduction_rate = reduction_sum / n;
  metrics.mean_candidate_count = candidate_sum / n;
  metrics.dehin_stats = dehin.stats() - stats_before;
  return metrics;
}

}  // namespace hinpriv::eval
