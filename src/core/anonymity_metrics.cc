#include "core/anonymity_metrics.h"

#include <unordered_map>
#include <unordered_set>

namespace hinpriv::core {

size_t KAnonymity(std::span<const uint64_t> quasi_identifiers) {
  if (quasi_identifiers.empty()) return 0;
  std::unordered_map<uint64_t, size_t> classes;
  for (uint64_t q : quasi_identifiers) ++classes[q];
  size_t k = SIZE_MAX;
  for (const auto& [value, count] : classes) k = std::min(k, count);
  return k;
}

std::map<size_t, size_t> AnonymitySetHistogram(
    std::span<const uint64_t> quasi_identifiers) {
  std::unordered_map<uint64_t, size_t> classes;
  for (uint64_t q : quasi_identifiers) ++classes[q];
  std::map<size_t, size_t> histogram;
  for (const auto& [value, count] : classes) histogram[count] += count;
  return histogram;
}

util::Result<size_t> LDiversity(std::span<const uint64_t> quasi_identifiers,
                                std::span<const uint64_t> sensitive) {
  if (quasi_identifiers.size() != sensitive.size()) {
    return util::Status::InvalidArgument(
        "quasi-identifier and sensitive columns must have equal length");
  }
  if (quasi_identifiers.empty()) {
    return util::Status::InvalidArgument("empty dataset has no l-diversity");
  }
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> classes;
  for (size_t i = 0; i < quasi_identifiers.size(); ++i) {
    classes[quasi_identifiers[i]].insert(sensitive[i]);
  }
  size_t l = SIZE_MAX;
  for (const auto& [value, distinct] : classes) {
    l = std::min(l, distinct.size());
  }
  return l;
}

}  // namespace hinpriv::core
