# Empty dependencies file for planted_target_test.
# This may be replaced when dependencies are built.
