# Empty compiler generated dependencies file for hinpriv_synth.
# This may be replaced when dependencies are built.
