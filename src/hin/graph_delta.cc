#include "hin/graph_delta.h"

#include <fstream>
#include <ostream>

#include "util/string_util.h"

namespace hinpriv::hin {

namespace {

constexpr char kMagic[] = "hinpriv-delta";
constexpr int kVersion = 1;

// Reads the next non-empty line; returns IoError at end of stream.
util::Status NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const std::string_view trimmed = util::Trim(*line);
    if (!trimmed.empty()) {
      *line = std::string(trimmed);
      return util::Status::OK();
    }
  }
  return util::Status::IoError("unexpected end of delta stream");
}

util::Result<std::vector<std::string_view>> ExpectFields(
    const std::string& line, size_t min_fields) {
  auto fields = util::Split(line, ' ');
  if (fields.size() < min_fields) {
    return util::Status::Corruption("malformed delta line: '" + line + "'");
  }
  return fields;
}

// Parses a section header "<keyword> <count>" and returns the count.
util::Result<uint64_t> SectionCount(std::istream& is, const char* keyword) {
  std::string line;
  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  auto fields = ExpectFields(line, 2);
  if (!fields.ok()) return fields.status();
  if (fields.value()[0] != keyword) {
    return util::Status::Corruption(std::string("expected '") + keyword +
                                    "' section, got: '" + line + "'");
  }
  return util::ParseUint64(fields.value()[1]);
}

}  // namespace

util::Status ValidateDelta(const Graph& graph, const GraphDelta& delta) {
  const NetworkSchema& schema = graph.schema();
  if (delta.base_num_vertices != graph.num_vertices()) {
    return util::Status::FailedPrecondition(
        "delta base vertex count " + std::to_string(delta.base_num_vertices) +
        " does not match graph (" + std::to_string(graph.num_vertices()) + ")");
  }
  const size_t base_n = delta.base_num_vertices;
  const size_t grown_n = base_n + delta.new_vertices.size();

  for (const GraphDelta::NewVertex& nv : delta.new_vertices) {
    if (nv.type >= schema.num_entity_types()) {
      return util::Status::InvalidArgument("new vertex entity type out of range");
    }
    if (nv.attrs.size() != schema.entity_type(nv.type).attributes.size()) {
      return util::Status::InvalidArgument(
          "new vertex attribute count mismatch for entity type '" +
          schema.entity_type(nv.type).name + "'");
    }
  }

  for (const GraphDelta::AttrBump& bump : delta.attr_bumps) {
    if (bump.v >= base_n) {
      return util::Status::InvalidArgument(
          "attr bump targets a non-base vertex " + std::to_string(bump.v));
    }
    const EntityTypeId t = graph.entity_type(bump.v);
    const auto& attrs = schema.entity_type(t).attributes;
    if (bump.attr >= attrs.size()) {
      return util::Status::InvalidArgument("attr bump attribute out of range");
    }
    if (!attrs[bump.attr].growable) {
      return util::Status::InvalidArgument(
          "attr bump on non-growable attribute '" + attrs[bump.attr].name +
          "' — growth is monotone on growable attributes only");
    }
    if (bump.delta <= 0) {
      return util::Status::InvalidArgument(
          "attr bump delta must be positive (monotone growth)");
    }
  }

  auto type_of = [&](VertexId v) -> EntityTypeId {
    return v < base_n ? graph.entity_type(v)
                      : delta.new_vertices[v - base_n].type;
  };
  for (const GraphDelta::EdgeAdd& e : delta.edge_adds) {
    if (e.link >= schema.num_link_types()) {
      return util::Status::InvalidArgument("edge add link type out of range");
    }
    if (e.src >= grown_n || e.dst >= grown_n) {
      return util::Status::InvalidArgument("edge add endpoint out of range");
    }
    if (e.strength == 0) {
      return util::Status::InvalidArgument("edge add strength must be >= 1");
    }
    const LinkTypeDef& def = schema.link_type(e.link);
    if (type_of(e.src) != def.src || type_of(e.dst) != def.dst) {
      return util::Status::InvalidArgument(
          "edge add endpoints violate link type '" + def.name + "'");
    }
    if (e.src == e.dst && !def.allows_self_link) {
      return util::Status::InvalidArgument("self-link not allowed for '" +
                                           def.name + "'");
    }
  }
  return util::Status::OK();
}

util::Status SaveDeltaStream(const std::vector<GraphDelta>& deltas,
                             std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  for (const GraphDelta& d : deltas) {
    os << "batch " << d.base_num_vertices << '\n';
    os << "new_vertices " << d.new_vertices.size() << '\n';
    for (const auto& nv : d.new_vertices) {
      os << nv.type;
      for (AttrValue a : nv.attrs) os << ' ' << a;
      os << '\n';
    }
    os << "attr_bumps " << d.attr_bumps.size() << '\n';
    for (const auto& b : d.attr_bumps) {
      os << b.v << ' ' << b.attr << ' ' << b.delta << '\n';
    }
    os << "edge_adds " << d.edge_adds.size() << '\n';
    for (const auto& e : d.edge_adds) {
      os << e.link << ' ' << e.src << ' ' << e.dst << ' ' << e.strength
         << '\n';
    }
    os << "end\n";
  }
  os << "done\n";
  if (!os) return util::Status::IoError("write failure while saving deltas");
  return util::Status::OK();
}

util::Status SaveDeltaStreamToFile(const std::vector<GraphDelta>& deltas,
                                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return SaveDeltaStream(deltas, out);
}

util::Result<std::vector<GraphDelta>> LoadDeltaStream(std::istream& is) {
  std::string line;
  HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
  {
    auto fields = ExpectFields(line, 2);
    if (!fields.ok()) return fields.status();
    if (fields.value()[0] != kMagic) {
      return util::Status::Corruption("bad magic: expected 'hinpriv-delta'");
    }
    auto version = util::ParseInt64(fields.value()[1]);
    if (!version.ok() || version.value() != kVersion) {
      return util::Status::Corruption("unsupported delta format version");
    }
  }

  std::vector<GraphDelta> deltas;
  while (true) {
    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    if (line == "done") break;
    auto fields = ExpectFields(line, 2);
    if (!fields.ok()) return fields.status();
    if (fields.value()[0] != "batch") {
      return util::Status::Corruption("expected 'batch' or 'done', got: '" +
                                      line + "'");
    }
    auto base_n = util::ParseUint64(fields.value()[1]);
    if (!base_n.ok()) return base_n.status();

    GraphDelta d;
    d.base_num_vertices = base_n.value();

    auto num_new = SectionCount(is, "new_vertices");
    if (!num_new.ok()) return num_new.status();
    d.new_vertices.reserve(num_new.value());
    for (uint64_t i = 0; i < num_new.value(); ++i) {
      HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
      auto row = ExpectFields(line, 1);
      if (!row.ok()) return row.status();
      GraphDelta::NewVertex nv;
      auto type = util::ParseUint64(row.value()[0]);
      if (!type.ok()) return type.status();
      nv.type = static_cast<EntityTypeId>(type.value());
      nv.attrs.reserve(row.value().size() - 1);
      for (size_t f = 1; f < row.value().size(); ++f) {
        auto value = util::ParseInt64(row.value()[f]);
        if (!value.ok()) return value.status();
        nv.attrs.push_back(static_cast<AttrValue>(value.value()));
      }
      d.new_vertices.push_back(std::move(nv));
    }

    auto num_bumps = SectionCount(is, "attr_bumps");
    if (!num_bumps.ok()) return num_bumps.status();
    d.attr_bumps.reserve(num_bumps.value());
    for (uint64_t i = 0; i < num_bumps.value(); ++i) {
      HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
      auto row = ExpectFields(line, 3);
      if (!row.ok()) return row.status();
      auto v = util::ParseUint64(row.value()[0]);
      auto attr = util::ParseUint64(row.value()[1]);
      auto delta = util::ParseInt64(row.value()[2]);
      for (const auto* s : {&v, &attr}) {
        if (!s->ok()) return s->status();
      }
      if (!delta.ok()) return delta.status();
      d.attr_bumps.push_back(
          GraphDelta::AttrBump{static_cast<VertexId>(v.value()),
                               static_cast<AttributeId>(attr.value()),
                               static_cast<AttrValue>(delta.value())});
    }

    auto num_edges = SectionCount(is, "edge_adds");
    if (!num_edges.ok()) return num_edges.status();
    d.edge_adds.reserve(num_edges.value());
    for (uint64_t i = 0; i < num_edges.value(); ++i) {
      HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
      auto row = ExpectFields(line, 4);
      if (!row.ok()) return row.status();
      auto lt = util::ParseUint64(row.value()[0]);
      auto src = util::ParseUint64(row.value()[1]);
      auto dst = util::ParseUint64(row.value()[2]);
      auto strength = util::ParseUint64(row.value()[3]);
      for (const auto* s : {&lt, &src, &dst, &strength}) {
        if (!s->ok()) return s->status();
      }
      d.edge_adds.push_back(
          GraphDelta::EdgeAdd{static_cast<LinkTypeId>(lt.value()),
                              static_cast<VertexId>(src.value()),
                              static_cast<VertexId>(dst.value()),
                              static_cast<Strength>(strength.value())});
    }

    HINPRIV_RETURN_IF_ERROR(NextLine(is, &line));
    if (line != "end") {
      return util::Status::Corruption("missing 'end' batch terminator");
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

util::Result<std::vector<GraphDelta>> LoadDeltaStreamFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return LoadDeltaStream(in);
}

}  // namespace hinpriv::hin
