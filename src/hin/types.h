#ifndef HINPRIV_HIN_TYPES_H_
#define HINPRIV_HIN_TYPES_H_

#include <cstdint>
#include <limits>

namespace hinpriv::hin {

// Vertex (entity) identifier within one Graph. 32 bits comfortably covers
// the paper's 2.3M-user network and the multi-entity full network.
using VertexId = uint32_t;
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// Entity type (User, Tweet, Comment, ...) and link type (follow, mention,
// retweet, comment, post, ...) identifiers within one NetworkSchema.
using EntityTypeId = uint16_t;
using LinkTypeId = uint16_t;
inline constexpr EntityTypeId kInvalidEntityType =
    std::numeric_limits<EntityTypeId>::max();
inline constexpr LinkTypeId kInvalidLinkType =
    std::numeric_limits<LinkTypeId>::max();

// Link strength (e.g., "A mentioned B 5 times"). The paper's short-circuited
// features are non-negative counts.
using Strength = uint32_t;

// Entity attribute value (yob, gender code, tweet count, tag count, ...).
// Signed so sentinel/missing encodings are possible; 32 bits suffices for
// every attribute in the t.qq schema.
using AttrValue = int32_t;

// Index of an attribute within its entity type's attribute list.
using AttributeId = uint16_t;

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_TYPES_H_
