#ifndef HINPRIV_EVAL_EXPERIMENT_H_
#define HINPRIV_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "anon/anonymizer.h"
#include "core/dehin.h"
#include "eval/metrics.h"
#include "hin/graph.h"
#include "synth/planted_target.h"
#include "synth/tqq_config.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::eval {

// A fully assembled Section 6 experiment instance: the adversary's
// auxiliary network, the published (anonymized, optionally DeHIN-
// reconfiguration-stripped) target graph, and the ground-truth mapping used
// only for scoring.
struct ExperimentDataset {
  hin::Graph auxiliary;
  hin::Graph target;
  // ground_truth[target vertex] = true auxiliary vertex.
  std::vector<hin::VertexId> ground_truth;
  // Density of the pre-anonymization target graph (Equation 4).
  double target_density = 0.0;
};

// Pipeline: synthesize base + planted target (synth::BuildPlantedDataset),
// publish through `anonymizer`, optionally apply the Section 6.2
// reconfiguration (strip majority-strength links from the published graph),
// and compose the ground-truth mapping through the anonymizer's
// permutation.
util::Result<ExperimentDataset> BuildExperimentDataset(
    const synth::TqqConfig& config, const synth::PlantedTargetSpec& spec,
    const synth::GrowthConfig& growth, const anon::Anonymizer& anonymizer,
    bool strip_majority, util::Rng* rng);

// One scored attack run plus its wall time: the metrics carry the
// acceleration-layer counters (prefilter rejects, cache hit rate), so a
// bench row can report quality, cost, and the layers' contribution from a
// single call.
struct AttackEvaluation {
  AttackMetrics metrics;
  double seconds = 0.0;
};

// Times EvaluateAttack (num_threads <= 1) or EvaluateAttackParallel over
// the dataset's target graph. The Dehin's shared cache (if enabled)
// persists inside `dehin`, so consecutive calls at increasing distance
// reuse lower-depth sub-results the way one EvaluateAttackParallel run
// shares them across targets.
AttackEvaluation TimedEvaluateAttack(const core::Dehin& dehin,
                                     const ExperimentDataset& dataset,
                                     int max_distance, size_t num_threads = 1);

// All 15 nonempty subsets of the four t.qq link types in the paper's
// Table 1 / Table 3 row order: f, m, c, r, f-m, f-c, f-r, m-c, m-r, c-r,
// f-m-c, f-m-r, f-c-r, m-c-r, f-m-c-r.
struct LinkTypeSubset {
  std::string label;
  std::vector<hin::LinkTypeId> link_types;
};
std::vector<LinkTypeSubset> TqqLinkTypeSubsets();

}  // namespace hinpriv::eval

#endif  // HINPRIV_EVAL_EXPERIMENT_H_
