file(REMOVE_RECURSE
  "CMakeFiles/figure8_anonymizers.dir/bench/figure8_anonymizers.cc.o"
  "CMakeFiles/figure8_anonymizers.dir/bench/figure8_anonymizers.cc.o.d"
  "bench/figure8_anonymizers"
  "bench/figure8_anonymizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_anonymizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
