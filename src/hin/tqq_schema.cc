#include "hin/tqq_schema.h"

#include <cassert>

namespace hinpriv::hin {

NetworkSchema TqqFullSchema() {
  NetworkSchema schema;
  const EntityTypeId user = schema.AddEntityType(kUserType);
  const EntityTypeId tweet = schema.AddEntityType(kTweetType);
  const EntityTypeId comment = schema.AddEntityType(kCommentType);
  const EntityTypeId item = schema.AddEntityType(kItemType);

  schema.AddAttribute(user, kAttrGender, /*growable=*/false);
  schema.AddAttribute(user, kAttrYob, /*growable=*/false);
  schema.AddAttribute(user, kAttrTweetCount, /*growable=*/true);
  schema.AddAttribute(user, kAttrTagCount, /*growable=*/false);

  // Authorship.
  schema.AddLinkType("post_tweet", user, tweet, /*has_strength=*/false,
                     /*growable_strength=*/false, /*allows_self_link=*/false);
  schema.AddLinkType("post_comment", user, comment, false, false, false);
  // Mentions inside tweets and inside comments (Figure 1).
  schema.AddLinkType("mention_in_tweet", tweet, user, false, false, false);
  schema.AddLinkType("mention_in_comment", comment, user, false, false,
                     false);
  // A tweet retweeting another tweet.
  schema.AddLinkType("retweet_of", tweet, tweet, false, false, false);
  // A comment on a tweet or on another comment.
  schema.AddLinkType("comment_on_tweet", comment, tweet, false, false, false);
  schema.AddLinkType("comment_on_comment", comment, comment, false, false,
                     false);
  // Direct user-user follow.
  schema.AddLinkType(kLinkFollow, user, user, false, false, false);
  // Recommendation preference log (accept / reject); the sensitive payload
  // of the motivating example, not used for matching.
  schema.AddLinkType("rec_accept", user, item, false, false, false);
  schema.AddLinkType("rec_reject", user, item, false, false, false);
  return schema;
}

TargetSchemaSpec TqqTargetSpec(const NetworkSchema& full) {
  const EntityTypeId user = full.FindEntityType(kUserType);
  assert(user != kInvalidEntityType);
  const LinkTypeId post_tweet = full.FindLinkType("post_tweet");
  const LinkTypeId post_comment = full.FindLinkType("post_comment");
  const LinkTypeId mention_in_tweet = full.FindLinkType("mention_in_tweet");
  const LinkTypeId mention_in_comment =
      full.FindLinkType("mention_in_comment");
  const LinkTypeId retweet_of = full.FindLinkType("retweet_of");
  const LinkTypeId comment_on_tweet = full.FindLinkType("comment_on_tweet");
  const LinkTypeId comment_on_comment =
      full.FindLinkType("comment_on_comment");
  const LinkTypeId follow = full.FindLinkType(kLinkFollow);
  assert(post_tweet != kInvalidLinkType && follow != kInvalidLinkType);

  TargetSchemaSpec spec;
  spec.target_entity = user;

  // user follow path: User --follow--> User (reproduced). The follow link
  // itself is unweighted and treated as non-growable edge-wise; newly
  // *formed* follow links are handled by the link matchers instead.
  TargetLinkDef follow_link;
  follow_link.name = kLinkFollow;
  follow_link.growable_strength = false;
  follow_link.source_paths.push_back(
      MetaPath{"follow", {MetaPathStep{follow, false}}});
  spec.links.push_back(std::move(follow_link));

  // user mention path: User -post-> Tweet -mention-> User, or
  //                    User -post-> Comment -mention-> User.
  // Short-circuited feature: mention strength.
  TargetLinkDef mention_link;
  mention_link.name = kLinkMention;
  mention_link.growable_strength = true;
  mention_link.source_paths.push_back(
      MetaPath{"mention_via_tweet",
               {MetaPathStep{post_tweet, false},
                MetaPathStep{mention_in_tweet, false}}});
  mention_link.source_paths.push_back(
      MetaPath{"mention_via_comment",
               {MetaPathStep{post_comment, false},
                MetaPathStep{mention_in_comment, false}}});
  spec.links.push_back(std::move(mention_link));

  // user retweet path:
  //   User -post-> Tweet -retweet-> Tweet -posted_by-> User
  // ("posted_by" is the reverse traversal of post_tweet).
  // Short-circuited feature: retweet strength.
  TargetLinkDef retweet_link;
  retweet_link.name = kLinkRetweet;
  retweet_link.growable_strength = true;
  retweet_link.source_paths.push_back(
      MetaPath{"retweet",
               {MetaPathStep{post_tweet, false},
                MetaPathStep{retweet_of, false},
                MetaPathStep{post_tweet, true}}});
  spec.links.push_back(std::move(retweet_link));

  // user comment path:
  //   User -post-> Comment -comment-> Tweet -posted_by-> User, or
  //   User -post-> Comment -comment-> Comment -posted_by-> User.
  // Short-circuited feature: comment strength.
  TargetLinkDef comment_link;
  comment_link.name = kLinkComment;
  comment_link.growable_strength = true;
  comment_link.source_paths.push_back(
      MetaPath{"comment_on_tweet",
               {MetaPathStep{post_comment, false},
                MetaPathStep{comment_on_tweet, false},
                MetaPathStep{post_tweet, true}}});
  comment_link.source_paths.push_back(
      MetaPath{"comment_on_comment",
               {MetaPathStep{post_comment, false},
                MetaPathStep{comment_on_comment, false},
                MetaPathStep{post_comment, true}}});
  spec.links.push_back(std::move(comment_link));
  return spec;
}

NetworkSchema TqqTargetSchema() {
  const NetworkSchema full = TqqFullSchema();
  auto projected = ProjectSchema(full, TqqTargetSpec(full));
  assert(projected.ok());
  return std::move(projected).value();
}

}  // namespace hinpriv::hin
