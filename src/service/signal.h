#ifndef HINPRIV_SERVICE_SIGNAL_H_
#define HINPRIV_SERVICE_SIGNAL_H_

#include "util/cancellation.h"

namespace hinpriv::service {

// Process-wide shutdown plumbing shared by the resident service
// (`hinpriv_cli serve`) and the interruptible batch paths (`hinpriv_cli
// attack`): one CancelToken that SIGINT/SIGTERM flip.
//
// The handler only performs an atomic store (async-signal-safe); everything
// that actually winds down — draining the request queue, stopping at a
// batch boundary, flushing telemetry — happens on normal threads polling
// the token.
util::CancelToken& ShutdownToken();

// Installs SIGINT + SIGTERM handlers that Cancel() the ShutdownToken().
// Idempotent. A second signal after the first falls back to the default
// disposition, so a hung drain can still be killed with a repeat Ctrl-C.
void InstallShutdownSignalHandlers();

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_SIGNAL_H_
