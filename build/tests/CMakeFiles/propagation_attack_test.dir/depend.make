# Empty dependencies file for propagation_attack_test.
# This may be replaced when dependencies are built.
