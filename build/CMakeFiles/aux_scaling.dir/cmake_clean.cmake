file(REMOVE_RECURSE
  "CMakeFiles/aux_scaling.dir/bench/aux_scaling.cc.o"
  "CMakeFiles/aux_scaling.dir/bench/aux_scaling.cc.o.d"
  "bench/aux_scaling"
  "bench/aux_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aux_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
