#include "baselines/clique_seeds.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/planted_target.h"
#include "util/random.h"

namespace hinpriv::baselines {
namespace {

using hin::VertexId;

// Graph with one triangle {0,1,2} (via varied link types/directions), one
// 4-clique {3,4,5,6} on follow links, and pendant vertices 7 and 8.
hin::Graph CliqueyGraph() {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 9);
  EXPECT_TRUE(builder.AddEdge(0, 1, hin::kFollowLink).ok());
  EXPECT_TRUE(builder.AddEdge(2, 1, hin::kMentionLink, 2).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, hin::kCommentLink, 1).ok());
  for (VertexId a = 3; a <= 6; ++a) {
    for (VertexId b = 3; b <= 6; ++b) {
      if (a < b) EXPECT_TRUE(builder.AddEdge(a, b, hin::kFollowLink).ok());
    }
  }
  EXPECT_TRUE(builder.AddEdge(7, 0, hin::kFollowLink).ok());
  // Pendant edges give the triangle members pairwise-distinct degrees
  // (3, 2, 4), which clique-seed alignment requires; they are chosen so no
  // additional triangle appears.
  EXPECT_TRUE(builder.AddEdge(2, 8, hin::kFollowLink).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, hin::kMentionLink, 1).ok());
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(FindCliquesTest, FindsTrianglesAcrossLinkTypesAndDirections) {
  const hin::Graph graph = CliqueyGraph();
  CliqueSeedConfig config;
  config.clique_size = 3;
  auto cliques = FindCliques(graph, config);
  ASSERT_TRUE(cliques.ok());
  // {0,1,2} plus the four triangles inside the 4-clique {3,4,5,6}.
  EXPECT_EQ(cliques.value().size(), 5u);
  EXPECT_NE(std::find(cliques.value().begin(), cliques.value().end(),
                      Clique({0, 1, 2})),
            cliques.value().end());
}

TEST(FindCliquesTest, FindsFourCliques) {
  const hin::Graph graph = CliqueyGraph();
  CliqueSeedConfig config;
  config.clique_size = 4;
  auto cliques = FindCliques(graph, config);
  ASSERT_TRUE(cliques.ok());
  ASSERT_EQ(cliques.value().size(), 1u);
  EXPECT_EQ(cliques.value()[0], Clique({3, 4, 5, 6}));
}

TEST(FindCliquesTest, DegreeCapExcludesHubs) {
  // Triangle {0,1,2} (degree 2 each) next to a 4-clique {3..6} (degree 3
  // each): a cap of 2 keeps only the triangle.
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 7);
  EXPECT_TRUE(builder.AddEdge(0, 1, hin::kFollowLink).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, hin::kFollowLink).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, hin::kFollowLink).ok());
  for (VertexId a = 3; a <= 6; ++a) {
    for (VertexId b = 3; b <= 6; ++b) {
      if (a < b) EXPECT_TRUE(builder.AddEdge(a, b, hin::kFollowLink).ok());
    }
  }
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  CliqueSeedConfig config;
  config.clique_size = 3;
  config.degree_cap = 2;
  auto cliques = FindCliques(graph.value(), config);
  ASSERT_TRUE(cliques.ok());
  ASSERT_EQ(cliques.value().size(), 1u);
  EXPECT_EQ(cliques.value()[0], Clique({0, 1, 2}));
}

TEST(FindCliquesTest, ValidatesConfig) {
  const hin::Graph graph = CliqueyGraph();
  CliqueSeedConfig config;
  config.clique_size = 1;
  EXPECT_FALSE(FindCliques(graph, config).ok());
}

TEST(FindCliquesTest, MaxCliquesCapIsHonored) {
  const hin::Graph graph = CliqueyGraph();
  CliqueSeedConfig config;
  config.clique_size = 3;
  config.max_cliques = 2;
  auto cliques = FindCliques(graph, config);
  ASSERT_TRUE(cliques.ok());
  EXPECT_EQ(cliques.value().size(), 2u);
}

TEST(GenerateCliqueSeedsTest, SelfMatchRecoversIdentity) {
  // target == auxiliary: every unique-signature clique maps onto itself.
  const hin::Graph graph = CliqueyGraph();
  auto seeds = GenerateCliqueSeeds(graph, graph);
  ASSERT_TRUE(seeds.ok());
  EXPECT_GT(seeds.value().matched_cliques, 0u);
  for (const auto& [vt, va] : seeds.value().seeds) {
    EXPECT_EQ(vt, va);
  }
}

TEST(GenerateCliqueSeedsTest, AmbiguousSignaturesProduceNoSeeds) {
  // Two disjoint triangles with identical degree profiles: signatures
  // collide on the target side, so no seeds may be emitted.
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 6);
  for (VertexId base : {0u, 3u}) {
    EXPECT_TRUE(builder.AddEdge(base, base + 1, hin::kFollowLink).ok());
    EXPECT_TRUE(builder.AddEdge(base + 1, base + 2, hin::kFollowLink).ok());
    EXPECT_TRUE(builder.AddEdge(base, base + 2, hin::kFollowLink).ok());
  }
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  auto seeds = GenerateCliqueSeeds(graph.value(), graph.value());
  ASSERT_TRUE(seeds.ok());
  EXPECT_EQ(seeds.value().target_cliques, 2u);
  EXPECT_TRUE(seeds.value().seeds.empty());
}

// The paper reports its 1000-user samples contain no cliques of size over
// 3. Our synthetic samples do contain 4-cliques, but only inside the hub
// cluster (every member degree >= 100) — exactly the cliques that are
// useless as seeds because hub degree signatures are never unique. Below
// the hub cluster there are none at all.
TEST(GenerateCliqueSeedsTest, LargeCliquesOnlyExistAmongHubs) {
  synth::TqqConfig config;
  config.num_users = 10000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 1000;
  spec.density = 0.01;
  util::Rng rng(7);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  CliqueSeedConfig clique_config;
  clique_config.clique_size = 4;
  clique_config.degree_cap = 50;
  auto non_hub = FindCliques(dataset.value().target, clique_config);
  ASSERT_TRUE(non_hub.ok());
  EXPECT_EQ(non_hub.value().size(), 0u);
  clique_config.degree_cap = 500;
  auto with_hubs = FindCliques(dataset.value().target, clique_config);
  ASSERT_TRUE(with_hubs.ok());
  EXPECT_GT(with_hubs.value().size(), non_hub.value().size());
}

TEST(GenerateCliqueSeedsTest, SeedsFeedPropagationCorrectly) {
  // End-to-end in the adversary's best case: no background edges (sample
  // members interact only with each other) and no growth, so target and
  // auxiliary member degrees coincide and signatures are comparable.
  synth::TqqConfig config;
  config.num_users = 5000;
  config.zero_degree_prob = 1.0;  // suppress background interactions
  synth::PlantedTargetSpec spec;
  spec.target_size = 500;
  spec.density = 0.015;
  synth::GrowthConfig no_growth;
  no_growth.new_user_fraction = 0.0;
  no_growth.new_edge_fraction = 0.0;
  no_growth.attr_growth_prob = 0.0;
  no_growth.strength_growth_prob = 0.0;
  util::Rng rng(8);
  auto dataset = synth::BuildPlantedDataset(config, spec, no_growth, &rng);
  ASSERT_TRUE(dataset.ok());
  auto seeds =
      GenerateCliqueSeeds(dataset.value().target, dataset.value().auxiliary);
  ASSERT_TRUE(seeds.ok());
  size_t correct = 0;
  for (const auto& [vt, va] : seeds.value().seeds) {
    if (dataset.value().target_to_aux[vt] == va) ++correct;
  }
  // In this idealized setting the signatures are exact, so seeds are
  // plentiful and overwhelmingly correct.
  ASSERT_FALSE(seeds.value().seeds.empty());
  EXPECT_GE(correct * 10, seeds.value().seeds.size() * 9);
}

// Under realistic conditions — background interactions beyond the sample
// plus auxiliary growth — global auxiliary degrees no longer match
// in-sample target degrees, and clique seeding collapses: the paper's
// Section 2.2 critique of seed-based attacks, reproduced.
TEST(GenerateCliqueSeedsTest, RealisticConditionsStarveSeedDiscovery) {
  synth::TqqConfig config;
  config.num_users = 5000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 500;
  spec.density = 0.015;
  util::Rng rng(9);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  auto seeds =
      GenerateCliqueSeeds(dataset.value().target, dataset.value().auxiliary);
  ASSERT_TRUE(seeds.ok());
  size_t correct = 0;
  for (const auto& [vt, va] : seeds.value().seeds) {
    if (dataset.value().target_to_aux[vt] == va) ++correct;
  }
  // Few-to-no correct seeds survive the degree drift.
  EXPECT_LT(correct, 5u);
}

}  // namespace
}  // namespace hinpriv::baselines
