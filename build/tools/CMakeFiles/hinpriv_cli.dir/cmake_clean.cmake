file(REMOVE_RECURSE
  "CMakeFiles/hinpriv_cli.dir/hinpriv_cli.cc.o"
  "CMakeFiles/hinpriv_cli.dir/hinpriv_cli.cc.o.d"
  "hinpriv_cli"
  "hinpriv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinpriv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
