#include "anon/complete_graph_anonymizer.h"

#include "hin/graph_builder.h"

namespace hinpriv::anon {

namespace {

// Shared core of CGA and VW-CGA: permute ids, then complete every link
// type, with `fake_strength_fn` supplying the strength of each fake link.
template <typename FakeStrengthFn>
util::Result<AnonymizedGraph> CompleteAllLinkTypes(
    const hin::Graph& target, util::Rng* rng,
    FakeStrengthFn&& fake_strength_fn) {
  auto permuted = PermuteVertices(target, rng);
  if (!permuted.ok()) return permuted.status();
  const hin::Graph& base = permuted.value().graph;
  const size_t n = base.num_vertices();

  hin::GraphBuilder builder(base.schema());
  for (hin::VertexId v = 0; v < n; ++v) {
    const hin::EntityTypeId t = base.entity_type(v);
    builder.AddVertex(t);
    const size_t num_attrs = base.num_attributes(t);
    for (hin::AttributeId a = 0; a < num_attrs; ++a) {
      HINPRIV_RETURN_IF_ERROR(
          builder.SetAttribute(v, a, base.attribute(v, a)));
    }
  }
  for (hin::LinkTypeId lt = 0; lt < base.num_link_types(); ++lt) {
    const bool self_links = base.schema().link_type(lt).allows_self_link;
    for (hin::VertexId src = 0; src < n; ++src) {
      // Walk the sorted real adjacency in lockstep with the dst sweep so
      // every real strength is kept and every absent pair gets a fake link.
      const auto real = base.OutEdges(lt, src);
      size_t r = 0;
      for (hin::VertexId dst = 0; dst < n; ++dst) {
        if (dst == src && !self_links) continue;
        hin::Strength strength;
        if (r < real.size() && real[r].neighbor == dst) {
          strength = real[r].strength;
          ++r;
        } else {
          strength = fake_strength_fn();
        }
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(src, dst, lt, strength));
      }
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(),
                         std::move(permuted).value().to_original};
}

}  // namespace

util::Result<AnonymizedGraph> CompleteGraphAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  return CompleteAllLinkTypes(target, rng,
                              [this] { return fake_strength_; });
}

util::Result<AnonymizedGraph> VaryingWeightCgaAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  return CompleteAllLinkTypes(target, rng, [this, rng] {
    return static_cast<hin::Strength>(
        1 + rng->UniformU64(std::max<hin::Strength>(1, max_fake_strength_)));
  });
}

}  // namespace hinpriv::anon
