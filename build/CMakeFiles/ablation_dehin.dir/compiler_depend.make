# Empty compiler generated dependencies file for ablation_dehin.
# This may be replaced when dependencies are built.
