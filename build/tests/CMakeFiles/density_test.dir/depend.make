# Empty dependencies file for density_test.
# This may be replaced when dependencies are built.
