#ifndef HINPRIV_CORE_DOMINANCE_KERNELS_H_
#define HINPRIV_CORE_DOMINANCE_KERNELS_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "hin/types.h"
#include "util/simd.h"

namespace hinpriv::core {

// Runtime-dispatched implementations of the Layer-1 strength-dominance
// compare (NeighborhoodStats::StrengthMultisetDominates) — the hottest loop
// of the DeHIN prefilter, executed once per (target, candidate) pair per
// slot. Each tier implements both semantics:
//
//   * growth-aware: the top-|T| auxiliary strengths must dominate the
//     sorted target strengths element-wise (a tail-aligned `>=` scan over
//     two sorted spans, vectorized with an early-exit movemask);
//   * exact: multiset containment, decided by a merged scan whose
//     skip-ahead over small auxiliary strengths is vectorized.
//
// Every kernel is bit-identical to the scalar reference on all inputs
// (pinned by the differential fuzz suite); selection is therefore purely a
// performance choice, made once at startup from DehinConfig (or forced via
// --dominance-kernel for ablation). Kernels take raw pointers and use
// unaligned loads: spans may start at any offset inside a
// util::kSimdAlignment-aligned arena.

// The user-facing kernel choice. kAuto resolves to the best tier the
// running CPU supports; an explicit tier the CPU lacks degrades to the best
// supported one below it so ablation runs never crash.
enum class DominanceKernel {
  kAuto,
  kScalar,
  kSse2,
  kAvx2,
};

// Shared kernel signature: does a sorted target strength span admit an
// injective strength-compatible assignment into a sorted auxiliary span?
using DominanceFn = bool (*)(const hin::Strength* target, size_t target_size,
                             const hin::Strength* aux, size_t aux_size);

// One resolved tier: both semantics plus the tier's name for logs, stats,
// and the bench JSON ("scalar", "sse2", "avx2").
struct ResolvedDominanceKernel {
  DominanceFn growth_aware = nullptr;
  DominanceFn exact = nullptr;
  const char* name = "scalar";
};

// Resolves `choice` against the running CPU (util::DetectSimdLevel).
ResolvedDominanceKernel ResolveDominanceKernel(DominanceKernel choice);

// Every tier the running CPU supports, scalar first — the differential test
// surface.
std::vector<ResolvedDominanceKernel> SupportedDominanceKernels();

// Parses a --dominance-kernel flag value ("auto", "scalar", "sse2",
// "avx2"); returns false on anything else.
bool ParseDominanceKernel(std::string_view value, DominanceKernel* out);

// The flag spelling of a choice (inverse of ParseDominanceKernel).
const char* DominanceKernelChoiceName(DominanceKernel choice);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_DOMINANCE_KERNELS_H_
