# Empty dependencies file for anonymity_metrics_test.
# This may be replaced when dependencies are built.
