#include "hin/kdd_loader.h"

#include <array>
#include <fstream>
#include <unordered_map>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace hinpriv::hin {

namespace {

util::Result<std::ifstream> OpenForRead(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return in;
}

// Number of tags in a user_profile tags field: ';'-separated ids, where the
// literal "0" means no tags.
AttrValue CountTags(std::string_view field) {
  if (field.empty() || field == "0") return 0;
  AttrValue count = 1;
  for (char c : field) {
    if (c == ';') ++count;
  }
  return count;
}

}  // namespace

util::Result<KddLoadReport> LoadKddCupDataset(const KddCupFiles& files,
                                              const KddLoadOptions& options) {
  GraphBuilder builder(TqqTargetSchema());
  std::unordered_map<int64_t, VertexId> id_map;

  // --- user_profile.txt ----------------------------------------------------
  {
    HINPRIV_SPAN("kdd_load/user_profile");
    auto in = OpenForRead(files.user_profile);
    if (!in.ok()) return in.status();
    std::string line;
    size_t line_no = 0;
    while (std::getline(in.value(), line)) {
      ++line_no;
      const std::string_view trimmed = util::Trim(line);
      if (trimmed.empty()) continue;
      const auto fields = util::Split(trimmed, '\t');
      if (fields.size() != 5) {
        return util::Status::Corruption(
            files.user_profile + ":" + std::to_string(line_no) +
            ": expected 5 tab-separated fields");
      }
      auto user_id = util::ParseInt64(fields[0]);
      auto yob = util::ParseInt64(fields[1]);
      auto gender = util::ParseInt64(fields[2]);
      auto tweets = util::ParseInt64(fields[3]);
      for (const auto* r : {&user_id, &yob, &gender, &tweets}) {
        if (!r->ok()) {
          return util::Status::Corruption(
              files.user_profile + ":" + std::to_string(line_no) + ": " +
              r->status().message());
        }
      }
      if (id_map.contains(user_id.value())) {
        return util::Status::Corruption(
            files.user_profile + ":" + std::to_string(line_no) +
            ": duplicate user id " + std::to_string(user_id.value()));
      }
      const VertexId v = builder.AddVertex(0);
      id_map.emplace(user_id.value(), v);
      HINPRIV_RETURN_IF_ERROR(builder.SetAttribute(
          v, kGenderAttr, static_cast<AttrValue>(gender.value())));
      HINPRIV_RETURN_IF_ERROR(builder.SetAttribute(
          v, kYobAttr, static_cast<AttrValue>(yob.value())));
      HINPRIV_RETURN_IF_ERROR(builder.SetAttribute(
          v, kTweetCountAttr, static_cast<AttrValue>(tweets.value())));
      HINPRIV_RETURN_IF_ERROR(
          builder.SetAttribute(v, kTagCountAttr, CountTags(fields[4])));
    }
  }

  size_t skipped = 0;
  auto resolve = [&](int64_t id) -> VertexId {
    auto it = id_map.find(id);
    return it == id_map.end() ? kInvalidVertex : it->second;
  };

  // --- user_sns.txt (follow) ----------------------------------------------
  {
    HINPRIV_SPAN("kdd_load/user_sns");
    auto in = OpenForRead(files.user_sns);
    if (!in.ok()) return in.status();
    std::string line;
    size_t line_no = 0;
    while (std::getline(in.value(), line)) {
      ++line_no;
      const std::string_view trimmed = util::Trim(line);
      if (trimmed.empty()) continue;
      const auto fields = util::Split(trimmed, '\t');
      if (fields.size() != 2) {
        return util::Status::Corruption(files.user_sns + ":" +
                                        std::to_string(line_no) +
                                        ": expected 2 fields");
      }
      auto follower = util::ParseInt64(fields[0]);
      auto followee = util::ParseInt64(fields[1]);
      if (!follower.ok() || !followee.ok()) {
        return util::Status::Corruption(files.user_sns + ":" +
                                        std::to_string(line_no) +
                                        ": malformed user id");
      }
      const VertexId src = resolve(follower.value());
      const VertexId dst = resolve(followee.value());
      if (src == kInvalidVertex || dst == kInvalidVertex) {
        if (!options.skip_unknown_users) {
          return util::Status::Corruption(files.user_sns + ":" +
                                          std::to_string(line_no) +
                                          ": unknown user id");
        }
        ++skipped;
        continue;
      }
      if (src == dst) {
        ++skipped;  // self-follow rows occur in the wild; drop them
        continue;
      }
      HINPRIV_RETURN_IF_ERROR(builder.AddEdge(src, dst, kFollowLink, 1));
    }
  }

  // --- user_action.txt (mention / retweet / comment strengths) -------------
  {
    HINPRIV_SPAN("kdd_load/user_action");
    auto in = OpenForRead(files.user_action);
    if (!in.ok()) return in.status();
    std::string line;
    size_t line_no = 0;
    while (std::getline(in.value(), line)) {
      ++line_no;
      const std::string_view trimmed = util::Trim(line);
      if (trimmed.empty()) continue;
      const auto fields = util::Split(trimmed, '\t');
      if (fields.size() != 5) {
        return util::Status::Corruption(files.user_action + ":" +
                                        std::to_string(line_no) +
                                        ": expected 5 fields");
      }
      auto src_id = util::ParseInt64(fields[0]);
      auto dst_id = util::ParseInt64(fields[1]);
      auto mentions = util::ParseInt64(fields[2]);
      auto retweets = util::ParseInt64(fields[3]);
      auto comments = util::ParseInt64(fields[4]);
      for (const auto* r : {&src_id, &dst_id, &mentions, &retweets,
                            &comments}) {
        if (!r->ok()) {
          return util::Status::Corruption(files.user_action + ":" +
                                          std::to_string(line_no) + ": " +
                                          r->status().message());
        }
      }
      const VertexId src = resolve(src_id.value());
      const VertexId dst = resolve(dst_id.value());
      if (src == kInvalidVertex || dst == kInvalidVertex) {
        if (!options.skip_unknown_users) {
          return util::Status::Corruption(files.user_action + ":" +
                                          std::to_string(line_no) +
                                          ": unknown user id");
        }
        ++skipped;
        continue;
      }
      if (src == dst) {
        ++skipped;
        continue;
      }
      struct {
        LinkTypeId link;
        int64_t strength;
      } channels[] = {{kMentionLink, mentions.value()},
                      {kRetweetLink, retweets.value()},
                      {kCommentLink, comments.value()}};
      for (const auto& channel : channels) {
        if (channel.strength < 0) {
          return util::Status::Corruption(files.user_action + ":" +
                                          std::to_string(line_no) +
                                          ": negative strength");
        }
        if (channel.strength == 0) continue;
        HINPRIV_RETURN_IF_ERROR(
            builder.AddEdge(src, dst, channel.link,
                            static_cast<Strength>(channel.strength)));
      }
    }
  }

  const size_t num_users = builder.num_vertices();
  HINPRIV_SPAN("kdd_load/build_graph");
  auto graph = std::move(builder).Build();
  if (!graph.ok()) return graph.status();
  return KddLoadReport{std::move(graph).value(), num_users, skipped};
}

util::Status WriteKddCupDataset(const Graph& graph, const KddCupFiles& files) {
  if (graph.schema().num_entity_types() != 1 ||
      graph.num_link_types() != kNumTqqLinkTypes) {
    return util::Status::InvalidArgument(
        "WriteKddCupDataset requires a t.qq target-schema graph");
  }
  {
    std::ofstream out(files.user_profile);
    if (!out) {
      return util::Status::IoError("cannot open for write: " +
                                   files.user_profile);
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      // Synthesize a tags field with tag_count entries (ids are arbitrary
      // in the anonymized release anyway); "0" encodes an empty list.
      const AttrValue tag_count = graph.attribute(v, kTagCountAttr);
      std::string tags = "0";
      if (tag_count > 0) {
        tags.clear();
        for (AttrValue t = 0; t < tag_count; ++t) {
          if (t > 0) tags += ';';
          tags += std::to_string(t + 1);
        }
      }
      out << v << '\t' << graph.attribute(v, kYobAttr) << '\t'
          << graph.attribute(v, kGenderAttr) << '\t'
          << graph.attribute(v, kTweetCountAttr) << '\t' << tags << '\n';
    }
    if (!out) return util::Status::IoError("write failure (user_profile)");
  }
  {
    std::ofstream out(files.user_sns);
    if (!out) {
      return util::Status::IoError("cannot open for write: " + files.user_sns);
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const Edge& e : graph.OutEdges(kFollowLink, v)) {
        out << v << '\t' << e.neighbor << '\n';
      }
    }
    if (!out) return util::Status::IoError("write failure (user_sns)");
  }
  {
    std::ofstream out(files.user_action);
    if (!out) {
      return util::Status::IoError("cannot open for write: " +
                                   files.user_action);
    }
    // One row per (src, dst) pair with any interaction; merge the three
    // strength channels like the released log does.
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      std::unordered_map<VertexId, std::array<Strength, 3>> rows;
      for (const Edge& e : graph.OutEdges(kMentionLink, v)) {
        rows[e.neighbor][0] = e.strength;
      }
      for (const Edge& e : graph.OutEdges(kRetweetLink, v)) {
        rows[e.neighbor][1] = e.strength;
      }
      for (const Edge& e : graph.OutEdges(kCommentLink, v)) {
        rows[e.neighbor][2] = e.strength;
      }
      for (const auto& [dst, strengths] : rows) {
        out << v << '\t' << dst << '\t' << strengths[0] << '\t'
            << strengths[1] << '\t' << strengths[2] << '\n';
      }
    }
    if (!out) return util::Status::IoError("write failure (user_action)");
  }
  return util::Status::OK();
}

}  // namespace hinpriv::hin
