#include "obs/prometheus.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hinpriv::obs {
namespace {

TEST(PrometheusNameTest, ManglesSlashPathsAndSuffixesCounters) {
  EXPECT_EQ(PrometheusName("dehin/index_scans", PrometheusKind::kCounter),
            "hinpriv_dehin_index_scans_total");
  EXPECT_EQ(PrometheusName("service/queue_depth", PrometheusKind::kGauge),
            "hinpriv_service_queue_depth");
  EXPECT_EQ(
      PrometheusName("service/request_latency_us", PrometheusKind::kHistogram),
      "hinpriv_service_request_latency_us");
  EXPECT_EQ(PrometheusName("service/attack_one/d2", PrometheusKind::kCounter),
            "hinpriv_service_attack_one_d2_total");
}

TEST(MetricNameLintTest, AcceptsConventionRejectsViolations) {
  EXPECT_TRUE(IsLintedMetricName("dehin/index_scans"));
  EXPECT_TRUE(IsLintedMetricName("service/attack_one/d0"));
  EXPECT_TRUE(IsLintedMetricName("exec/tasks"));
  EXPECT_TRUE(IsLintedMetricName("a"));
  EXPECT_TRUE(IsLintedMetricName("snake_case_123"));

  EXPECT_FALSE(IsLintedMetricName(""));
  EXPECT_FALSE(IsLintedMetricName("/leading"));
  EXPECT_FALSE(IsLintedMetricName("trailing/"));
  EXPECT_FALSE(IsLintedMetricName("doubled//segment"));
  EXPECT_FALSE(IsLintedMetricName("Upper/case"));
  EXPECT_FALSE(IsLintedMetricName("has space"));
  EXPECT_FALSE(IsLintedMetricName("has-dash"));
  EXPECT_FALSE(IsLintedMetricName("dotted.name"));
}

TEST(MetricNameLintTest, AdmitsExactlyOneBoundedShardLabel) {
  EXPECT_TRUE(IsLintedMetricName("service/requests_received|shard=0"));
  EXPECT_TRUE(IsLintedMetricName("service/requests_received|shard=7"));
  EXPECT_TRUE(IsLintedMetricName("service/requests_received|shard=63"));

  EXPECT_FALSE(IsLintedMetricName("service/requests_received|shard=64"));
  EXPECT_FALSE(IsLintedMetricName("service/requests_received|shard=01"));
  EXPECT_FALSE(IsLintedMetricName("service/requests_received|shard="));
  EXPECT_FALSE(IsLintedMetricName("service/requests_received|shard=-1"));
  EXPECT_FALSE(IsLintedMetricName("service/requests_received|replica=1"));
  EXPECT_FALSE(IsLintedMetricName("service/x|shard=1|shard=2"));
  EXPECT_FALSE(IsLintedMetricName("|shard=1"));
  EXPECT_FALSE(IsLintedMetricName("Upper/case|shard=1"));
}

TEST(ShardMetricNameTest, RoundTripsThroughSplit) {
  EXPECT_EQ(ShardMetricName("service/requests_received", 3),
            "service/requests_received|shard=3");
  EXPECT_EQ(ShardMetricName("service/requests_received", -1),
            "service/requests_received");
  // Out-of-range values clamp instead of minting unbounded labels.
  EXPECT_EQ(ShardMetricName("service/x", kMaxShardLabel + 5),
            "service/x|shard=" + std::to_string(kMaxShardLabel - 1));

  SplitMetricName split = SplitShardLabel("service/requests_received|shard=3");
  EXPECT_EQ(split.base, "service/requests_received");
  EXPECT_EQ(split.shard, 3);
  split = SplitShardLabel("service/requests_received");
  EXPECT_EQ(split.base, "service/requests_received");
  EXPECT_EQ(split.shard, -1);
  // A malformed suffix is not a label; the whole string is the base.
  split = SplitShardLabel("service/x|shard=99");
  EXPECT_EQ(split.base, "service/x|shard=99");
  EXPECT_EQ(split.shard, -1);
}

// The exposition output is deterministic (name-sorted snapshot, fixed
// formatting), so a golden-text comparison pins the exact format scrape
// pipelines will parse.
TEST(PrometheusTextTest, GoldenExport) {
  MetricsRegistry registry;
  registry.GetCounter("dehin/index_scans")->Add(42);
  registry.GetGauge("service/queue_depth")->Set(3.5);
  Histogram* latency = registry.GetHistogram("service/request_latency_us");
  latency->Record(0);  // bucket 0 (le 0)
  latency->Record(1);  // bucket 1 (le 1)
  latency->Record(5);  // bucket 3 (le 7)
  latency->Record(5);

  const std::string expected =
      "# TYPE hinpriv_dehin_index_scans_total counter\n"
      "hinpriv_dehin_index_scans_total 42\n"
      "# TYPE hinpriv_service_queue_depth gauge\n"
      "hinpriv_service_queue_depth 3.5\n"
      "# TYPE hinpriv_service_request_latency_us histogram\n"
      "hinpriv_service_request_latency_us_bucket{le=\"0\"} 1\n"
      "hinpriv_service_request_latency_us_bucket{le=\"1\"} 2\n"
      "hinpriv_service_request_latency_us_bucket{le=\"3\"} 2\n"
      "hinpriv_service_request_latency_us_bucket{le=\"7\"} 4\n"
      "hinpriv_service_request_latency_us_bucket{le=\"+Inf\"} 4\n"
      "hinpriv_service_request_latency_us_sum 11\n"
      "hinpriv_service_request_latency_us_count 4\n";
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), expected);
}

// Shard-labeled instruments export as one base metric with a real
// `shard="N"` label — one TYPE line shared across the labeled series —
// rather than M mangled metric names.
TEST(PrometheusTextTest, ShardLabelGoldenExport) {
  MetricsRegistry registry;
  registry.GetCounter("service/requests_received")->Add(3);
  registry.GetCounter("service/requests_received|shard=0")->Add(1);
  registry.GetCounter("service/requests_received|shard=1")->Add(2);
  registry.GetGauge("service/queue_depth|shard=1")->Set(4);
  Histogram* latency =
      registry.GetHistogram("service/request_latency_us|shard=0");
  latency->Record(1);
  latency->Record(5);

  const std::string expected =
      "# TYPE hinpriv_service_requests_received_total counter\n"
      "hinpriv_service_requests_received_total 3\n"
      "hinpriv_service_requests_received_total{shard=\"0\"} 1\n"
      "hinpriv_service_requests_received_total{shard=\"1\"} 2\n"
      "# TYPE hinpriv_service_queue_depth gauge\n"
      "hinpriv_service_queue_depth{shard=\"1\"} 4\n"
      "# TYPE hinpriv_service_request_latency_us histogram\n"
      "hinpriv_service_request_latency_us_bucket{le=\"0\",shard=\"0\"} 0\n"
      "hinpriv_service_request_latency_us_bucket{le=\"1\",shard=\"0\"} 1\n"
      "hinpriv_service_request_latency_us_bucket{le=\"3\",shard=\"0\"} 1\n"
      "hinpriv_service_request_latency_us_bucket{le=\"7\",shard=\"0\"} 2\n"
      "hinpriv_service_request_latency_us_bucket{le=\"+Inf\",shard=\"0\"} 2\n"
      "hinpriv_service_request_latency_us_sum{shard=\"0\"} 6\n"
      "hinpriv_service_request_latency_us_count{shard=\"0\"} 2\n";
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), expected);
}

TEST(PrometheusTextTest, EmptyHistogramEmitsOnlyInfBucket) {
  MetricsRegistry registry;
  registry.GetHistogram("test/empty");
  const std::string expected =
      "# TYPE hinpriv_test_empty histogram\n"
      "hinpriv_test_empty_bucket{le=\"+Inf\"} 0\n"
      "hinpriv_test_empty_sum 0\n"
      "hinpriv_test_empty_count 0\n";
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), expected);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/h");
  for (uint64_t v = 0; v < 100; ++v) h->Record(v);
  const std::string text = ToPrometheusText(registry.Snapshot());
  // Cumulative le="63" bucket holds all 64 samples in [0, 63].
  EXPECT_NE(text.find("hinpriv_test_h_bucket{le=\"63\"} 64\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hinpriv_test_h_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos)
      << text;
}

// Every instrument the process actually registers must follow the naming
// convention — this is the lint that keeps future metrics exportable
// without mangling surprises.
TEST(MetricNameLintTest, GlobalRegistryIsFullyLinted) {
  // Touch the obs-layer instruments this library registers lazily.
  StartTracing();
  SetTraceBufferCapacity(2);
  { HINPRIV_SPAN("lint_a"); }
  { HINPRIV_SPAN("lint_b"); }
  { HINPRIV_SPAN("lint_c"); }
  StopTracing();
  SetTraceBufferCapacity(1 << 16);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const CounterSnapshot& counter : snapshot.counters) {
    EXPECT_TRUE(IsLintedMetricName(counter.name)) << counter.name;
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    EXPECT_TRUE(IsLintedMetricName(gauge.name)) << gauge.name;
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    EXPECT_TRUE(IsLintedMetricName(histogram.name)) << histogram.name;
  }
}

}  // namespace
}  // namespace hinpriv::obs
