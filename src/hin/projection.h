#ifndef HINPRIV_HIN_PROJECTION_H_
#define HINPRIV_HIN_PROJECTION_H_

#include <vector>

#include "hin/graph.h"
#include "hin/schema.h"
#include "util/status.h"

namespace hinpriv::hin {

// Instance-level projection of a full heterogeneous information network
// onto its target network schema (Definitions 4-5 and Section 3 of the
// paper): each target link type is materialized by short-circuiting its
// meta paths. The strength of a projected edge u -> w is the number of
// path instances from u to w along any of the link's source meta paths
// (e.g., mention strength = number of mentions via tweets or comments);
// multi-edges folded into strengths multiply along a path. Length-1 paths
// are reproduced, carrying the original edge weight.
struct ProjectionResult {
  // Single-entity-type graph over the target schema produced by
  // ProjectSchema(schema, spec).
  Graph graph;
  // to_original[projected-vertex-id] = vertex id in the full graph.
  std::vector<VertexId> to_original;
};

util::Result<ProjectionResult> ProjectGraph(const Graph& full,
                                            const TargetSchemaSpec& spec);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_PROJECTION_H_
