#include "matching/bipartite_graph.h"

#include <cassert>

namespace hinpriv::matching {

void BipartiteGraph::AddEdge(uint32_t left, uint32_t right) {
  assert(left < adjacency_.size());
  assert(right < num_right_);
  adjacency_[left].push_back(right);
  ++num_edges_;
}

}  // namespace hinpriv::matching
