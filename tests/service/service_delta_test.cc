// End-to-end tests of the apply_delta verb: a real Server on a loopback
// socket absorbing growth batches from a hinpriv-delta stream file while
// clients query it. The suite name contains "Service" so the CI TSan job
// picks it up — the concurrency test below is exactly the race the
// warm-state lock exists for.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "core/matchers.h"
#include "hin/graph_builder.h"
#include "hin/graph_delta.h"
#include "hin/snapshot.h"
#include "service/client.h"
#include "service/json.h"
#include "service/server.h"
#include "synth/growth.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::service {
namespace {

struct TestNetwork {
  hin::Graph aux;
  hin::Graph anonymized;
  std::vector<hin::VertexId> to_original;
};

TestNetwork MakeNetwork(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto aux = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(aux.ok());
  anon::StrengthBucketingAnonymizer anonymizer(10);
  auto published = anonymizer.Anonymize(aux.value(), &rng);
  EXPECT_TRUE(published.ok());
  return TestNetwork{std::move(aux).value(),
                     std::move(published.value().graph),
                     std::move(published.value().to_original)};
}

core::DehinConfig MakeDehinConfig() {
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  config.max_distance = 1;
  return config;
}

hin::Graph HeapCopy(const hin::Graph& source) {
  hin::GraphBuilder builder(source.schema());
  EXPECT_TRUE(hin::CopyVerticesWithAttributes(source, &builder).ok());
  EXPECT_TRUE(hin::CopyEdges(source, &builder).ok());
  auto copy = std::move(builder).Build();
  EXPECT_TRUE(copy.ok());
  return std::move(copy).value();
}

// Samples `batches` chained growth deltas against a copy of `base` and
// writes them as a delta stream to a per-test temp file. `grown` is the
// copy with every batch applied, for oracle checks.
struct DeltaStream {
  std::string path;
  hin::Graph grown;
};

DeltaStream WriteDeltaStream(const hin::Graph& base, size_t batches,
                             uint64_t seed) {
  hin::Graph preview = HeapCopy(base);
  synth::GrowthConfig growth;
  growth.new_user_fraction = 0.02;
  growth.new_edge_fraction = 0.01;
  util::Rng rng(seed);
  std::vector<hin::GraphDelta> stream;
  for (size_t b = 0; b < batches; ++b) {
    auto delta =
        synth::SampleGrowthDelta(preview, growth, synth::TqqConfig{}, &rng);
    EXPECT_TRUE(delta.ok());
    EXPECT_TRUE(
        hin::GraphBuilder::ApplyDelta(&preview, delta.value()).ok());
    stream.push_back(std::move(delta).value());
  }
  const std::string path =
      testing::TempDir() + "/hinpriv_service_delta_" +
      testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".deltas";
  EXPECT_TRUE(hin::SaveDeltaStreamToFile(stream, path).ok());
  return DeltaStream{path, std::move(preview)};
}

TEST(ServiceDeltaTest, ApplyDeltaGrowsAuxAndAnswersTrackFreshAttack) {
  TestNetwork net = MakeNetwork(100, 31);
  DeltaStream stream = WriteDeltaStream(net.aux, 2, 32);
  const std::string& path = stream.path;
  const hin::Graph& grown = stream.grown;

  ServerConfig config;
  config.num_workers = 2;
  config.queue_capacity = 32;
  config.default_max_distance = 1;
  config.dehin = MakeDehinConfig();
  config.mutable_aux = &net.aux;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Prime the warm state so the delta has live cache entries to retire.
  for (hin::VertexId v = 0; v < 8; ++v) {
    auto warmup = client.value().AttackOne(v, 1);
    ASSERT_TRUE(warmup.ok());
    ASSERT_EQ(warmup.value().code, ResponseCode::kOk);
  }

  auto response = client.value().ApplyDelta(path);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().code, ResponseCode::kOk)
      << response.value().error;
  const JsonValue& result = response.value().result;
  EXPECT_EQ(result.GetInt("batches_applied", -1), 2);
  EXPECT_EQ(result.GetInt("num_vertices", -1),
            static_cast<int64_t>(grown.num_vertices()));
  EXPECT_EQ(result.GetInt("num_edges", -1),
            static_cast<int64_t>(grown.num_edges()));
  EXPECT_EQ(net.aux.num_vertices(), grown.num_vertices());
  EXPECT_EQ(net.aux.num_edges(), grown.num_edges());

  // Served answers after the delta must equal a cold attack over the same
  // grown auxiliary — the service counterpart of the bench's differential
  // guard.
  core::Dehin fresh(&grown, MakeDehinConfig());
  for (hin::VertexId v = 0; v < net.anonymized.num_vertices(); ++v) {
    auto served = client.value().AttackOne(v, 1);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().code, ResponseCode::kOk);
    const auto expected = fresh.Deanonymize(net.anonymized, v, 1);
    const JsonValue* candidates = served.value().result.Find("candidates");
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->size(), expected.size()) << "vertex " << v;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(candidates->at(i).AsInt(-1),
                static_cast<int64_t>(expected[i]));
    }
  }

  server.Shutdown();
  std::remove(path.c_str());
}

TEST(ServiceDeltaTest, RejectedWithoutMutableAux) {
  TestNetwork net = MakeNetwork(60, 33);
  const std::string path = WriteDeltaStream(net.aux, 1, 34).path;

  ServerConfig config;
  config.num_workers = 1;
  config.dehin = MakeDehinConfig();
  // mutable_aux left null: the operator did not opt the server into
  // streaming growth, so the verb must refuse rather than mutate.
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client.value().ApplyDelta(path);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, ResponseCode::kInvalidRequest);
  server.Shutdown();
  std::remove(path.c_str());
}

TEST(ServiceDeltaTest, RejectedOnMappedSnapshot) {
  TestNetwork net = MakeNetwork(60, 35);
  const std::string snap_path =
      testing::TempDir() + "/hinpriv_service_delta_mapped.snap";
  ASSERT_TRUE(hin::SaveGraphSnapshot(net.aux, snap_path).ok());
  auto mapped = hin::LoadGraphSnapshot(snap_path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped.value().is_mapped());
  const std::string path = WriteDeltaStream(net.aux, 1, 36).path;

  ServerConfig config;
  config.num_workers = 1;
  config.dehin = MakeDehinConfig();
  config.mutable_aux = &mapped.value();
  Server server(&net.anonymized, &mapped.value(), config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client.value().ApplyDelta(path);
  ASSERT_TRUE(response.ok());
  // The arena is read-only mmap'd: growth needs the heap path.
  EXPECT_EQ(response.value().code, ResponseCode::kInvalidRequest);
  server.Shutdown();
  std::remove(path.c_str());
  std::remove(snap_path.c_str());
}

TEST(ServiceDeltaTest, RejectedOnUnreadableStream) {
  TestNetwork net = MakeNetwork(60, 37);
  ServerConfig config;
  config.num_workers = 1;
  config.dehin = MakeDehinConfig();
  config.mutable_aux = &net.aux;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client.value().ApplyDelta(testing::TempDir() +
                                            "/does_not_exist.deltas");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, ResponseCode::kInvalidRequest);
  server.Shutdown();
}

// The race the warm-state lock exists for: apply_delta mutating the aux
// graph + Dehin warm state while attack_one queries are in flight on the
// worker pool. Under TSan this is the proof there is no unsynchronized
// access; under any build the queries must all complete with kOk (batch
// boundaries are the only commit points, so no query ever observes a
// half-applied batch).
TEST(ServiceDeltaTest, ApplyDeltaRacesInFlightQueries) {
  TestNetwork net = MakeNetwork(80, 38);
  const std::string path = WriteDeltaStream(net.aux, 4, 39).path;

  ServerConfig config;
  config.num_workers = 3;
  config.queue_capacity = 64;
  config.default_max_distance = 1;
  config.dehin = MakeDehinConfig();
  config.mutable_aux = &net.aux;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kQueryThreads = 2;
  std::vector<std::string> failures(kQueryThreads + 1);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    auto client = Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      failures[0] = "connect: " + client.status().ToString();
      return;
    }
    auto response = client.value().ApplyDelta(path);
    if (!response.ok() || response.value().code != ResponseCode::kOk) {
      failures[0] = "apply_delta failed";
    }
  });
  for (size_t t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[t + 1] = "connect: " + client.status().ToString();
        return;
      }
      for (size_t round = 0; round < 3; ++round) {
        for (hin::VertexId v = static_cast<hin::VertexId>(t);
             v < net.anonymized.num_vertices();
             v += static_cast<hin::VertexId>(kQueryThreads)) {
          auto response = client.value().AttackOne(v, 1);
          if (!response.ok() ||
              response.value().code != ResponseCode::kOk) {
            failures[t + 1] =
                "attack_one(" + std::to_string(v) + ") failed mid-delta";
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }

  // Post-race differential check against a cold attack on the grown graph.
  core::Dehin fresh(&net.aux, MakeDehinConfig());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (hin::VertexId v = 0; v < 16; ++v) {
    auto served = client.value().AttackOne(v, 1);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().code, ResponseCode::kOk);
    const auto expected = fresh.Deanonymize(net.anonymized, v, 1);
    const JsonValue* candidates = served.value().result.Find("candidates");
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->size(), expected.size()) << "vertex " << v;
  }
  server.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hinpriv::service
