// Incremental warm-state maintenance under growth deltas, component by
// component: CandidateIndex::ApplyDelta must reproduce a from-scratch
// rebuild's bucket order exactly, NeighborhoodStats::ApplyDelta must serve
// the same sorted strength spans as a fresh build (through the patch table
// or after compaction), and MatchCache epochs must invalidate exactly the
// dirty (depth, vertex) entries while untouched entries keep hitting.

#include <vector>

#include <gtest/gtest.h>

#include "core/candidate_index.h"
#include "core/match_cache.h"
#include "core/matchers.h"
#include "core/neighborhood_stats.h"
#include "hin/graph.h"
#include "hin/graph_builder.h"
#include "hin/graph_delta.h"
#include "hin/tqq_schema.h"
#include "synth/growth.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

hin::Graph MakeAux(size_t users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

// Applies `batches` sampled growth deltas to `aux`, invoking `check` after
// every batch with the delta just applied.
template <typename Check>
void DriveBatches(hin::Graph* aux, size_t batches, uint64_t seed,
                  const synth::GrowthConfig& growth, Check&& check) {
  util::Rng rng(seed);
  for (size_t b = 0; b < batches; ++b) {
    auto delta =
        synth::SampleGrowthDelta(*aux, growth, synth::TqqConfig{}, &rng);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(hin::GraphBuilder::ApplyDelta(aux, delta.value()).ok());
    check(delta.value());
  }
}

TEST(WarmStateDeltaTest, CandidateIndexOrderIdenticalToRebuild) {
  hin::Graph aux = MakeAux(600, 17);
  const MatchOptions options = DefaultTqqMatchOptions();
  CandidateIndex incremental(aux, options);
  synth::GrowthConfig growth;  // defaults exercise every growth channel
  DriveBatches(&aux, 4, 18, growth, [&](const hin::GraphDelta& delta) {
    incremental.ApplyDelta(delta);
    CandidateIndex rebuilt(aux, options);
    EXPECT_TRUE(incremental.OrderIdenticalTo(rebuilt));
  });
}

// Without a primary growable attribute the buckets are sorted by vertex id
// alone; the incremental inserts must keep that order too.
TEST(WarmStateDeltaTest, CandidateIndexNoPrimaryAttribute) {
  hin::Graph aux = MakeAux(400, 19);
  MatchOptions options = DefaultTqqMatchOptions();
  options.growable_attributes.clear();
  options.exact_attributes = {hin::kGenderAttr, hin::kYobAttr};
  CandidateIndex incremental(aux, options);
  synth::GrowthConfig growth;
  DriveBatches(&aux, 3, 20, growth, [&](const hin::GraphDelta& delta) {
    incremental.ApplyDelta(delta);
    CandidateIndex rebuilt(aux, options);
    EXPECT_TRUE(incremental.OrderIdenticalTo(rebuilt));
  });
}

TEST(WarmStateDeltaTest, NeighborhoodStatsSpansIdenticalToRebuild) {
  hin::Graph aux = MakeAux(1000, 21);
  const MatchOptions options = DefaultTqqMatchOptions();
  // In-edge slots on: covers all 8 slots, not just the default out-edge 4.
  NeighborhoodStats incremental(aux, options.link_types,
                                /*use_in_edges=*/true);
  // Small enough batches that the accumulated patch set stays under the
  // n/4 compaction threshold for all four batches — the assertions below
  // must exercise the patch-table read path, not a post-compaction full
  // build. (Edge and strength fractions are relative to E ~ 10x V.)
  synth::GrowthConfig growth;
  growth.new_user_fraction = 0.004;
  growth.new_edge_fraction = 0.001;
  growth.strength_growth_prob = 0.0005;
  DriveBatches(&aux, 4, 22, growth, [&](const hin::GraphDelta& delta) {
    incremental.ApplyDelta(aux, delta);
    EXPECT_GT(incremental.num_patched(), 0u);
    NeighborhoodStats fresh(aux, options.link_types, /*use_in_edges=*/true);
    ASSERT_EQ(incremental.num_slots(), fresh.num_slots());
    for (size_t slot = 0; slot < fresh.num_slots(); ++slot) {
      for (hin::VertexId v = 0; v < aux.num_vertices(); ++v) {
        const auto a = incremental.SortedStrengths(slot, v);
        const auto b = fresh.SortedStrengths(slot, v);
        ASSERT_EQ(a.size(), b.size()) << "slot " << slot << " v " << v;
        for (size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "slot " << slot << " v " << v;
        }
      }
    }
  });
}

TEST(WarmStateDeltaTest, NeighborhoodStatsCompactsWhenPatchGrows) {
  hin::Graph aux = MakeAux(300, 23);
  const MatchOptions options = DefaultTqqMatchOptions();
  NeighborhoodStats stats(aux, options.link_types, /*use_in_edges=*/true);
  synth::GrowthConfig growth;
  growth.new_user_fraction = 0.30;  // huge batch: touches > n/4 vertices
  growth.new_edge_fraction = 0.40;
  util::Rng rng(24);
  auto delta =
      synth::SampleGrowthDelta(aux, growth, synth::TqqConfig{}, &rng);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(hin::GraphBuilder::ApplyDelta(&aux, delta.value()).ok());
  stats.ApplyDelta(aux, delta.value());
  // Compaction folded the patch back into the base arenas.
  EXPECT_EQ(stats.num_patched(), 0u);
  EXPECT_EQ(stats.base_vertices(), aux.num_vertices());
  NeighborhoodStats fresh(aux, options.link_types, /*use_in_edges=*/true);
  for (size_t slot = 0; slot < fresh.num_slots(); ++slot) {
    for (hin::VertexId v = 0; v < aux.num_vertices(); ++v) {
      const auto a = stats.SortedStrengths(slot, v);
      const auto b = fresh.SortedStrengths(slot, v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
    }
  }
}

TEST(WarmStateDeltaTest, MatchCacheEpochInvalidation) {
  MatchCache cache(4);
  // Depth 1 entries for aux vertices 10 and 20; depth 2 for 10.
  cache.Insert(1, MatchCache::PairKey(1, 10), true);
  cache.Insert(1, MatchCache::PairKey(2, 20), false);
  cache.Insert(2, MatchCache::PairKey(3, 10), true);
  EXPECT_EQ(cache.MaxPopulatedDepth(), 2u);

  // Dirty aux vertex 10 at depth 1 only (dirty_by_depth[0]).
  cache.Invalidate({{10}});
  EXPECT_FALSE(cache.Lookup(1, MatchCache::PairKey(1, 10)).has_value());
  auto survivor = cache.Lookup(1, MatchCache::PairKey(2, 20));
  ASSERT_TRUE(survivor.has_value());
  EXPECT_FALSE(*survivor);
  auto deeper = cache.Lookup(2, MatchCache::PairKey(3, 10));
  ASSERT_TRUE(deeper.has_value());  // depth 2 row was not dirtied
  EXPECT_TRUE(*deeper);
  EXPECT_EQ(cache.TotalStats().stale, 1u);

  // Re-inserting after the invalidation postdates the stale mark.
  cache.Insert(1, MatchCache::PairKey(1, 10), false);
  auto refreshed = cache.Lookup(1, MatchCache::PairKey(1, 10));
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_FALSE(*refreshed);

  // A deeper dirty set hits both depths for vertex 10.
  cache.Invalidate({{10}, {10}});
  EXPECT_FALSE(cache.Lookup(1, MatchCache::PairKey(1, 10)).has_value());
  EXPECT_FALSE(cache.Lookup(2, MatchCache::PairKey(3, 10)).has_value());
  EXPECT_TRUE(cache.Lookup(1, MatchCache::PairKey(2, 20)).has_value());
}

TEST(WarmStateDeltaTest, MatchCacheInvalidateAll) {
  MatchCache cache(2);
  cache.Insert(1, MatchCache::PairKey(1, 5), true);
  cache.Insert(3, MatchCache::PairKey(2, 6), false);
  cache.InvalidateAll();
  EXPECT_FALSE(cache.Lookup(1, MatchCache::PairKey(1, 5)).has_value());
  EXPECT_FALSE(cache.Lookup(3, MatchCache::PairKey(2, 6)).has_value());
  // Entries inserted after the flush are live again.
  cache.Insert(1, MatchCache::PairKey(1, 5), true);
  EXPECT_TRUE(cache.Lookup(1, MatchCache::PairKey(1, 5)).has_value());
  // The stale entries are still counted in size() until overwritten.
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace hinpriv::core
