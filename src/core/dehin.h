#ifndef HINPRIV_CORE_DEHIN_H_
#define HINPRIV_CORE_DEHIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/candidate_index.h"
#include "core/dominance_kernels.h"
#include "core/match_cache.h"
#include "core/matchers.h"
#include "core/neighborhood_stats.h"
#include "exec/executor.h"
#include "hin/graph.h"
#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace hinpriv::core {

// Configuration of the DeHIN attack (Algorithms 1 and 2).
struct DehinConfig {
  MatchOptions match;
  // Max distance n of utilized neighbors. 0 = profile attributes only.
  int max_distance = 1;
  // Accelerate candidate generation with a CandidateIndex over the
  // auxiliary profiles. Semantically identical to the paper's literal
  // "foreach v in V" scan (differential-tested); turn off to measure the
  // scan cost.
  bool use_candidate_index = true;
  // Layer-1 acceleration: precomputed NeighborhoodStats back a sound
  // necessary-condition prefilter (per-type degree pigeonhole + sorted
  // strength-multiset dominance) that rejects (target, candidate) pairs in
  // O(|T| + |A|) before the O(|T|·|A|) bipartite construction. Answer-
  // preserving by construction — the prefilter only rejects pairs the full
  // test provably rejects (differential-tested); disabled automatically
  // when link_match_override replaces the strength semantics it reasons
  // about. Turn off (--no-prefilter in the benches) to measure its share.
  bool use_prefilter = true;
  // Layer-2 acceleration: memoize LinkMatch results in a sharded cache
  // shared across all Deanonymize calls (and threads) instead of one
  // std::unordered_map per call, so sub-results computed while scoring one
  // target vertex are reused for every other target whose neighborhood
  // touches the same pairs. Answer-preserving: LinkMatch(vt, va, depth) is
  // a pure function of the two graphs and the config. Turn off
  // (--no-shared-cache) to fall back to the per-call memo.
  bool use_shared_cache = true;
  // Which implementation of the Layer-1 strength-dominance compare the
  // prefilter runs — the hottest loop of the accelerated attack. kAuto
  // resolves once at Dehin construction to the best tier the CPU supports
  // (AVX2 > SSE2 > scalar); explicit tiers exist for ablation
  // (--dominance-kernel on the benches) and degrade to the best supported
  // tier when the CPU lacks them. All tiers are bit-identical (pinned by
  // the differential fuzz suite), so this knob never changes results.
  DominanceKernel dominance_kernel = DominanceKernel::kAuto;
  // Only auxiliary vertices with id < candidate_limit are eligible
  // candidates (0 = every vertex). The neighborhood recursion still walks
  // the whole graph — only the root candidate scan is restricted. This is
  // the sharded tier's hook: a shard's subgraph orders its owned vertices
  // first and its halo (neighborhood-completion) vertices after, and sets
  // the limit to the owned count so halo vertices — whose own
  // neighborhoods may be truncated at the shard boundary — are never
  // scored as candidates.
  size_t candidate_limit = 0;
  // A link type (and direction) whose target-side neighborhood covers more
  // than this fraction of the target graph is considered saturated by fake
  // links and skipped: a rational adversary knows real social networks
  // have density < 0.5 (Section 6.2), so a near-complete neighborhood
  // carries no matching signal. This is what pins the attack at its
  // distance-0 level against VW-CGA instead of producing empty candidate
  // sets (Figure 8). The default of 1.0 disables the heuristic; the
  // reconfigured attack (Section 6.2) sets it to 0.5 alongside
  // StripMajorityStrengthLinks.
  double saturation_fraction = 1.0;
  // Optional override of entity_attribute_match ("this function can be
  // configured by users"); when set it replaces the MatchOptions-driven
  // comparison everywhere, and the candidate index is bypassed.
  std::function<bool(const hin::Graph& target, hin::VertexId vt,
                     const hin::Graph& aux, hin::VertexId va)>
      entity_match_override;
  // Optional override of link_attribute_match (target strength, auxiliary
  // strength) -> bool. Bypasses the strength prefilter, whose dominance
  // reasoning is only sound for the built-in >= / == semantics.
  std::function<bool(hin::Strength, hin::Strength)> link_match_override;
};

// Observability counters for the two acceleration layers, snapshotted via
// Dehin::stats(). Every LinkMatch invocation lands in exactly one of the
// three buckets. Monotone across a Dehin's lifetime (reset with
// Dehin::ResetStats); deltas around an evaluation give per-run rates.
struct DehinStats {
  // Rejected by the Layer-1 necessary-condition scan before any cache or
  // bipartite work (rejected pairs are never cached, so re-visits count
  // again — the scan is as cheap as a cache probe).
  uint64_t prefilter_rejects = 0;
  // Answered by the Layer-2 match cache (or the per-call fallback memo).
  uint64_t cache_hits = 0;
  // Went through the full candidate-set construction + Hopcroft-Karp test.
  uint64_t full_tests = 0;
  // Name of the dominance-kernel tier the prefilter ran with ("scalar",
  // "sse2", "avx2", or "off" when the prefilter is disabled). Not a
  // counter: snapshots and deltas carry it through unchanged.
  const char* dominance_kernel = "off";

  uint64_t TotalLinkMatchCalls() const {
    return prefilter_rejects + cache_hits + full_tests;
  }
  // Fraction of cache probes (calls surviving the prefilter) answered from
  // the cache.
  double CacheHitRate() const {
    const uint64_t probes = cache_hits + full_tests;
    return probes == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(probes);
  }
  // Fraction of all LinkMatch calls the prefilter rejected outright.
  double PrefilterRejectRate() const {
    const uint64_t total = TotalLinkMatchCalls();
    return total == 0 ? 0.0
                      : static_cast<double>(prefilter_rejects) /
                            static_cast<double>(total);
  }
};

// Counter delta (a - b), for before/after snapshots around one evaluation.
// The counters are monotone, so a well-ordered delta is nonnegative;
// subtracting a *later* snapshot from an earlier one (or snapshots that
// straddle a ResetStats) clamps at zero instead of silently wrapping to a
// huge unsigned value.
inline DehinStats operator-(DehinStats a, const DehinStats& b) {
  auto clamped_sub = [](uint64_t x, uint64_t y) { return x > y ? x - y : 0; };
  a.prefilter_rejects = clamped_sub(a.prefilter_rejects, b.prefilter_rejects);
  a.cache_hits = clamped_sub(a.cache_hits, b.cache_hits);
  a.full_tests = clamped_sub(a.full_tests, b.full_tests);
  return a;
}

// The DeHIN de-anonymization attack (Section 5): given the non-anonymized
// auxiliary graph G, de-anonymize entities of an anonymized target graph
// G' by profile matching plus recursive typed-neighborhood matching
// decided with Hopcroft-Karp maximum bipartite matching.
//
// Thread-safe for concurrent Deanonymize calls on one shared Dehin: the
// per-target-graph state (neighborhood stats, shared match cache) is built
// under an internal mutex on first use, read-only afterwards, and held by
// shared_ptr — each Deanonymize call pins the state it resolved, so
// concurrent invalidation or replacement (stale-fingerprint rebuild,
// InvalidateTarget) can never free state another thread is still reading.
//
// Target graphs are recognized by address, so a target passed to
// Deanonymize must stay alive (and unchanged) for as long as this Dehin is
// used with it — do not destroy a target graph and reuse its storage for a
// different graph mid-lifetime. (A (num_vertices, num_edges) fingerprint
// invalidates stale state for the common rebuild-in-place patterns, but
// address reuse by an identically-sized different graph is undetectable —
// call InvalidateTarget before retiring a target graph to both drop its
// cached state and keep the per-target map from growing unboundedly.)
class Dehin {
 public:
  // `auxiliary` must outlive the Dehin.
  Dehin(const hin::Graph* auxiliary, DehinConfig config);

  // Algorithm 1, DeHIN(G, G', T_G*, v', n): returns the candidate set
  // C of auxiliary vertices matching target vertex `vt`, sorted
  // ascending. De-anonymization succeeds when the set is exactly the
  // target's true counterpart.
  std::vector<hin::VertexId> Deanonymize(const hin::Graph& target,
                                         hin::VertexId vt) const {
    return Deanonymize(target, vt, config_.max_distance);
  }

  // Same, with an explicit max distance n overriding the configured one —
  // lets one Dehin (and its candidate index) serve a whole distance sweep.
  std::vector<hin::VertexId> Deanonymize(const hin::Graph& target,
                                         hin::VertexId vt,
                                         int max_distance) const;

  // Cancellable variant for the attack service and interruptible batch
  // runs. The recursion polls `cancel` cooperatively — once per candidate
  // plus every LocalStats::kCancelCheckStride LinkMatch calls, so the
  // added cost is one relaxed load (and an occasional clock read) per
  // ~hundreds of dominated-pair tests — and returns
  // Status::DeadlineExceeded / Status::Cancelled instead of a partial
  // candidate set. Results computed after the stop flag flips are never
  // inserted into the match cache (their sub-answers may be truncated),
  // so an aborted call cannot poison later ones. A null `cancel` is the
  // plain uncancellable path.
  util::Result<std::vector<hin::VertexId>> Deanonymize(
      const hin::Graph& target, hin::VertexId vt, int max_distance,
      const util::CancelToken* cancel) const;

  // Knobs for the intra-query parallel candidate scan.
  struct ParallelScanOptions {
    // Pool to fan the scan out on; borrowed, not owned. nullptr selects
    // the process-wide exec::Executor::Global().
    exec::Executor* executor = nullptr;
    // Auxiliary vertices (or index candidates) per claimed grain; 0 picks
    // the adaptive grain from `grain_policy` (~8 chunks per worker by
    // default).
    size_t grain = 0;
    // Adaptive-grain policy applied when `grain` is 0; the
    // parallel_scaling bench sweeps chunks_per_worker/max_grain through
    // this knob.
    exec::GrainPolicy grain_policy;
    // Same cooperative-stop contract as the cancellable Deanonymize:
    // polled per grain claim and per candidate, returns
    // Status::DeadlineExceeded / Status::Cancelled, and never inserts
    // truncated results into the match cache.
    const util::CancelToken* cancel = nullptr;
  };

  // Intra-query parallel variant of Deanonymize: one target vertex, the
  // candidate scan fanned out across the executor's workers so a single
  // query can saturate the machine. The auxiliary vertex range (or, with
  // the candidate index, the index's serially-enumerated candidate pool)
  // is partitioned into grains claimed dynamically; each grain collects
  // accepted candidates into its own slot, and the slots are concatenated
  // in grain order and sorted, so the result is bit-identical to the
  // serial Deanonymize regardless of scheduling (LinkMatch is a pure
  // function of the two graphs and the config; see the differential
  // tests). On a single-worker executor this degrades to the serial
  // cancellable path.
  util::Result<std::vector<hin::VertexId>> DeanonymizeParallel(
      const hin::Graph& target, hin::VertexId vt, int max_distance,
      const ParallelScanOptions& options) const;
  util::Result<std::vector<hin::VertexId>> DeanonymizeParallel(
      const hin::Graph& target, hin::VertexId vt, int max_distance) const;

  const DehinConfig& config() const { return config_; }
  const hin::Graph& auxiliary() const { return *aux_; }

  // Incrementally absorbs one growth batch into the warm state, after the
  // auxiliary graph has been mutated in place by
  // hin::GraphBuilder::ApplyDelta (call order matters): the candidate
  // index re-buckets O(|delta|) vertices, the auxiliary prefilter stats
  // recompute only the delta's 1-hop closure, and every cached target
  // state's shared match cache is invalidated epoch-wise for the delta's
  // d-hop closure (d = its deepest memoized depth) instead of being
  // flushed — untouched entries keep hitting. Target graphs are unchanged
  // by auxiliary growth, so per-target stats and saturation limits stay
  // valid. The caller must guarantee exclusive access (no concurrent
  // Deanonymize) for the duration of the call; the attack service holds
  // its warm-state lock exclusively here.
  util::Status ApplyAuxDelta(const hin::GraphDelta& delta);

  // Snapshot of the acceleration counters accumulated so far.
  DehinStats stats() const;
  void ResetStats() const;

  // Drops the cached per-target state (neighborhood stats, shared match
  // cache) for `target`, if any. Safe to call while other threads are mid-
  // Deanonymize on the same graph: they pinned their state and keep using
  // it; only the map entry is released here. Call this when retiring a
  // target graph so target_states_ cannot grow unboundedly across many
  // targets (and before reusing a graph object's address for a different
  // graph, which the fingerprint cannot always detect).
  void InvalidateTarget(const hin::Graph& target) const;

  // Number of target graphs with live cached state (observability; takes
  // the internal mutex).
  size_t num_cached_target_states() const;

  // Name of the resolved dominance-kernel tier the Layer-1 prefilter runs
  // ("scalar", "sse2", "avx2"), or "off" when the prefilter is disabled.
  const char* dominance_kernel_name() const;

 private:
  // Everything Deanonymize needs that is constant per target graph:
  // the saturation threshold, the Layer-1 stats, and the Layer-2 shared
  // cache. Built once on first use and cached by graph address.
  struct TargetState {
    size_t saturation_limit = 0;
    std::unique_ptr<NeighborhoodStats> stats;  // null when prefilter is off
    std::unique_ptr<MatchCache> cache;  // null when shared cache is off
    // Weak identity fingerprint to invalidate stale state if a different
    // graph reuses the address.
    size_t num_vertices = 0;
    size_t num_edges = 0;
  };

  // Per-call counter accumulator, flushed to the atomics once per
  // Deanonymize so the recursion does not touch shared cache lines. Also
  // carries the call's cancellation state: the token to poll (null = not
  // cancellable), a countdown so the clock is only read every
  // kCancelCheckStride LinkMatch calls, and the sticky stop flag — once
  // set, every remaining LinkMatch returns immediately without caching.
  struct LocalStats {
    static constexpr uint32_t kCancelCheckStride = 256;

    uint64_t prefilter_rejects = 0;
    uint64_t cache_hits = 0;
    uint64_t full_tests = 0;
    const util::CancelToken* cancel = nullptr;
    uint32_t cancel_countdown = kCancelCheckStride;
    bool stopped = false;
  };

  // Resolves (building on first use) the state for `target`. The returned
  // shared_ptr pins the state for the caller's whole evaluation, so a
  // concurrent rebuild or InvalidateTarget only unlinks it from the map.
  std::shared_ptr<const TargetState> GetTargetState(
      const hin::Graph& target) const;

  // Algorithm 2, link_match(n, v', v, ...): recursive typed-neighborhood
  // comparison, memoized in `cache` (the shared per-target cache or a
  // per-call local one). Root calls (is_root) skip the memo entirely: a
  // depth-n entry could only ever be re-probed by another root call on the
  // same (vt, va), which a candidate scan never issues, so probing and
  // inserting there is pure overhead. Recursive calls at depth < n are the
  // ones that repeat across candidates and targets.
  bool LinkMatch(int depth, const hin::Graph& target, hin::VertexId vt,
                 hin::VertexId va, const TargetState& state,
                 MatchCache* cache, LocalStats* local, bool is_root) const;

  // Layer-1 necessary-condition test; false proves LinkMatch would reject.
  bool PrefilterPass(hin::VertexId vt, hin::VertexId va,
                     const TargetState& state) const;

  // Cumulative closure lists for cache invalidation: element d-1 holds
  // every auxiliary vertex within distance d of the delta's touched set
  // (new vertices, edge endpoints, attr-bumped vertices), BFS'd
  // undirected over the configured link types.
  std::vector<std::vector<hin::VertexId>> DirtyClosure(
      const hin::GraphDelta& delta, size_t radius) const;

  bool EntityMatch(const hin::Graph& target, hin::VertexId vt,
                   hin::VertexId va) const;
  bool StrengthMatch(hin::Strength target_strength,
                     hin::Strength aux_strength) const;

  bool prefilter_enabled() const {
    return config_.use_prefilter && !config_.link_match_override;
  }

  const hin::Graph* aux_;
  DehinConfig config_;
  std::unique_ptr<CandidateIndex> index_;
  // Auxiliary-side Layer-1 stats, built at construction (null when the
  // prefilter is disabled).
  std::unique_ptr<NeighborhoodStats> aux_stats_;
  // Dominance kernel resolved once at construction; dominance_fn_ is the
  // semantics-appropriate entry point (growth-aware vs. exact) the
  // prefilter calls.
  ResolvedDominanceKernel kernel_;
  DominanceFn dominance_fn_ = nullptr;

  mutable std::mutex target_mu_;
  mutable std::unordered_map<const hin::Graph*,
                             std::shared_ptr<const TargetState>>
      target_states_;

  // Acceleration counters, kept per instance (so differently-configured
  // Dehins in one process stay separable, e.g. in the ablation benches) but
  // backed by the telemetry layer's striped lock-free obs::Counter instead
  // of bare atomics. Flushes additionally mirror into the process-wide
  // obs::MetricsRegistry under "dehin/...", which is what --metrics-json
  // and the bench metrics block export.
  mutable obs::Counter prefilter_rejects_{"dehin/prefilter_rejects"};
  mutable obs::Counter cache_hits_{"dehin/cache_hits"};
  mutable obs::Counter full_tests_{"dehin/full_tests"};
};

// Section 6.2 reconfiguration: returns a copy of `graph` with every link
// whose strength equals its link type's majority (most frequent) strength
// removed. Against Complete Graph Anonymity this strips the constant-weight
// fake links (social networks have density < 0.5, so fakes are the
// majority) at the cost of also dropping real links that share the value.
util::Result<hin::Graph> StripMajorityStrengthLinks(const hin::Graph& graph);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_DEHIN_H_
