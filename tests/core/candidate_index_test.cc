#include "core/candidate_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

hin::Graph MakeNetwork(size_t users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::vector<hin::VertexId> IndexCandidates(const CandidateIndex& index,
                                           const hin::Graph& target,
                                           hin::VertexId vt) {
  std::vector<hin::VertexId> out;
  index.ForEachCandidate(target, vt, [&](hin::VertexId va) {
    out.push_back(va);
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<hin::VertexId> ScanCandidates(const hin::Graph& aux,
                                          const hin::Graph& target,
                                          hin::VertexId vt,
                                          const MatchOptions& options) {
  std::vector<hin::VertexId> out;
  for (hin::VertexId va = 0; va < aux.num_vertices(); ++va) {
    if (EntityAttributesMatch(target, vt, aux, va, options)) out.push_back(va);
  }
  return out;
}

// The index is a pure optimization: it must enumerate exactly the vertices
// the paper's literal "foreach v in V" profile scan accepts.
TEST(CandidateIndexTest, MatchesLinearScanExactly) {
  const hin::Graph aux = MakeNetwork(3000, 1);
  const hin::Graph target = MakeNetwork(200, 2);
  const MatchOptions options = DefaultTqqMatchOptions();
  CandidateIndex index(aux, options);
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    ASSERT_EQ(IndexCandidates(index, target, vt),
              ScanCandidates(aux, target, vt, options))
        << "target " << vt;
  }
}

TEST(CandidateIndexTest, MatchesScanWithoutGrowthAwareness) {
  const hin::Graph aux = MakeNetwork(2000, 3);
  const hin::Graph target = MakeNetwork(100, 4);
  MatchOptions options = DefaultTqqMatchOptions();
  options.growth_aware = false;
  CandidateIndex index(aux, options);
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    ASSERT_EQ(IndexCandidates(index, target, vt),
              ScanCandidates(aux, target, vt, options));
  }
}

TEST(CandidateIndexTest, MatchesScanWithNoGrowableAttributes) {
  const hin::Graph aux = MakeNetwork(1500, 5);
  const hin::Graph target = MakeNetwork(80, 6);
  MatchOptions options = DefaultTqqMatchOptions();
  options.growable_attributes.clear();
  CandidateIndex index(aux, options);
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    ASSERT_EQ(IndexCandidates(index, target, vt),
              ScanCandidates(aux, target, vt, options));
  }
}

TEST(CandidateIndexTest, SelfLookupFindsSelf) {
  const hin::Graph aux = MakeNetwork(1000, 7);
  const MatchOptions options = DefaultTqqMatchOptions();
  CandidateIndex index(aux, options);
  for (hin::VertexId v = 0; v < 50; ++v) {
    const auto candidates = IndexCandidates(index, aux, v);
    EXPECT_TRUE(
        std::binary_search(candidates.begin(), candidates.end(), v));
  }
}

TEST(CandidateIndexTest, BucketCountReflectsExactAttributeCells) {
  const hin::Graph aux = MakeNetwork(5000, 8);
  CandidateIndex index(aux, DefaultTqqMatchOptions());
  // gender x yob x tags <= 3 * 87 * 11 distinct cells.
  EXPECT_LE(index.num_buckets(), 3u * 87u * 11u);
  EXPECT_GT(index.num_buckets(), 50u);
}

}  // namespace
}  // namespace hinpriv::core
