#include "core/dominance_kernels.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/neighborhood_stats.h"
#include "util/random.h"
#include "util/simd.h"

namespace hinpriv::core {
namespace {

// The prefilter's correctness rests on every SIMD tier being bit-identical
// to the scalar reference (NeighborhoodStats::StrengthMultisetDominates) —
// kernel choice must never change attack results. This suite pins that
// equivalence differentially: random sorted spans across sizes 0..4096,
// both semantics, unaligned start offsets, plus deterministic
// single-element perturbations that target each kernel's edge lanes.

bool Reference(const std::vector<hin::Strength>& target,
               const std::vector<hin::Strength>& aux, bool growth_aware) {
  return NeighborhoodStats::StrengthMultisetDominates(
      std::span<const hin::Strength>(target),
      std::span<const hin::Strength>(aux), growth_aware);
}

// Runs every supported kernel on (target, aux) at several start offsets
// inside an aligned arena and checks both semantics against the scalar
// reference. Offsets 0..7 cover every lane phase of an 8-wide AVX2 pass.
void CheckAllKernels(const std::vector<hin::Strength>& target,
                     const std::vector<hin::Strength>& aux,
                     const std::string& context) {
  const bool want_growth = Reference(target, aux, /*growth_aware=*/true);
  const bool want_exact = Reference(target, aux, /*growth_aware=*/false);
  const auto kernels = SupportedDominanceKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front().name, "scalar");
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    util::AlignedBuffer<hin::Strength> t_buf;
    util::AlignedBuffer<hin::Strength> a_buf;
    t_buf.Reset(target.size() + offset);
    a_buf.Reset(aux.size() + offset);
    std::copy(target.begin(), target.end(), t_buf.data() + offset);
    std::copy(aux.begin(), aux.end(), a_buf.data() + offset);
    for (const ResolvedDominanceKernel& kernel : kernels) {
      EXPECT_EQ(kernel.growth_aware(t_buf.data() + offset, target.size(),
                                    a_buf.data() + offset, aux.size()),
                want_growth)
          << context << " kernel=" << kernel.name << " offset=" << offset
          << " semantics=growth";
      EXPECT_EQ(kernel.exact(t_buf.data() + offset, target.size(),
                             a_buf.data() + offset, aux.size()),
                want_exact)
          << context << " kernel=" << kernel.name << " offset=" << offset
          << " semantics=exact";
    }
  }
}

std::vector<hin::Strength> RandomSorted(util::Rng* rng, size_t size,
                                        uint64_t value_range) {
  std::vector<hin::Strength> values(size);
  for (auto& v : values) {
    v = static_cast<hin::Strength>(rng->UniformU64(value_range));
  }
  std::sort(values.begin(), values.end());
  return values;
}

TEST(DominanceKernelsTest, ScalarAlwaysSupported) {
  const auto kernels = SupportedDominanceKernels();
  ASSERT_GE(kernels.size(), 1u);
  EXPECT_STREQ(kernels[0].name, "scalar");
  for (const auto& kernel : kernels) {
    EXPECT_NE(kernel.growth_aware, nullptr);
    EXPECT_NE(kernel.exact, nullptr);
  }
}

TEST(DominanceKernelsTest, EmptyAndTrivialSpans) {
  CheckAllKernels({}, {}, "empty/empty");
  CheckAllKernels({}, {1, 2, 3}, "empty target");
  CheckAllKernels({5}, {}, "empty aux");
  CheckAllKernels({5}, {5}, "equal singleton");
  CheckAllKernels({5}, {4}, "smaller singleton");
  CheckAllKernels({5}, {6}, "larger singleton");
}

TEST(DominanceKernelsTest, PigeonholeWhenAuxSmaller) {
  // m < k can never dominate under either semantics.
  CheckAllKernels({1, 2, 3}, {9, 9}, "aux too small");
  CheckAllKernels({0, 0, 0, 0, 0, 0, 0, 0, 0}, {9, 9, 9, 9, 9, 9, 9, 9},
                  "aux one short of a full vector");
}

TEST(DominanceKernelsTest, RandomDifferentialFuzz) {
  util::Rng rng(20140324);
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                          31, 32, 33, 63, 64, 100, 255, 256, 1000, 4096};
  // Narrow ranges force many equal strengths (ties exercise the exact
  // semantics' merged scan); wide ranges exercise the unsigned compares.
  const uint64_t ranges[] = {2, 5, 100, 1u << 31, 0xFFFFFFFFull};
  for (size_t k : sizes) {
    for (uint64_t range : ranges) {
      for (int rep = 0; rep < 4; ++rep) {
        const size_t m = k + rng.UniformU64(2 * k + 4);
        const auto target = RandomSorted(&rng, k, range);
        const auto aux = RandomSorted(&rng, m, range);
        CheckAllKernels(target, aux,
                        "fuzz k=" + std::to_string(k) +
                            " m=" + std::to_string(m) +
                            " range=" + std::to_string(range));
      }
    }
  }
}

TEST(DominanceKernelsTest, BiasedPassingPairsStayEquivalent) {
  // Random pairs overwhelmingly fail; build aux = target + noise so a large
  // fraction passes and the kernels' full-scan paths are exercised too.
  util::Rng rng(7);
  for (size_t k : {1u, 8u, 9u, 64u, 257u, 2048u}) {
    for (int rep = 0; rep < 8; ++rep) {
      auto target = RandomSorted(&rng, k, 1000);
      std::vector<hin::Strength> aux = target;
      for (auto& v : aux) {
        v += static_cast<hin::Strength>(rng.UniformU64(3));  // 0..2 growth
      }
      const size_t extra = rng.UniformU64(k + 1);
      for (size_t i = 0; i < extra; ++i) {
        aux.push_back(static_cast<hin::Strength>(rng.UniformU64(1500)));
      }
      std::sort(aux.begin(), aux.end());
      CheckAllKernels(target, aux, "biased k=" + std::to_string(k));
    }
  }
}

TEST(DominanceKernelsTest, SingleMismatchAtEveryPosition) {
  // A pair that passes except for exactly one deficient position, swept
  // across the span: catches any kernel that mishandles one lane of a
  // vector (first, last, or interior) or the scalar tail.
  for (size_t k : {1u, 7u, 8u, 9u, 16u, 33u}) {
    std::vector<hin::Strength> target(k);
    for (size_t i = 0; i < k; ++i) {
      target[i] = static_cast<hin::Strength>(10 * (i + 1));
    }
    for (size_t deficient = 0; deficient < k; ++deficient) {
      std::vector<hin::Strength> aux = target;  // equal => passes both
      aux[deficient] -= 1;
      std::sort(aux.begin(), aux.end());
      CheckAllKernels(target, aux,
                      "mismatch k=" + std::to_string(k) + " at " +
                          std::to_string(deficient));
    }
  }
}

TEST(DominanceKernelsTest, ExtremeValuesNoOverflow) {
  // Values at the top of the unsigned range: the SSE2 sign-flip trick and
  // the AVX2 max-compare must not wrap.
  const hin::Strength big = 0xFFFFFFFFu;
  CheckAllKernels({big}, {big}, "max/max");
  CheckAllKernels({big}, {big - 1}, "max vs max-1");
  CheckAllKernels({0, big}, {0, big}, "span of extremes");
  CheckAllKernels({big - 1, big, big, big, big, big, big, big},
                  {big, big, big, big, big, big, big, big},
                  "full vector of extremes");
}

TEST(DominanceKernelsTest, ParseRoundTrip) {
  const std::pair<const char*, DominanceKernel> cases[] = {
      {"auto", DominanceKernel::kAuto},
      {"scalar", DominanceKernel::kScalar},
      {"sse2", DominanceKernel::kSse2},
      {"avx2", DominanceKernel::kAvx2},
  };
  for (const auto& [name, want] : cases) {
    DominanceKernel got;
    ASSERT_TRUE(ParseDominanceKernel(name, &got)) << name;
    EXPECT_EQ(got, want);
    EXPECT_STREQ(DominanceKernelChoiceName(want), name);
  }
  DominanceKernel ignored;
  EXPECT_FALSE(ParseDominanceKernel("", &ignored));
  EXPECT_FALSE(ParseDominanceKernel("avx512", &ignored));
  EXPECT_FALSE(ParseDominanceKernel("Scalar", &ignored));
}

TEST(DominanceKernelsTest, ResolveDegradesGracefully) {
  // Whatever the CPU, resolving any choice must yield usable kernels, and
  // kAuto must match the best supported tier.
  for (DominanceKernel choice :
       {DominanceKernel::kAuto, DominanceKernel::kScalar,
        DominanceKernel::kSse2, DominanceKernel::kAvx2}) {
    const ResolvedDominanceKernel kernel = ResolveDominanceKernel(choice);
    EXPECT_NE(kernel.growth_aware, nullptr);
    EXPECT_NE(kernel.exact, nullptr);
    EXPECT_NE(kernel.name, nullptr);
  }
  const auto kernels = SupportedDominanceKernels();
  EXPECT_STREQ(ResolveDominanceKernel(DominanceKernel::kAuto).name,
               kernels.back().name);
  EXPECT_STREQ(ResolveDominanceKernel(DominanceKernel::kScalar).name,
               "scalar");
}

TEST(AlignedBufferTest, AlignmentAndZeroedPadding) {
  util::AlignedBuffer<hin::Strength> buf;
  buf.Reset(13);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % util::kSimdAlignment,
            0u);
  EXPECT_EQ(buf.size(), 13u);
  // Padding up to the alignment boundary is zeroed, so full-width loads
  // past size() read defined bytes.
  const size_t padded =
      (13 * sizeof(hin::Strength) + util::kSimdAlignment - 1) /
      util::kSimdAlignment * util::kSimdAlignment / sizeof(hin::Strength);
  for (size_t i = 0; i < padded; ++i) {
    EXPECT_EQ(buf.data()[i], 0u) << i;
  }
  buf.Reset(0);
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace hinpriv::core
