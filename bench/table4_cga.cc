// Reproduces Table 4: the reconfigured DeHIN (majority-strength stripping +
// saturation fallback, Section 6.2) against Complete Graph Anonymity — the
// best case of the k-degree / k-neighborhood / k-automorphism / k-symmetry /
// k-security defense family.

#include <array>
#include <iostream>

#include "anon/complete_graph_anonymizer.h"
#include "bench/bench_common.h"
#include "eval/parallel_metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace hinpriv {
namespace {

struct PaperRow {
  double density;
  std::array<double, 4> precision;  // max distances 0..3
};
constexpr std::array<PaperRow, 10> kPaperTable4 = {{
    {0.001, {4.1, 11.5, 11.9, 11.9}},
    {0.002, {5.1, 19.7, 20.9, 20.9}},
    {0.003, {6.5, 29.8, 31.6, 31.6}},
    {0.004, {4.3, 35.8, 38.3, 38.4}},
    {0.005, {4.3, 44.1, 47.1, 47.1}},
    {0.006, {7.0, 54.3, 57.8, 57.9}},
    {0.007, {5.1, 59.5, 64.2, 64.2}},
    {0.008, {5.3, 70.3, 74.8, 74.8}},
    {0.009, {6.4, 78.1, 83.4, 83.5}},
    {0.010, {5.4, 84.4, 89.8, 89.8}},
}};

}  // namespace
}  // namespace hinpriv

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("max_distance", "3", "largest max distance to evaluate");
  flags.Define("fake_strength", "1",
               "constant short-circuited weight of CGA's fake links");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const int max_distance = static_cast<int>(flags.GetInt("max_distance"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  anon::CompleteGraphAnonymizer anonymizer(
      static_cast<hin::Strength>(flags.GetInt("fake_strength")));

  std::printf("Table 4: reconfigured DeHIN vs. Complete Graph Anonymity "
              "(precision %% [paper] / reduction rate %%)\n\n");

  std::vector<std::string> header = {"density"};
  for (int n = 0; n <= max_distance; ++n) {
    header.push_back("n=" + std::to_string(n) + " prec");
    header.push_back("paper");
    header.push_back("redux");
  }
  util::TablePrinter table(header);

  for (const auto& row : kPaperTable4) {
    auto dataset = eval::BuildExperimentDataset(
        bench::AuxConfigFromFlags(flags),
        bench::TargetSpecFromFlags(flags, row.density), synth::GrowthConfig{},
        anonymizer, /*strip_majority=*/true, &rng);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    core::Dehin dehin(&dataset.value().auxiliary, bench::AttackConfig(true));
    std::vector<std::string> cells = {util::FormatDouble(row.density, 3)};
    for (int n = 0; n <= max_distance; ++n) {
      const auto metrics = eval::EvaluateAttackParallel(
          dehin, dataset.value().target, dataset.value().ground_truth, n);
      cells.push_back(bench::Pct(metrics.precision));
      cells.push_back(n < 4 ? util::FormatDouble(row.precision[n], 1) : "-");
      cells.push_back(bench::Pct(metrics.reduction_rate, 3));
    }
    table.AddRow(std::move(cells));
  }
  if (flags.GetBool("tsv")) {
    table.PrintTsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\nExpected shape: precision tracks Table 2 with a slight "
              "degradation — stripping the majority strength removes the "
              "fakes plus the real links sharing their value, so DeHIN "
              "still beats the defense (Section 6.2).\n");
  return 0;
}
