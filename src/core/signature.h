#ifndef HINPRIV_CORE_SIGNATURE_H_
#define HINPRIV_CORE_SIGNATURE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hin/graph.h"
#include "hin/types.h"

namespace hinpriv::core {

// Configuration of the attribute-metapath-combined value (Section 4.1):
// which profile attributes form the distance-0 value and which target
// network schema link types propagate it to neighbors.
struct SignatureOptions {
  // Profile attributes included at distance 0. Table 1 uses only the tag
  // count ("only the number of tags is used in computing the entity
  // cardinality") to keep the entity cardinality small relative to the
  // 1000-entity sample.
  std::vector<hin::AttributeId> attributes;
  // Link types whose (strength, neighbor-value) pairs are folded in.
  std::vector<hin::LinkTypeId> link_types;
  // Also fold in in-neighborhoods (reverse meta paths). Default false:
  // the paper's target meta paths point out of the target user, and
  // Theorem 2's growth analysis is in terms of the out-degree.
  bool use_in_edges = false;
};

// Computes, for every vertex and every max distance n in [0, max_distance],
// a 64-bit canonical hash of the vertex's attribute-metapath-combined value:
//
//   sig_0(v)  = H(selected profile attributes of v)
//   sig_n(v)  = H(sig_0(v), sorted multiset over enabled link types of
//                 (link type, direction, strength, sig_{n-1}(neighbor)))
//
// Two vertices receive equal hashes iff their distance-n neighborhood
// feature expansions (Section 4.1's "Max. Distance-n" feature vectors) are
// equal, up to negligible 64-bit collision probability. Computed level by
// level over the whole graph in O(max_distance * E log deg) time.
//
// Returns signatures[n][v].
std::vector<std::vector<uint64_t>> ComputeSignatures(
    const hin::Graph& graph, const SignatureOptions& options,
    int max_distance);

// Number of distinct values in `values` — the observed cardinality C(T) of
// Theorem 1 when applied to a signature level.
size_t CountDistinct(std::span<const uint64_t> values);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_SIGNATURE_H_
