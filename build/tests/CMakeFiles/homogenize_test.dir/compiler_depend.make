# Empty compiler generated dependencies file for homogenize_test.
# This may be replaced when dependencies are built.
