file(REMOVE_RECURSE
  "CMakeFiles/kdd_loader_test.dir/hin/kdd_loader_test.cc.o"
  "CMakeFiles/kdd_loader_test.dir/hin/kdd_loader_test.cc.o.d"
  "kdd_loader_test"
  "kdd_loader_test.pdb"
  "kdd_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdd_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
