file(REMOVE_RECURSE
  "CMakeFiles/table4_cga.dir/bench/table4_cga.cc.o"
  "CMakeFiles/table4_cga.dir/bench/table4_cga.cc.o.d"
  "bench/table4_cga"
  "bench/table4_cga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
