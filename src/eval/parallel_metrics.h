#ifndef HINPRIV_EVAL_PARALLEL_METRICS_H_
#define HINPRIV_EVAL_PARALLEL_METRICS_H_

#include <cstddef>

#include "eval/metrics.h"

namespace hinpriv::eval {

// Multi-threaded EvaluateAttack. Dehin::Deanonymize is thread-safe, so
// target vertices can be scored concurrently; with the shared match cache
// enabled (DehinConfig::use_shared_cache) the workers additionally reuse
// each other's LinkMatch sub-results through the striped-lock cache.
// Results are bit-identical to the serial EvaluateAttack (verified by the
// unit tests). `num_threads` == 0 picks the hardware concurrency.
AttackMetrics EvaluateAttackParallel(
    const core::Dehin& dehin, const hin::Graph& target,
    const std::vector<hin::VertexId>& ground_truth, int max_distance,
    size_t num_threads = 0);

}  // namespace hinpriv::eval

#endif  // HINPRIV_EVAL_PARALLEL_METRICS_H_
