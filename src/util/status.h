#ifndef HINPRIV_UTIL_STATUS_H_
#define HINPRIV_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hinpriv::util {

// Error-handling vocabulary for the library, modeled on the RocksDB/Arrow
// Status idiom: no exceptions cross the public API; fallible operations
// return a Status (or Result<T> below) that callers must inspect.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIoError,
    kOutOfRange,
    kFailedPrecondition,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Result<T>: either a value or an error Status. Accessing the value of an
// error Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status out of the enclosing function.
#define HINPRIV_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::hinpriv::util::Status _hinpriv_st = (expr);   \
    if (!_hinpriv_st.ok()) return _hinpriv_st;      \
  } while (false)

}  // namespace hinpriv::util

#endif  // HINPRIV_UTIL_STATUS_H_
