file(REMOVE_RECURSE
  "libhinpriv_matching.a"
)
