# Empty dependencies file for dehin_property_test.
# This may be replaced when dependencies are built.
