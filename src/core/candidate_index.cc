#include "core/candidate_index.h"

#include <algorithm>

#include "util/hashing.h"

namespace hinpriv::core {

CandidateIndex::CandidateIndex(const hin::Graph& aux,
                               const MatchOptions& options)
    : aux_(aux),
      options_(options),
      scan_length_(obs::MetricsRegistry::Global().GetHistogram(
          "dehin/candidate_index/scan_length")) {
  if (!options_.growable_attributes.empty()) {
    has_primary_ = true;
    primary_ = options_.growable_attributes.front();
  }
  buckets_.reserve(aux.num_vertices() / 8 + 1);
  for (hin::VertexId v = 0; v < aux.num_vertices(); ++v) {
    buckets_[ExactKey(aux, v)].push_back(v);
  }
  if (has_primary_) {
    for (auto& [key, bucket] : buckets_) {
      std::sort(bucket.begin(), bucket.end(),
                [&](hin::VertexId a, hin::VertexId b) {
                  const hin::AttrValue av = aux.attribute(a, primary_);
                  const hin::AttrValue bv = aux.attribute(b, primary_);
                  return av != bv ? av > bv : a < b;
                });
    }
  }
  obs::MetricsRegistry::Global()
      .GetGauge("dehin/candidate_index/buckets")
      ->Set(static_cast<double>(buckets_.size()));
}

uint64_t CandidateIndex::ExactKey(const hin::Graph& graph,
                                  hin::VertexId v) const {
  uint64_t h = 0x853c49e6748fea9bULL;
  for (hin::AttributeId a : options_.exact_attributes) {
    h = util::HashCombine(
        h, static_cast<uint64_t>(static_cast<int64_t>(graph.attribute(v, a))));
  }
  return util::Mix64(h);
}

}  // namespace hinpriv::core
