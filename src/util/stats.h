#ifndef HINPRIV_UTIL_STATS_H_
#define HINPRIV_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace hinpriv::util {

// Small descriptive-statistics helpers for the evaluation harness.

// Arithmetic mean; 0.0 for an empty range.
double Mean(const std::vector<double>& xs);

// Sample standard deviation (n-1 denominator); 0.0 for fewer than 2 values.
double StdDev(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. 0.0 for an empty range.
double Percentile(std::vector<double> xs, double p);

// Online accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hinpriv::util

#endif  // HINPRIV_UTIL_STATS_H_
