#!/usr/bin/env bash
# Snapshot round-trip serving smoke, run as a CI step: compile a synthetic
# network into a HINPRIVS snapshot, warm-start `serve` from the mmap'd file,
# and assert the attack answers are identical to a server that loaded the
# same network through the text path. This is the end-to-end (process
# boundary + TCP) complement to tests/core/dehin_snapshot_differential_test.
#
# Usage: snapshot_serve_smoke.sh <path-to-hinpriv_cli>
set -euo pipefail

CLI=${1:?usage: snapshot_serve_smoke.sh <hinpriv_cli>}
WORK=$(mktemp -d)
SNAP_PORT=${SNAP_PORT:-7491}
TEXT_PORT=${TEXT_PORT:-7492}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$CLI" generate --users=2000 --seed=7 --out="$WORK/net.graph"
"$CLI" anonymize --in="$WORK/net.graph" --scheme=kdda \
  --out="$WORK/pub.graph" --mapping="$WORK/secret.tsv"
"$CLI" snapshot --in="$WORK/net.graph" --out="$WORK/net.snap" --verify

wait_ready() { # port
  for _ in $(seq 1 100); do
    if "$CLI" query --port="$1" --method=stats >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "server on port $1 never became ready" >&2
  return 1
}

query_all() { # port outfile — normalized to just the candidate sets, so
              # timing fields can't cause spurious diffs
  : > "$2"
  for id in 3 17 42 99 256 1023; do
    "$CLI" query --port="$1" --method=attack_one --target_id="$id" \
      --max_distance=1 | grep -o '"candidates":\[[0-9,]*\]' >> "$2"
  done
}

"$CLI" serve --target="$WORK/pub.graph" --snapshot="$WORK/net.snap" \
  --port="$SNAP_PORT" &
SNAP_PID=$!
wait_ready "$SNAP_PORT"
query_all "$SNAP_PORT" "$WORK/snap.out"
kill "$SNAP_PID" && wait "$SNAP_PID" 2>/dev/null || true

"$CLI" serve --target="$WORK/pub.graph" --aux="$WORK/net.graph" \
  --port="$TEXT_PORT" &
TEXT_PID=$!
wait_ready "$TEXT_PORT"
query_all "$TEXT_PORT" "$WORK/text.out"
kill "$TEXT_PID" && wait "$TEXT_PID" 2>/dev/null || true

[ -s "$WORK/snap.out" ] || { echo "no candidate sets captured" >&2; exit 1; }
diff -u "$WORK/snap.out" "$WORK/text.out"
echo "snapshot serve smoke: $(wc -l < "$WORK/snap.out") answers, parity OK"
