#include "shard/tier.h"

#include <utility>

#include "obs/prometheus.h"
#include "obs/trace.h"

namespace hinpriv::shard {

ShardTier::ShardTier(const hin::Graph* target, const hin::Graph* aux,
                     ShardTierConfig config)
    : target_(target), aux_(aux), config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.halo_depth < 0) config_.halo_depth = 0;
}

ShardTier::~ShardTier() { Shutdown(); }

util::Status ShardTier::Start() {
  if (started_) {
    return util::Status::InvalidArgument("shard tier already started");
  }
  started_ = true;
  HINPRIV_SPAN("shard/tier_start");

  ShardPlanOptions plan_options;
  plan_options.num_shards = config_.num_shards;
  plan_options.hash_seed = config_.hash_seed;
  const ShardPlan plan(aux_->num_vertices(), plan_options);

  slices_.reserve(config_.num_shards);
  owned_counts_.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    if (!config_.slice_prefix.empty()) {
      // Persistent slices: a slice saved by an earlier run (or another
      // worker process) is mmapped through the snapshot arenas; a missing
      // one is extracted, saved, then loaded back so the serving path is
      // the zero-copy mapping either way.
      auto loaded =
          LoadShardSlice(config_.slice_prefix, s, config_.num_shards,
                         config_.halo_depth, config_.snapshot);
      if (!loaded.ok() &&
          loaded.status().code() == util::Status::Code::kNotFound) {
        auto extracted = ExtractShardSlice(*aux_, plan, s, config_.halo_depth);
        if (!extracted.ok()) return extracted.status();
        HINPRIV_RETURN_IF_ERROR(SaveShardSlice(
            extracted.value(), config_.slice_prefix, s, config_.num_shards));
        loaded = LoadShardSlice(config_.slice_prefix, s, config_.num_shards,
                                config_.halo_depth, config_.snapshot);
      }
      if (!loaded.ok()) return loaded.status();
      slices_.push_back(std::move(loaded).value());
    } else {
      auto extracted = ExtractShardSlice(*aux_, plan, s, config_.halo_depth);
      if (!extracted.ok()) return extracted.status();
      slices_.push_back(std::move(extracted).value());
    }
    owned_counts_.push_back(slices_.back().num_owned);
  }

  shard_ports_.reserve(config_.num_shards);
  std::vector<service::ShardEndpoint> endpoints;
  endpoints.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    service::ServerConfig cfg = config_.shard_server;
    cfg.host = "127.0.0.1";
    cfg.port = 0;  // ephemeral; the coordinator learns the bound port
    cfg.executor = nullptr;  // own pool — never share with the coordinator
    cfg.shard_endpoints.clear();
    cfg.shard_halo_depth = -1;
    // Only owned vertices are root candidates; halo vertices exist solely
    // so owned verdicts match the full graph bit for bit.
    cfg.dehin.candidate_limit = slices_[s].num_owned;
    cfg.aux_id_map = slices_[s].to_parent;
    cfg.metric_shard = static_cast<int>(
        s < static_cast<size_t>(obs::kMaxShardLabel)
            ? s
            : static_cast<size_t>(obs::kMaxShardLabel) - 1);
    auto server = std::make_unique<service::Server>(
        target_, &slices_[s].graph, std::move(cfg));
    HINPRIV_RETURN_IF_ERROR(server->Start());
    shard_ports_.push_back(server->port());
    endpoints.push_back(
        service::ShardEndpoint{"127.0.0.1", server->port()});
    shard_servers_.push_back(std::move(server));
  }

  service::ServerConfig coord_cfg = config_.coordinator;
  coord_cfg.shard_endpoints = std::move(endpoints);
  coord_cfg.shard_halo_depth = config_.halo_depth;
  coord_cfg.aux_id_map.clear();
  coord_cfg.metric_shard = -1;
  coordinator_ =
      std::make_unique<service::Server>(target_, aux_, std::move(coord_cfg));
  return coordinator_->Start();
}

void ShardTier::Shutdown() {
  if (coordinator_ != nullptr) coordinator_->Shutdown();
  for (auto& server : shard_servers_) {
    if (server != nullptr) server->Shutdown();
  }
}

uint16_t ShardTier::port() const {
  return coordinator_ != nullptr ? coordinator_->port() : 0;
}

}  // namespace hinpriv::shard
