#ifndef HINPRIV_UTIL_SIMD_H_
#define HINPRIV_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <type_traits>

// Runtime SIMD capability detection plus the aligned storage the kernel
// layer builds on. Kernels themselves live in core/dominance_kernels.cc;
// this header owns the two contracts they share:
//
//   * Detection: DetectSimdLevel() probes the running CPU once (via the
//     compiler's cpuid builtins) and the result is cached, so dispatch is a
//     startup decision, never a per-call branch on cpuid.
//   * Alignment: arenas handed to kernels are allocated on
//     kSimdAlignment-byte boundaries and padded to a multiple of
//     kSimdAlignment bytes. Kernels still use unaligned loads — a span
//     handed to them may start anywhere inside an arena — but an aligned,
//     padded arena guarantees a full-width load at any in-bounds offset
//     never crosses into an unmapped page.

#if defined(__x86_64__) || defined(__i386__)
#define HINPRIV_X86 1
#endif

namespace hinpriv::util {

// SIMD capability tiers the dominance kernels are compiled for, ordered so
// that a larger value strictly extends a smaller one.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

// Highest tier the running CPU supports. Cached after the first call, so
// callers may treat this as free.
inline SimdLevel DetectSimdLevel() {
#if defined(HINPRIV_X86)
  static const SimdLevel level = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
    return SimdLevel::kScalar;
  }();
  return level;
#else
  return SimdLevel::kScalar;
#endif
}

// Alignment (and padding granularity) of kernel-layer arenas: one AVX2
// vector.
inline constexpr size_t kSimdAlignment = 32;

// Fixed-capacity array of trivially-copyable elements whose base address is
// kSimdAlignment-aligned and whose allocation is padded to a multiple of
// kSimdAlignment bytes (padding is zeroed, so full-width loads over the
// tail read defined values). Reset-then-fill is the only mutation pattern
// the kernel arenas need, so there is no incremental growth.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer holds raw kernel-arena scalars");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t size) { Reset(size); }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  // Discards the contents and allocates `size` zeroed elements.
  void Reset(size_t size) {
    size_ = size;
    if (size == 0) {
      data_.reset();
      return;
    }
    const size_t bytes =
        (size * sizeof(T) + kSimdAlignment - 1) / kSimdAlignment *
        kSimdAlignment;
    data_.reset(static_cast<T*>(std::aligned_alloc(kSimdAlignment, bytes)));
    std::memset(data_.get(), 0, bytes);
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_.get()[i]; }
  const T& operator[](size_t i) const { return data_.get()[i]; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  size_t size_ = 0;
};

}  // namespace hinpriv::util

#endif  // HINPRIV_UTIL_SIMD_H_
