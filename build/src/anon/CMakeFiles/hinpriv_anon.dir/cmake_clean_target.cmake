file(REMOVE_RECURSE
  "libhinpriv_anon.a"
)
