#include "util/status.h"

namespace hinpriv::util {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kIoError:
      return "IO_ERROR";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kCancelled:
      return "CANCELLED";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hinpriv::util
