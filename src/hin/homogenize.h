#ifndef HINPRIV_HIN_HOMOGENIZE_H_
#define HINPRIV_HIN_HOMOGENIZE_H_

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::hin {

// Collapses a multi-link-type network into a homogeneous information
// network (|L| = 1): every typed link becomes an edge of the single link
// type "link", with parallel edges across the source types merged by
// summing strengths. Vertices and profile attributes are untouched.
//
// This models the homogeneous setting of prior de-anonymization work
// (Section 2.2) and backs the paper's claim that DeHIN "is also applicable
// to a homogeneous information network (with slight performance
// degradation)": the type labels an adversary loses here are exactly the
// heterogeneity information Theorem 2 credits with the extra risk growth.
// The bench/ablation harness quantifies the resulting precision drop.
util::Result<Graph> HomogenizeGraph(const Graph& graph);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_HOMOGENIZE_H_
