// hinpriv — command-line front end to the library.
//
//   hinpriv_cli generate  --users=50000 --out=net.graph [--kdd_prefix=dir/]
//   hinpriv_cli anonymize --in=net.graph --scheme=cga --out=anon.graph
//                         --mapping=mapping.tsv
//   hinpriv_cli attack    --target=anon.graph --aux=net.graph
//                         [--mapping=mapping.tsv] [--max_distance=2] [--strip]
//                         [--threads=4] [--metrics-json=m.json]
//                         [--trace-out=run.trace.json]
//   hinpriv_cli grow      --in=net.graph --out=grown.graph
//                         [--delta-out=deltas.hinpriv] [--batches=3]
//                         [--new_user_fraction=0.05] [--seed=7]
//   hinpriv_cli audit     --in=net.graph [--max_distance=3]
//   hinpriv_cli stats     --in=net.graph
//   hinpriv_cli stats     --port=7470 [--watch=2]      # live server stats
//   hinpriv_cli snapshot  --in=net.graph --out=net.snap [--verify]
//   hinpriv_cli serve     --target=anon.graph --aux=net.graph [--port=7470]
//                         [--workers=4] [--queue_capacity=128]
//                         [--snapshot=net.snap] [--mlock] [--heartbeat_sec=10]
//   hinpriv_cli query     --port=7470 --method=attack_one --target_id=123
//
// Every subcommand exchanges graphs through hin::LoadGraphAuto /
// hin::SaveGraphAuto (text, HINPRIVB binary, or HINPRIVS mmap snapshot,
// auto-detected); `generate` can additionally emit the KDD Cup 2012
// three-file layout for tools built against the original release.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "core/privacy_risk.h"
#include "eval/metrics.h"
#include "eval/parallel_metrics.h"
#include "exec/executor.h"
#include "hin/density.h"
#include "hin/graph_stats.h"
#include "hin/io.h"
#include "hin/projection.h"
#include "hin/snapshot.h"
#include "hin/kdd_loader.h"
#include "hin/tqq_schema.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/server.h"
#include "service/signal.h"
#include "shard/tier.h"
#include "hin/graph_builder.h"
#include "hin/graph_delta.h"
#include "synth/growth.h"
#include "synth/tqq_generator.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace hinpriv::cli {
namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::printf(
      "hinpriv_cli <command> [flags]\n"
      "commands:\n"
      "  generate   synthesize a t.qq-like network and save it\n"
      "  grow       sample growth batches against a network; saves the\n"
      "             grown graph and a replayable delta stream\n"
      "  anonymize  publish a graph through an anonymization scheme\n"
      "  attack     run DeHIN against a published graph\n"
      "  audit      privacy-risk audit of a graph before publication\n"
      "  stats      structural statistics of a graph, or (--port) live\n"
      "             introspection of a running serve instance\n"
      "  convert    convert between text and binary graph formats\n"
      "  snapshot   write a graph as an mmap-able HINPRIVS snapshot\n"
      "  project    meta-path projection of a full t.qq graph\n"
      "  serve      resident attack service over TCP (see DESIGN.md §7)\n"
      "  query      one request against a running serve instance\n"
      "run '<command> --help' for per-command flags\n");
  return 2;
}

std::unique_ptr<anon::Anonymizer> MakeAnonymizer(const std::string& scheme) {
  if (scheme == "kdda") return std::make_unique<anon::KddAnonymizer>();
  if (scheme == "cga") {
    return std::make_unique<anon::CompleteGraphAnonymizer>();
  }
  if (scheme == "vwcga") {
    return std::make_unique<anon::VaryingWeightCgaAnonymizer>();
  }
  if (util::StartsWith(scheme, "kdegree")) {
    const auto k = util::ParseInt64(scheme.substr(std::strlen("kdegree")));
    return std::make_unique<anon::KDegreeAnonymizer>(
        k.ok() ? static_cast<size_t>(k.value()) : 10);
  }
  if (util::StartsWith(scheme, "bucket")) {
    const auto b = util::ParseInt64(scheme.substr(std::strlen("bucket")));
    return std::make_unique<anon::StrengthBucketingAnonymizer>(
        b.ok() ? static_cast<hin::Strength>(b.value()) : 10);
  }
  return nullptr;
}

int RunGenerate(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("users", "10000", "number of users");
  flags.Define("seed", "1", "rng seed");
  flags.Define("out", "network.graph", "output path (hinpriv-graph format)");
  flags.Define("kdd_prefix", "",
               "also write KDD Cup files <prefix>user_profile.txt / "
               "user_sns.txt / user_action.txt");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli generate").c_str());
    return 0;
  }
  synth::TqqConfig config;
  config.num_users = static_cast<size_t>(flags.GetInt("users"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  if (!graph.ok()) return Fail(graph.status());
  const util::Status saved =
      hin::SaveGraphAuto(graph.value(), flags.GetString("out"));
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %zu users, %zu links, density %.5f\n",
              flags.GetString("out").c_str(), graph.value().num_vertices(),
              graph.value().num_edges(), hin::Density(graph.value()));
  const std::string prefix = flags.GetString("kdd_prefix");
  if (!prefix.empty()) {
    hin::KddCupFiles files;
    files.user_profile = prefix + "user_profile.txt";
    files.user_sns = prefix + "user_sns.txt";
    files.user_action = prefix + "user_action.txt";
    const util::Status kdd = hin::WriteKddCupDataset(graph.value(), files);
    if (!kdd.ok()) return Fail(kdd);
    std::printf("wrote KDD Cup files under prefix '%s'\n", prefix.c_str());
  }
  return 0;
}

int RunGrow(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "base network (hinpriv-graph format)");
  flags.Define("out", "", "grown network output path (empty = don't save)");
  flags.Define("delta_out", "",
               "write the sampled batches as a replayable hinpriv-delta "
               "stream (feed it to 'query --method=apply_delta')");
  flags.Define("batches", "1",
               "growth batches to sample; each batch grows the result of "
               "the previous one (fractions are per batch)");
  flags.Define("new_user_fraction", "0.05",
               "new users per batch, fraction of current users");
  flags.Define("new_edge_fraction", "0.03",
               "new links per batch, fraction of current links");
  flags.Define("attr_growth_prob", "0.3",
               "per user, probability a growable attribute grows");
  flags.Define("attr_growth_max", "50", "max growable-attribute increment");
  flags.Define("strength_growth_prob", "0.1",
               "per growable-strength edge, probability the strength grows");
  flags.Define("strength_growth_max", "3", "max strength increment");
  flags.Define("seed", "7", "rng seed");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli grow").c_str());
    return 0;
  }
  auto base = hin::LoadGraphAuto(flags.GetString("in"));
  if (!base.ok()) return Fail(base.status());

  synth::GrowthConfig growth;
  growth.new_user_fraction = flags.GetDouble("new_user_fraction");
  growth.new_edge_fraction = flags.GetDouble("new_edge_fraction");
  growth.attr_growth_prob = flags.GetDouble("attr_growth_prob");
  growth.attr_growth_max = static_cast<int>(flags.GetInt("attr_growth_max"));
  growth.strength_growth_prob = flags.GetDouble("strength_growth_prob");
  growth.strength_growth_max =
      static_cast<uint32_t>(flags.GetInt("strength_growth_max"));
  const size_t batches =
      static_cast<size_t>(std::max<int64_t>(flags.GetInt("batches"), 1));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  synth::TqqConfig profile_config;

  // First batch copies the base to a heap graph; later batches append to
  // that copy in place, each sampled against the then-current network.
  auto grown = synth::GrowNetworkWithDelta(base.value(), growth,
                                           profile_config, &rng);
  if (!grown.ok()) return Fail(grown.status());
  hin::Graph current = std::move(grown.value().graph);
  std::vector<hin::GraphDelta> deltas;
  deltas.push_back(std::move(grown.value().delta));
  for (size_t b = 1; b < batches; ++b) {
    auto delta =
        synth::SampleGrowthDelta(current, growth, profile_config, &rng);
    if (!delta.ok()) return Fail(delta.status());
    const util::Status applied =
        hin::GraphBuilder::ApplyDelta(&current, delta.value());
    if (!applied.ok()) return Fail(applied);
    deltas.push_back(std::move(delta).value());
  }

  size_t new_vertices = 0, new_edges = 0, attr_bumps = 0;
  for (const hin::GraphDelta& d : deltas) {
    new_vertices += d.new_vertices.size();
    new_edges += d.edge_adds.size();
    attr_bumps += d.attr_bumps.size();
  }
  std::printf("grew %s: %zu batches, +%zu users, +%zu link adds, +%zu "
              "attribute bumps -> %zu users, %zu links\n",
              flags.GetString("in").c_str(), deltas.size(), new_vertices,
              new_edges, attr_bumps, current.num_vertices(),
              current.num_edges());

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    const util::Status saved = hin::SaveGraphAuto(current, out);
    if (!saved.ok()) return Fail(saved);
    std::printf("wrote grown network to %s\n", out.c_str());
  }
  const std::string delta_out = flags.GetString("delta_out");
  if (!delta_out.empty()) {
    const util::Status saved = hin::SaveDeltaStreamToFile(deltas, delta_out);
    if (!saved.ok()) return Fail(saved);
    std::printf("wrote delta stream (%zu batches) to %s\n", deltas.size(),
                delta_out.c_str());
  }
  return 0;
}

int RunAnonymize(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "input graph (hinpriv-graph format)");
  flags.Define("scheme", "kdda",
               "kdda | cga | vwcga | kdegree<k> | bucket<size>");
  flags.Define("out", "anonymized.graph", "published graph output path");
  flags.Define("mapping", "",
               "optional TSV output: anonymized id -> original id "
               "(the ground truth; keep it private!)");
  flags.Define("seed", "2", "rng seed");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli anonymize").c_str());
    return 0;
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  auto anonymizer = MakeAnonymizer(flags.GetString("scheme"));
  if (anonymizer == nullptr) {
    return Fail(util::Status::InvalidArgument("unknown scheme '" +
                                              flags.GetString("scheme") +
                                              "'"));
  }
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto published = anonymizer->Anonymize(graph.value(), &rng);
  if (!published.ok()) return Fail(published.status());
  const util::Status saved =
      hin::SaveGraphAuto(published.value().graph, flags.GetString("out"));
  if (!saved.ok()) return Fail(saved);
  std::printf("published %s via %s: %zu links (was %zu)\n",
              flags.GetString("out").c_str(), anonymizer->name().c_str(),
              published.value().graph.num_edges(),
              graph.value().num_edges());
  const std::string mapping_path = flags.GetString("mapping");
  if (!mapping_path.empty()) {
    std::ofstream out(mapping_path);
    if (!out) {
      return Fail(util::Status::IoError("cannot write " + mapping_path));
    }
    for (hin::VertexId v = 0; v < published.value().to_original.size(); ++v) {
      out << v << '\t' << published.value().to_original[v] << '\n';
    }
    std::printf("ground-truth mapping written to %s\n", mapping_path.c_str());
  }
  return 0;
}

util::Result<std::vector<hin::VertexId>> LoadMapping(const std::string& path,
                                                     size_t expected) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot read " + path);
  std::vector<hin::VertexId> mapping(expected, hin::kInvalidVertex);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::Split(trimmed, '\t');
    if (fields.size() != 2) {
      return util::Status::Corruption("malformed mapping row: " + line);
    }
    auto anon_id = util::ParseUint64(fields[0]);
    auto orig_id = util::ParseUint64(fields[1]);
    if (!anon_id.ok() || !orig_id.ok() || anon_id.value() >= expected) {
      return util::Status::Corruption("bad mapping row: " + line);
    }
    mapping[anon_id.value()] = static_cast<hin::VertexId>(orig_id.value());
  }
  return mapping;
}

// Writes the telemetry outputs the attack subcommand was asked for; called
// once at the end of the run (on the success paths).
int EmitAttackTelemetry(const std::string& metrics_path,
                        const std::string& trace_path) {
  if (!trace_path.empty()) {
    obs::StopTracing();
    const util::Status written = obs::WriteChromeTrace(trace_path);
    if (!written.ok()) return Fail(written);
    std::printf("trace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const util::Status written = obs::WriteMetricsJson(
        obs::MetricsRegistry::Global().Snapshot(), metrics_path);
    if (!written.ok()) return Fail(written);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int RunAttack(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("target", "", "published (anonymized) graph");
  flags.Define("aux", "", "adversary's auxiliary graph");
  flags.Define("mapping", "",
               "optional ground-truth TSV (anonymized id -> aux id) to "
               "score precision");
  flags.Define("max_distance", "2", "max neighbor distance n");
  flags.Define("strip", "false",
               "reconfigured attack: strip majority strengths + saturation "
               "fallback (Section 6.2)");
  flags.Define("out", "", "optional TSV: target id -> candidate count");
  flags.Define("dominance_kernel", "auto",
               "prefilter strength-dominance kernel: auto|scalar|sse2|avx2 "
               "(results are identical across kernels)");
  flags.Define("threads", "1",
               "worker threads; 0 = hardware concurrency. With --mapping "
               "and no --out this runs the across-target parallel "
               "evaluator; otherwise each target's candidate scan is "
               "parallelized in-query (results identical to --threads=1)");
  flags.Define("metrics_json", "",
               "write a metrics snapshot (counters/gauges/histograms) to "
               "this path after the attack");
  flags.Define("trace_out", "",
               "record phase spans and write Chrome trace-event JSON to "
               "this path (load in chrome://tracing or Perfetto)");
  flags.Define("heartbeat_sec", "30",
               "progress line to stderr every N seconds (0 = off)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli attack").c_str());
    return 0;
  }
  const std::string metrics_path = flags.GetString("metrics_json");
  const std::string trace_path = flags.GetString("trace_out");
  // Long attacks stop at a target boundary on SIGINT/SIGTERM and still
  // flush the partial --metrics_json/--trace_out outputs below.
  service::InstallShutdownSignalHandlers();
  if (!trace_path.empty()) {
    obs::SetCurrentThreadName("main");
    obs::StartTracing();
  }
  auto target = hin::LoadGraphAuto(flags.GetString("target"));
  if (!target.ok()) return Fail(target.status());
  auto aux = hin::LoadGraphAuto(flags.GetString("aux"));
  if (!aux.ok()) return Fail(aux.status());

  hin::Graph published = std::move(target).value();
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  if (!core::ParseDominanceKernel(flags.GetString("dominance_kernel"),
                                  &config.dominance_kernel)) {
    return Fail(util::Status::InvalidArgument(
        "invalid --dominance-kernel '" + flags.GetString("dominance_kernel") +
        "' (want auto|scalar|sse2|avx2)"));
  }
  if (flags.GetBool("strip")) {
    auto stripped = core::StripMajorityStrengthLinks(published);
    if (!stripped.ok()) return Fail(stripped.status());
    published = std::move(stripped).value();
    config.saturation_fraction = 0.5;
  }
  core::Dehin dehin(&aux.value(), config);
  const int n = static_cast<int>(flags.GetInt("max_distance"));
  const double heartbeat_sec = flags.GetDouble("heartbeat_sec");

  // One executor serves both parallel shapes: across-target evaluation
  // (one task per target) and the intra-query candidate scan (grains of
  // one target's scan).
  const size_t threads = static_cast<size_t>(flags.GetInt("threads"));
  std::unique_ptr<exec::Executor> pool;
  if (threads != 1) {
    pool = std::make_unique<exec::Executor>(exec::ResolveThreads(threads));
  }

  // Across-target path: score every target through
  // eval::EvaluateAttackParallel (per-worker spans, shared match cache
  // across workers). It reports aggregates only, so a --threads run that
  // needs the per-target TSV falls through to the per-target loop below,
  // which parallelizes inside each query instead.
  if (threads != 1 && !flags.GetString("mapping").empty() &&
      flags.GetString("out").empty()) {
    auto mapping =
        LoadMapping(flags.GetString("mapping"), published.num_vertices());
    if (!mapping.ok()) return Fail(mapping.status());
    eval::ParallelEvalOptions options;
    options.executor = pool.get();
    options.heartbeat_seconds = heartbeat_sec;
    options.cancel = &service::ShutdownToken();
    const eval::AttackMetrics metrics = eval::EvaluateAttackParallel(
        dehin, published, mapping.value(), n, options);
    if (metrics.interrupted) {
      std::printf("interrupted by signal after %zu/%zu targets; partial "
                  "results follow\n",
                  metrics.num_evaluated, metrics.num_targets);
    }
    std::printf(
        "targets: %zu; precision: %.1f%%; truth contained: %zu; mean "
        "candidate set: %.1f of %zu\n",
        metrics.num_targets, 100.0 * metrics.precision,
        metrics.num_containing_truth, metrics.mean_candidate_count,
        aux.value().num_vertices());
    std::printf("prefilter rejects: %.1f%%; cache hits: %.1f%% (kernel %s)\n",
                100.0 * metrics.dehin_stats.PrefilterRejectRate(),
                100.0 * metrics.dehin_stats.CacheHitRate(),
                metrics.dehin_stats.dominance_kernel);
    return EmitAttackTelemetry(metrics_path, trace_path);
  }

  size_t unique = 0;
  double candidate_sum = 0.0;
  std::ofstream out;
  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    out.open(out_path);
    if (!out) return Fail(util::Status::IoError("cannot write " + out_path));
    out << "target_id\tnum_candidates\tcandidates_if_unique\n";
  }
  std::vector<size_t> candidate_counts(published.num_vertices());
  std::vector<hin::VertexId> unique_match(published.num_vertices(),
                                          hin::kInvalidVertex);
  const auto run_start = std::chrono::steady_clock::now();
  auto last_beat = run_start;
  size_t evaluated = 0;
  for (hin::VertexId v = 0; v < published.num_vertices(); ++v) {
    // Stop at a target boundary on SIGINT/SIGTERM; partial per-target
    // output and telemetry are still flushed below.
    if (service::ShutdownToken().ShouldStop()) break;
    std::vector<hin::VertexId> candidates;
    if (pool != nullptr && pool->num_workers() > 1) {
      // Intra-query scan: this one target's candidate scan fans out over
      // the pool; the merged result is bit-identical to the serial call.
      core::Dehin::ParallelScanOptions scan;
      scan.executor = pool.get();
      scan.cancel = &service::ShutdownToken();
      auto result = dehin.DeanonymizeParallel(published, v, n, scan);
      if (!result.ok()) break;  // signal: stop at the target boundary
      candidates = std::move(result).value();
    } else {
      candidates = dehin.Deanonymize(published, v, n);
    }
    ++evaluated;
    candidate_counts[v] = candidates.size();
    candidate_sum += static_cast<double>(candidates.size());
    if (candidates.size() == 1) {
      ++unique;
      unique_match[v] = candidates[0];
    }
    if (out.is_open()) {
      out << v << '\t' << candidates.size() << '\t';
      if (candidates.size() == 1) out << candidates[0];
      out << '\n';
    }
    if (heartbeat_sec > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_beat).count() >=
          heartbeat_sec) {
        last_beat = now;
        std::fprintf(stderr,
                     "[hinpriv] attack progress: %zu/%zu targets (%.1f%%), "
                     "%.1fs elapsed\n",
                     static_cast<size_t>(v) + 1,
                     static_cast<size_t>(published.num_vertices()),
                     100.0 * static_cast<double>(v + 1) /
                         static_cast<double>(published.num_vertices()),
                     std::chrono::duration<double>(now - run_start).count());
      }
    }
  }
  if (evaluated < published.num_vertices()) {
    std::printf("interrupted by signal after %zu/%zu targets; partial "
                "results follow\n",
                evaluated, static_cast<size_t>(published.num_vertices()));
  }
  std::printf("targets: %zu; uniquely matched: %zu (%.1f%%); mean candidate "
              "set: %.1f of %zu\n",
              evaluated, unique,
              100.0 * static_cast<double>(unique) /
                  static_cast<double>(std::max<size_t>(1, evaluated)),
              candidate_sum /
                  static_cast<double>(std::max<size_t>(1, evaluated)),
              aux.value().num_vertices());

  const std::string mapping_path = flags.GetString("mapping");
  if (!mapping_path.empty() && evaluated > 0) {
    auto mapping = LoadMapping(mapping_path, published.num_vertices());
    if (!mapping.ok()) return Fail(mapping.status());
    size_t correct = 0;
    for (hin::VertexId v = 0; v < evaluated; ++v) {
      if (unique_match[v] != hin::kInvalidVertex &&
          unique_match[v] == mapping.value()[v]) {
        ++correct;
      }
    }
    std::printf("scored against ground truth: precision %.1f%%\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(evaluated));
  }
  return EmitAttackTelemetry(metrics_path, trace_path);
}

int RunAudit(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "graph to audit (hinpriv-graph format)");
  flags.Define("max_distance", "3", "deepest distance to audit");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli audit").c_str());
    return 0;
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  core::SignatureOptions options;
  const size_t num_attrs = graph.value().num_attributes(0);
  for (hin::AttributeId a = 0; a < num_attrs; ++a) {
    options.attributes.push_back(a);
  }
  options.link_types = core::AllLinkTypes(graph.value());
  const auto ladder = core::NetworkPrivacyRisk(
      graph.value(), options, static_cast<int>(flags.GetInt("max_distance")));
  std::printf("privacy risk of %s (%zu users):\n",
              flags.GetString("in").c_str(), graph.value().num_vertices());
  for (const auto& level : ladder) {
    std::printf("  n = %d: R(T) = %.4f (cardinality %zu)\n",
                level.max_distance, level.risk, level.cardinality);
  }
  return 0;
}

// Renders one `stats` admin response as a compact operator view: health
// line, windowed rates/percentiles, per-distance counters, and the
// slow-query log, worst first.
void PrintLiveStats(const service::JsonValue& result) {
  std::printf("health: %-9s uptime: %.1fs   queue: %lld/%lld   workers: %lld"
              "   tracing: %s\n",
              result.GetString("health", "unknown").c_str(),
              result.GetDouble("uptime_sec"),
              static_cast<long long>(result.GetInt("queue_depth")),
              static_cast<long long>(result.GetInt("queue_capacity")),
              static_cast<long long>(result.GetInt("num_workers")),
              result.GetBool("tracing") ? "on" : "off");
  std::printf("requests: %lld received, %lld ok, %lld shed, %lld "
              "deadline-missed\n",
              static_cast<long long>(result.GetInt("requests_received")),
              static_cast<long long>(result.GetInt("responses_ok")),
              static_cast<long long>(result.GetInt("shed")),
              static_cast<long long>(result.GetInt("deadline_exceeded")));
  if (const service::JsonValue* dehin = result.Find("dehin");
      dehin != nullptr) {
    std::printf("cache: %lld hits, %lld full tests (hit rate %.3f)   "
                "prefilter rejects: %lld\n",
                static_cast<long long>(dehin->GetInt("cache_hits")),
                static_cast<long long>(dehin->GetInt("full_tests")),
                dehin->GetDouble("cache_hit_rate"),
                static_cast<long long>(dehin->GetInt("prefilter_rejects")));
  }
  if (const service::JsonValue* windows = result.Find("windows");
      windows != nullptr && windows->is_array()) {
    std::printf("%-8s %10s %8s %8s %9s %9s %9s %7s\n", "window", "qps",
                "shed/s", "miss/s", "p50_us", "p95_us", "p99_us", "n");
    for (const service::JsonValue& w : windows->items()) {
      const service::JsonValue* latency = w.Find("latency");
      std::printf("%-8s %10.1f %8.2f %8.2f %9.0f %9.0f %9.0f %7lld\n",
                  (util::FormatDouble(w.GetDouble("requested_window_sec"), 0) +
                   "s (" + util::FormatDouble(w.GetDouble("window_sec"), 1) +
                   ")")
                      .c_str(),
                  w.GetDouble("qps"), w.GetDouble("shed_per_sec"),
                  w.GetDouble("deadline_miss_per_sec"),
                  latency != nullptr ? latency->GetDouble("p50_us") : 0.0,
                  latency != nullptr ? latency->GetDouble("p95_us") : 0.0,
                  latency != nullptr ? latency->GetDouble("p99_us") : 0.0,
                  static_cast<long long>(
                      latency != nullptr ? latency->GetInt("count") : 0));
    }
  }
  if (const service::JsonValue* per_distance = result.Find("per_distance");
      per_distance != nullptr && !per_distance->members().empty()) {
    std::printf("per-distance:");
    for (const auto& [name, slot] : per_distance->members()) {
      std::printf("  %s: %lld attacks / %lld deanonymized", name.c_str(),
                  static_cast<long long>(slot.GetInt("attacks")),
                  static_cast<long long>(slot.GetInt("deanonymized")));
    }
    std::printf("\n");
  }
  if (const service::JsonValue* slow = result.Find("slow_queries");
      slow != nullptr && slow->size() > 0) {
    std::printf("slow queries (worst first):\n");
    for (const service::JsonValue& q : slow->items()) {
      std::printf("  rid=%-6lld %-10s", static_cast<long long>(q.GetInt("rid")),
                  q.GetString("method").c_str());
      if (const service::JsonValue* target = q.Find("target");
          target != nullptr) {
        std::printf(" target=%lld", static_cast<long long>(target->AsInt()));
      }
      std::printf(" d=%lld %s total=%lldus (queue=%lld run=%lld write=%lld)\n",
                  static_cast<long long>(q.GetInt("max_distance")),
                  q.GetString("code").c_str(),
                  static_cast<long long>(q.GetInt("total_us")),
                  static_cast<long long>(q.GetInt("queue_us")),
                  static_cast<long long>(q.GetInt("run_us")),
                  static_cast<long long>(q.GetInt("write_us")));
    }
  }
}

// Live mode of `stats`: one round-trip to a running serve instance, or a
// terminal dashboard refreshed every --watch seconds until interrupted.
int RunLiveStats(const std::string& host, uint16_t port, double watch_sec) {
  if (watch_sec > 0) service::InstallShutdownSignalHandlers();
  auto client = service::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  while (true) {
    auto response = client.value().Stats();
    if (!response.ok()) return Fail(response.status());
    if (response.value().code != service::ResponseCode::kOk) {
      return Fail(util::Status::FailedPrecondition(
          std::string("stats request failed: ") +
          service::ResponseCodeName(response.value().code) + " " +
          response.value().error));
    }
    if (watch_sec > 0) {
      // ANSI clear-screen keeps the dashboard in place between refreshes.
      std::printf("\x1b[2J\x1b[H");
    }
    PrintLiveStats(response.value().result);
    std::fflush(stdout);
    if (watch_sec <= 0) return 0;
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(watch_sec));
    while (std::chrono::steady_clock::now() < wake) {
      if (service::ShutdownToken().cancelled()) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

int RunStats(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "graph (hinpriv-graph format)");
  flags.Define("host", "127.0.0.1", "live mode: server address");
  flags.Define("port", "0",
               "live mode: poll a running serve instance on this port "
               "instead of reading --in");
  flags.Define("watch", "0",
               "live mode: refresh every N seconds until interrupted "
               "(0 = print once)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli stats").c_str());
    return 0;
  }
  if (flags.GetInt("port") > 0) {
    return RunLiveStats(flags.GetString("host"),
                        static_cast<uint16_t>(flags.GetInt("port")),
                        flags.GetDouble("watch"));
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  const hin::Graph& g = graph.value();
  std::printf("vertices: %zu   links: %zu   density: %.6f   mean out-degree: "
              "%.2f   in-degree Gini: %.3f\n",
              g.num_vertices(), g.num_edges(), hin::Density(g),
              hin::MeanOutDegree(g), hin::InDegreeGini(g));
  for (hin::LinkTypeId lt = 0; lt < g.num_link_types(); ++lt) {
    auto histogram = hin::OutDegreeHistogram(g, lt);
    size_t edges = 0;
    for (const auto& [degree, count] : histogram) edges += degree * count;
    histogram.erase(0);
    auto alpha = hin::EstimatePowerLawAlpha(histogram, 3);
    std::printf("  %-10s: %8zu links, out-degree power-law alpha: %s\n",
                g.schema().link_type(lt).name.c_str(), edges,
                alpha.ok() ? util::FormatDouble(alpha.value(), 2).c_str()
                           : "n/a");
  }
  return 0;
}

int RunConvert(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "input graph (either format, auto-detected)");
  flags.Define("out", "",
               "output path (.bin/.bgraph => binary, else text)");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli convert").c_str());
    return 0;
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  const util::Status saved = hin::SaveGraphAuto(graph.value(), flags.GetString("out"));
  if (!saved.ok()) return Fail(saved);
  std::printf("converted %s -> %s (%zu vertices, %zu links)\n",
              flags.GetString("in").c_str(), flags.GetString("out").c_str(),
              graph.value().num_vertices(), graph.value().num_edges());
  return 0;
}

int RunSnapshot(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "input graph (any format, auto-detected)");
  flags.Define("out", "", "snapshot output path (conventionally .snap)");
  flags.Define("verify", "false",
               "re-load the written snapshot with the full O(E) edge "
               "payload scan before reporting success");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli snapshot").c_str());
    return 0;
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  const std::string out = flags.GetString("out");
  const util::Status saved = hin::SaveGraphSnapshot(graph.value(), out);
  if (!saved.ok()) return Fail(saved);
  if (flags.GetBool("verify")) {
    hin::SnapshotOptions options;
    options.verify_edges = true;
    auto reloaded = hin::LoadGraphSnapshot(out, options);
    if (!reloaded.ok()) return Fail(reloaded.status());
    if (reloaded.value().num_vertices() != graph.value().num_vertices() ||
        reloaded.value().num_edges() != graph.value().num_edges()) {
      return Fail(util::Status::Corruption(
          "snapshot verification found a vertex/edge count mismatch"));
    }
  }
  std::printf("snapshot %s -> %s (%zu vertices, %zu links%s)\n",
              flags.GetString("in").c_str(), out.c_str(),
              graph.value().num_vertices(), graph.value().num_edges(),
              flags.GetBool("verify") ? ", verified" : "");
  return 0;
}

int RunProject(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("in", "", "full t.qq-schema graph (users/tweets/comments)");
  flags.Define("out", "projected.graph", "projected target-schema output");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli project").c_str());
    return 0;
  }
  auto graph = hin::LoadGraphAuto(flags.GetString("in"));
  if (!graph.ok()) return Fail(graph.status());
  if (graph.value().schema().FindEntityType(hin::kUserType) ==
          hin::kInvalidEntityType ||
      graph.value().schema().FindLinkType("post_tweet") ==
          hin::kInvalidLinkType) {
    return Fail(util::Status::InvalidArgument(
        "input does not follow the full t.qq schema (hin::TqqFullSchema)"));
  }
  auto projected = hin::ProjectGraph(
      graph.value(), hin::TqqTargetSpec(graph.value().schema()));
  if (!projected.ok()) return Fail(projected.status());
  const util::Status saved =
      hin::SaveGraphAuto(projected.value().graph, flags.GetString("out"));
  if (!saved.ok()) return Fail(saved);
  std::printf("projected %zu-entity full network onto %zu users / %zu "
              "target-schema links -> %s\n",
              graph.value().num_vertices(),
              projected.value().graph.num_vertices(),
              projected.value().graph.num_edges(),
              flags.GetString("out").c_str());
  return 0;
}

int RunServe(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("target", "", "published (anonymized) graph to serve");
  flags.Define("aux", "", "adversary's auxiliary graph");
  flags.Define("snapshot", "",
               "mmap the auxiliary graph from this HINPRIVS snapshot "
               "instead of --aux (instant warmstart; pages shared between "
               "replicas mapping the same file)");
  flags.Define("mlock", "false",
               "with --snapshot: pin the mapping in RAM so queries never "
               "take a page-cache miss (soft-fails under RLIMIT_MEMLOCK)");
  flags.Define("host", "127.0.0.1",
               "IPv4 listen address (keep the service on loopback: it hands "
               "out de-anonymization results)");
  flags.Define("port", "7470", "TCP port (0 = kernel-assigned, printed)");
  flags.Define("workers", "4", "worker pool size");
  flags.Define("threads", "-1",
               "execution pool size shared by request handling and "
               "intra-query scans (-1 = use --workers, 0 = hardware "
               "concurrency)");
  flags.Define("parallel_scan", "true",
               "fan one attack_one query's candidate scan out across the "
               "pool (needs >1 thread; results identical either way)");
  flags.Define("queue_capacity", "128",
               "request queue bound; a full queue sheds with BUSY");
  flags.Define("max_batch", "8",
               "micro-batch size for compatible queued requests (1 = off)");
  flags.Define("max_distance", "1",
               "default max neighbor distance for requests that omit it");
  flags.Define("deadline_ms", "0",
               "default per-request deadline in ms (0 = none)");
  flags.Define("dominance_kernel", "auto",
               "prefilter strength-dominance kernel: auto|scalar|sse2|avx2");
  flags.Define("metrics_json", "",
               "write a final metrics snapshot to this path on shutdown");
  flags.Define("trace_out", "",
               "record phase spans and write Chrome trace-event JSON to "
               "this path on shutdown");
  flags.Define("heartbeat_sec", "0",
               "print a one-line self-report (q/s, queue depth, p99, "
               "health) to stderr every N seconds (0 = off)");
  flags.Define("shards", "0",
               "run a sharded scatter-gather tier: hash-partition the "
               "auxiliary graph into N shard servers behind one "
               "coordinator on --host:--port (0 = single unsharded "
               "server)");
  flags.Define("halo_depth", "-1",
               "shard slice halo depth; attack_one up to this "
               "max_distance is bit-identical to the unsharded scan and "
               "deeper requests are rejected (-1 = --max_distance)");
  flags.Define("shard_dir", "",
               "persist per-shard slice snapshots in this directory and "
               "mmap them on later runs (empty = extract in memory)");
  flags.Define("shard_workers", "2", "worker pool size of each shard server");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli serve").c_str());
    return 0;
  }
  const std::string trace_path = flags.GetString("trace_out");
  if (!trace_path.empty()) {
    obs::SetCurrentThreadName("main");
    obs::StartTracing();
  }
  auto target = hin::LoadGraphAuto(flags.GetString("target"));
  if (!target.ok()) return Fail(target.status());
  const std::string snapshot_path = flags.GetString("snapshot");
  auto aux = [&]() -> util::Result<hin::Graph> {
    if (!snapshot_path.empty()) {
      hin::SnapshotOptions options;
      options.mlock = flags.GetBool("mlock");
      return hin::LoadGraphSnapshot(snapshot_path, options);
    }
    return hin::LoadGraphAuto(flags.GetString("aux"));
  }();
  if (!aux.ok()) return Fail(aux.status());
  if (!snapshot_path.empty()) {
    std::printf("auxiliary graph mapped from snapshot %s (%zu vertices, "
                "%zu links%s)\n",
                snapshot_path.c_str(), aux.value().num_vertices(),
                aux.value().num_edges(),
                flags.GetBool("mlock") ? ", mlocked" : "");
  }

  service::ServerConfig config;
  config.host = flags.GetString("host");
  config.port = static_cast<uint16_t>(flags.GetInt("port"));
  config.num_workers = static_cast<size_t>(flags.GetInt("workers"));
  const int64_t serve_threads = flags.GetInt("threads");
  if (serve_threads >= 0) {
    config.num_workers =
        exec::ResolveThreads(static_cast<size_t>(serve_threads));
  }
  config.parallel_scan = flags.GetBool("parallel_scan");
  config.queue_capacity = static_cast<size_t>(flags.GetInt("queue_capacity"));
  config.max_batch = static_cast<size_t>(flags.GetInt("max_batch"));
  config.default_max_distance = static_cast<int>(flags.GetInt("max_distance"));
  config.default_deadline_ms = flags.GetDouble("deadline_ms");
  config.metrics_json_path = flags.GetString("metrics_json");
  config.dehin.match = core::DefaultTqqMatchOptions();
  config.dehin.max_distance = config.default_max_distance;
  if (!core::ParseDominanceKernel(flags.GetString("dominance_kernel"),
                                  &config.dehin.dominance_kernel)) {
    return Fail(util::Status::InvalidArgument(
        "invalid --dominance_kernel '" + flags.GetString("dominance_kernel") +
        "' (want auto|scalar|sse2|avx2)"));
  }

  service::InstallShutdownSignalHandlers();
  const size_t shards =
      static_cast<size_t>(std::max<int64_t>(flags.GetInt("shards"), 0));
  std::unique_ptr<service::Server> server;
  std::unique_ptr<shard::ShardTier> tier;
  service::Server* front = nullptr;
  if (shards > 0) {
    shard::ShardTierConfig tier_config;
    tier_config.num_shards = shards;
    const int64_t halo = flags.GetInt("halo_depth");
    tier_config.halo_depth =
        halo >= 0 ? static_cast<int>(halo) : config.default_max_distance;
    const std::string shard_dir = flags.GetString("shard_dir");
    if (!shard_dir.empty()) tier_config.slice_prefix = shard_dir + "/aux";
    tier_config.snapshot.mlock = flags.GetBool("mlock");
    tier_config.shard_server = config;
    tier_config.shard_server.num_workers =
        static_cast<size_t>(flags.GetInt("shard_workers"));
    tier_config.shard_server.metrics_json_path.clear();
    tier_config.coordinator = config;
    tier = std::make_unique<shard::ShardTier>(&target.value(), &aux.value(),
                                              std::move(tier_config));
    status = tier->Start();
    if (!status.ok()) return Fail(status);
    front = tier->coordinator();
    size_t min_owned = aux.value().num_vertices();
    size_t max_owned = 0;
    for (size_t owned : tier->owned_counts()) {
      min_owned = std::min(min_owned, owned);
      max_owned = std::max(max_owned, owned);
    }
    std::printf("serving %s (aux %s) on %s:%u — %zu shards (halo depth %zu, "
                "owned %zu–%zu vertices, %lld workers each), coordinator "
                "queue %zu; SIGINT/SIGTERM drains gracefully\n",
                flags.GetString("target").c_str(),
                (snapshot_path.empty() ? flags.GetString("aux")
                                       : snapshot_path).c_str(),
                config.host.c_str(), static_cast<unsigned>(front->port()),
                tier->num_shards(),
                static_cast<size_t>(tier_config.halo_depth), min_owned,
                max_owned,
                static_cast<long long>(flags.GetInt("shard_workers")),
                config.queue_capacity);
  } else {
    // Streaming growth works only against the heap arena — a mapped
    // snapshot is immutable by construction and a shard tier would need
    // re-partitioning. apply_delta against other configurations is
    // rejected with INVALID_REQUEST.
    if (snapshot_path.empty()) config.mutable_aux = &aux.value();
    server = std::make_unique<service::Server>(&target.value(), &aux.value(),
                                               config);
    status = server->Start();
    if (!status.ok()) return Fail(status);
    front = server.get();
    std::printf("serving %s (aux %s) on %s:%u — %zu workers, queue %zu, "
                "batch %zu; SIGINT/SIGTERM drains gracefully\n",
                flags.GetString("target").c_str(),
                (snapshot_path.empty() ? flags.GetString("aux")
                                       : snapshot_path).c_str(),
                config.host.c_str(),
                static_cast<unsigned>(front->port()), config.num_workers,
                config.queue_capacity, config.max_batch);
  }
  std::fflush(stdout);

  const double heartbeat_sec = flags.GetDouble("heartbeat_sec");
  auto next_heartbeat =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(heartbeat_sec, 0.0)));
  while (!service::ShutdownToken().cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (heartbeat_sec > 0 &&
        std::chrono::steady_clock::now() >= next_heartbeat) {
      // Self-report through the same windowed aggregator the stats verb
      // reads, so the log line and a live `stats --watch` agree.
      const service::Server::LiveStats live = front->Live(heartbeat_sec);
      std::fprintf(stderr,
                   "[serve] health=%s qps=%.1f p99=%.0fus queue=%zu "
                   "received=%llu (%.1fs window)\n",
                   service::HealthStateName(live.health), live.qps,
                   live.p99_us, live.queue_depth,
                   static_cast<unsigned long long>(live.requests_received),
                   live.window_sec);
      next_heartbeat +=
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(heartbeat_sec));
    }
  }
  std::printf("shutdown signal received; draining in-flight requests\n");
  if (tier != nullptr) {
    tier->Shutdown();
  } else {
    server->Shutdown();
  }
  if (!trace_path.empty()) {
    obs::StopTracing();
    const util::Status written = obs::WriteChromeTrace(trace_path);
    if (!written.ok()) return Fail(written);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!config.metrics_json_path.empty()) {
    std::printf("final metrics snapshot written to %s\n",
                config.metrics_json_path.c_str());
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("host", "127.0.0.1", "server address");
  flags.Define("port", "7470", "server port");
  flags.Define("method", "stats",
               "attack_one | risk | stats | sleep | health | metrics | "
               "trace_start | trace_stop | trace_dump | apply_delta");
  flags.Define("target_id", "-1",
               "anonymized vertex id (required for attack_one; optional for "
               "risk: present = per-entity R(t), absent = network R(T))");
  flags.Define("max_distance", "-1",
               "max neighbor distance (-1 = server default)");
  flags.Define("deadline_ms", "0", "per-request deadline in ms (0 = none)");
  flags.Define("sleep_ms", "0", "sleep method only: how long to hold a worker");
  flags.Define("path", "",
               "metrics / trace_dump: server-side output path (required for "
               "traces larger than one frame); apply_delta: server-side "
               "hinpriv-delta stream to replay (see 'grow --delta-out')");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail(status);
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("hinpriv_cli query").c_str());
    return 0;
  }
  const auto method = service::ParseMethod(flags.GetString("method"));
  if (!method.has_value()) {
    return Fail(util::Status::InvalidArgument(
        "unknown method '" + flags.GetString("method") +
        "' (want attack_one|risk|stats|sleep|health|metrics|trace_start|"
        "trace_stop|trace_dump|apply_delta)"));
  }
  auto client = service::Client::Connect(
      flags.GetString("host"), static_cast<uint16_t>(flags.GetInt("port")));
  if (!client.ok()) return Fail(client.status());

  service::Request request;
  request.id = 1;
  request.method = *method;
  const int64_t target_id = flags.GetInt("target_id");
  if (target_id >= 0) {
    request.target = static_cast<hin::VertexId>(target_id);
    request.has_target = true;
  }
  request.max_distance = static_cast<int>(flags.GetInt("max_distance"));
  request.deadline_ms = flags.GetDouble("deadline_ms");
  request.sleep_ms = flags.GetDouble("sleep_ms");
  request.path = flags.GetString("path");

  auto response = client.value().Call(request);
  if (!response.ok()) return Fail(response.status());
  // The response document goes to stdout verbatim, so `query` composes
  // with jq and scripts; the exit code reflects the protocol code.
  std::printf("%s\n",
              service::EncodeResponse(response.value()).Serialize().c_str());
  return response.value().code == service::ResponseCode::kOk ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // Subcommands reparse argv without the command token.
  if (command == "generate") return RunGenerate(argc - 1, argv + 1);
  if (command == "grow") return RunGrow(argc - 1, argv + 1);
  if (command == "anonymize") return RunAnonymize(argc - 1, argv + 1);
  if (command == "attack") return RunAttack(argc - 1, argv + 1);
  if (command == "audit") return RunAudit(argc - 1, argv + 1);
  if (command == "stats") return RunStats(argc - 1, argv + 1);
  if (command == "convert") return RunConvert(argc - 1, argv + 1);
  if (command == "snapshot") return RunSnapshot(argc - 1, argv + 1);
  if (command == "project") return RunProject(argc - 1, argv + 1);
  if (command == "serve") return RunServe(argc - 1, argv + 1);
  if (command == "query") return RunQuery(argc - 1, argv + 1);
  if (command == "--help" || command == "-h") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace hinpriv::cli

int main(int argc, char** argv) { return hinpriv::cli::Main(argc, argv); }
