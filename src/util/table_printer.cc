#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

namespace hinpriv::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    os << "|";
    for (size_t pad = 0; pad < widths[c] + 2; ++pad) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintTsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << '\t';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hinpriv::util
