#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace hinpriv::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextU64());
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::PowerLaw(uint64_t k_min, uint64_t k_max, double alpha) {
  assert(k_min >= 1 && k_min <= k_max && alpha > 1.0);
  if (k_min == k_max) return k_min;
  // Inverse CDF of the continuous power law on [k_min, k_max + 1):
  //   x = ((hi^(1-a) - lo^(1-a)) * u + lo^(1-a))^(1/(1-a))
  const double one_minus_a = 1.0 - alpha;
  const double lo_pow = std::pow(static_cast<double>(k_min), one_minus_a);
  const double hi_pow = std::pow(static_cast<double>(k_max) + 1.0, one_minus_a);
  const double u = UniformDouble();
  const double x = std::pow((hi_pow - lo_pow) * u + lo_pow, 1.0 / one_minus_a);
  uint64_t k = static_cast<uint64_t>(x);
  return std::clamp(k, k_min, k_max);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> result;
  result.reserve(k);
  if (k == 0) return result;
  // For small k relative to n, Floyd's algorithm would avoid materializing
  // [0, n); the library only draws samples where n fits in memory, so the
  // simple partial Fisher-Yates keeps the sampling distribution obvious.
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; ++i) idx[i] = i;
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + UniformU64(n - i);
    std::swap(idx[i], idx[j]);
    result.push_back(idx[i]);
  }
  return result;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace hinpriv::util
