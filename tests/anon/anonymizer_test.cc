#include "anon/anonymizer.h"

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::anon {
namespace {

hin::Graph MakeGraph(size_t users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(PermuteVerticesTest, ToOriginalIsAPermutation) {
  const hin::Graph graph = MakeGraph(500, 1);
  util::Rng rng(2);
  auto result = PermuteVertices(graph, &rng);
  ASSERT_TRUE(result.ok());
  std::set<hin::VertexId> seen(result.value().to_original.begin(),
                               result.value().to_original.end());
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 499u);
}

TEST(PermuteVerticesTest, GraphIsIsomorphicUnderMapping) {
  const hin::Graph graph = MakeGraph(400, 3);
  util::Rng rng(4);
  auto result = PermuteVertices(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  const auto& to_original = result.value().to_original;

  EXPECT_EQ(anon.num_vertices(), graph.num_vertices());
  EXPECT_EQ(anon.num_edges(), graph.num_edges());
  std::vector<hin::VertexId> to_new(graph.num_vertices());
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    to_new[to_original[v]] = v;
  }
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    const hin::VertexId orig = to_original[v];
    for (hin::AttributeId a = 0; a < 4; ++a) {
      ASSERT_EQ(anon.attribute(v, a), graph.attribute(orig, a));
    }
    for (hin::LinkTypeId lt = 0; lt < graph.num_link_types(); ++lt) {
      ASSERT_EQ(anon.OutDegree(lt, v), graph.OutDegree(lt, orig));
      for (const hin::Edge& e : graph.OutEdges(lt, orig)) {
        ASSERT_EQ(anon.EdgeStrength(lt, v, to_new[e.neighbor]), e.strength);
      }
    }
  }
}

TEST(PermuteVerticesTest, ActuallyShufflesIds) {
  const hin::Graph graph = MakeGraph(300, 5);
  util::Rng rng(6);
  auto result = PermuteVertices(graph, &rng);
  ASSERT_TRUE(result.ok());
  size_t fixed_points = 0;
  for (hin::VertexId v = 0; v < 300; ++v) {
    if (result.value().to_original[v] == v) ++fixed_points;
  }
  // A uniform permutation has ~1 expected fixed point.
  EXPECT_LT(fixed_points, 20u);
}

TEST(KddAnonymizerTest, NameAndBehaviour) {
  KddAnonymizer anonymizer;
  EXPECT_EQ(anonymizer.name(), "KDDA");
  const hin::Graph graph = MakeGraph(200, 7);
  util::Rng rng(8);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  // KDDA adds no fake links.
  EXPECT_EQ(result.value().graph.num_edges(), graph.num_edges());
}

TEST(PermuteVerticesTest, EmptyGraph) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  util::Rng rng(9);
  auto result = PermuteVertices(graph.value(), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.num_vertices(), 0u);
}

}  // namespace
}  // namespace hinpriv::anon
