#ifndef HINPRIV_HIN_DENSITY_H_
#define HINPRIV_HIN_DENSITY_H_

#include <cstddef>

#include "hin/graph.h"

namespace hinpriv::hin {

// Heterogeneous network density (Equation 4 of the paper):
//
//   density = |E| / ( m * |V|^2  +  (|L| - m) * |V| * (|V| - 1) )
//
// where |E| counts directed edges across all link types, |L| is the number
// of link types, and m is the number of link types that allow self-links.
// The denominator is the maximum possible number of edges, so the value is
// always in [0, 1]. Returns 0.0 for graphs with fewer than 2 vertices or no
// link types.
double Density(const Graph& graph);

// Same formula from raw counts, for planning edge budgets before a graph
// exists (used by the synthetic generators to hit a requested density).
double DensityFromCounts(size_t num_edges, size_t num_vertices,
                         size_t num_link_types, size_t num_self_link_types);

// Inverse of DensityFromCounts: the number of directed edges needed to hit
// `density` with the given vertex/link-type counts (rounded to nearest).
size_t EdgesForDensity(double density, size_t num_vertices,
                       size_t num_link_types, size_t num_self_link_types);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_DENSITY_H_
