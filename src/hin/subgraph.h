#ifndef HINPRIV_HIN_SUBGRAPH_H_
#define HINPRIV_HIN_SUBGRAPH_H_

#include <vector>

#include "hin/graph.h"
#include "hin/types.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::hin {

// An induced subgraph plus the mapping back to the parent graph.
struct SubgraphResult {
  Graph graph;
  // to_parent[sub-vertex-id] = vertex id in the parent graph.
  std::vector<VertexId> to_parent;
};

// Extracts the vertex-induced subgraph on `vertices` (all edges among them
// are preserved, matching the paper's target-graph sampling procedure).
// Vertex ids in the subgraph follow the order of `vertices`; duplicates or
// out-of-range ids are an error.
util::Result<SubgraphResult> InducedSubgraph(
    const Graph& parent, const std::vector<VertexId>& vertices);

// A seed set plus its n-hop neighborhood closure, extracted as one induced
// subgraph. Sub-ids [0, num_seeds) are the seeds in their given order;
// halo vertices follow in BFS discovery order. Built for the sharded
// attack tier: with depth >= the attack's max neighbor distance n, every
// vertex within distance n-1 of a seed keeps its complete neighborhood
// (all its neighbors are within distance n and therefore included), and
// distance-n vertices — which the LinkMatch recursion only consults for
// profile attributes and the strength of the already-included connecting
// edge — keep those too, so per-seed candidate verdicts computed on the
// shard are bit-identical to the full graph's.
struct HaloSubgraphResult {
  Graph graph;
  // to_parent[sub-vertex-id] = vertex id in the parent graph.
  std::vector<VertexId> to_parent;
  // Seed count: sub-ids < num_seeds are seeds, the rest are halo.
  size_t num_seeds = 0;
};

// Extracts the induced subgraph on `seeds` plus every vertex reachable
// from them within `depth` hops, following all link types in both
// directions (a superset of any MatchOptions' traversal, so the
// completeness guarantee above holds regardless of match configuration).
// Duplicate or out-of-range seeds are an error; depth < 0 is treated as 0.
util::Result<HaloSubgraphResult> HaloInducedSubgraph(
    const Graph& parent, const std::vector<VertexId>& seeds, int depth);

// Uniformly samples `count` distinct vertices (paper Section 6.1: "vertices
// are randomly sampled and all the edges among them are preserved") and
// extracts the induced subgraph. When `entity_type` is valid, sampling is
// restricted to vertices of that type.
util::Result<SubgraphResult> SampleInducedSubgraph(
    const Graph& parent, size_t count, util::Rng* rng,
    EntityTypeId entity_type = kInvalidEntityType);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_SUBGRAPH_H_
