#include "anon/utility_tradeoff_anonymizers.h"

#include <algorithm>

#include "hin/graph_builder.h"

namespace hinpriv::anon {

util::Result<AnonymizedGraph> StrengthBucketingAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  if (bucket_ == 0) {
    return util::Status::InvalidArgument("bucket size must be >= 1");
  }
  auto permuted = PermuteVertices(target, rng);
  if (!permuted.ok()) return permuted.status();
  const hin::Graph& base = permuted.value().graph;

  hin::GraphBuilder builder(base.schema());
  HINPRIV_RETURN_IF_ERROR(hin::CopyVerticesWithAttributes(base, &builder));
  for (hin::LinkTypeId lt = 0; lt < base.num_link_types(); ++lt) {
    const bool bucketed = base.schema().link_type(lt).growable_strength;
    for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
      for (const hin::Edge& e : base.OutEdges(lt, v)) {
        const hin::Strength strength =
            bucketed ? 1 + ((e.strength - 1) / bucket_) * bucket_
                     : e.strength;
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, e.neighbor, lt, strength));
      }
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(),
                         std::move(permuted).value().to_original};
}

std::string LinkTypeDroppingAnonymizer::name() const {
  std::string out = "DROP-TO";
  for (hin::LinkTypeId lt : kept_) out += "-" + std::to_string(lt);
  return out;
}

util::Result<AnonymizedGraph> LinkTypeDroppingAnonymizer::Anonymize(
    const hin::Graph& target, util::Rng* rng) const {
  for (hin::LinkTypeId lt : kept_) {
    if (lt >= target.num_link_types()) {
      return util::Status::InvalidArgument("kept link type out of range");
    }
  }
  auto permuted = PermuteVertices(target, rng);
  if (!permuted.ok()) return permuted.status();
  const hin::Graph& base = permuted.value().graph;

  hin::GraphBuilder builder(base.schema());
  HINPRIV_RETURN_IF_ERROR(hin::CopyVerticesWithAttributes(base, &builder));
  for (hin::LinkTypeId lt : kept_) {
    for (hin::VertexId v = 0; v < base.num_vertices(); ++v) {
      for (const hin::Edge& e : base.OutEdges(lt, v)) {
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, e.neighbor, lt, e.strength));
      }
    }
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return AnonymizedGraph{std::move(built).value(),
                         std::move(permuted).value().to_original};
}

}  // namespace hinpriv::anon
