// End-to-end integration tests over the full Section 6 pipeline:
// synthesize -> plant -> grow -> anonymize -> attack -> score.

#include <gtest/gtest.h>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace hinpriv {
namespace {

eval::ExperimentDataset BuildDataset(const anon::Anonymizer& anonymizer,
                                     bool strip, double density,
                                     uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = 20000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 1000;
  spec.density = density;
  util::Rng rng(seed);
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, strip, &rng);
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

core::DehinConfig AttackConfig(bool reconfigured) {
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  if (reconfigured) config.saturation_fraction = 0.5;
  return config;
}

TEST(PipelineTest, KddaHighDensityAttackSucceeds) {
  const auto dataset =
      BuildDataset(anon::KddAnonymizer(), false, 0.01, 1);
  core::Dehin dehin(&dataset.auxiliary, AttackConfig(false));
  const auto d0 = eval::EvaluateAttack(dehin, dataset.target,
                                       dataset.ground_truth, 0);
  const auto d1 = eval::EvaluateAttack(dehin, dataset.target,
                                       dataset.ground_truth, 1);
  // Paper Table 2 shape at density 0.01: low precision at distance 0,
  // dominant at distance 1, soundness always.
  EXPECT_LT(d0.precision, 0.35);
  EXPECT_GT(d1.precision, 0.7);
  EXPECT_EQ(d0.num_containing_truth, d0.num_targets);
  EXPECT_EQ(d1.num_containing_truth, d1.num_targets);
  EXPECT_GT(d1.reduction_rate, d0.reduction_rate);
}

TEST(PipelineTest, PrecisionIncreasesWithDensity) {
  const auto sparse = BuildDataset(anon::KddAnonymizer(), false, 0.001, 2);
  const auto dense = BuildDataset(anon::KddAnonymizer(), false, 0.01, 2);
  core::Dehin attack_sparse(&sparse.auxiliary, AttackConfig(false));
  core::Dehin attack_dense(&dense.auxiliary, AttackConfig(false));
  const auto m_sparse =
      eval::EvaluateAttack(attack_sparse, sparse.target, sparse.ground_truth, 1);
  const auto m_dense =
      eval::EvaluateAttack(attack_dense, dense.target, dense.ground_truth, 1);
  EXPECT_GT(m_dense.precision, m_sparse.precision + 0.2);
}

TEST(PipelineTest, MoreLinkTypesImprovePrecision) {
  const auto dataset = BuildDataset(anon::KddAnonymizer(), false, 0.01, 3);
  core::DehinConfig follow_only = AttackConfig(false);
  follow_only.match.link_types = {hin::kFollowLink};
  core::Dehin weak(&dataset.auxiliary, follow_only);
  core::Dehin strong(&dataset.auxiliary, AttackConfig(false));
  const auto m_weak =
      eval::EvaluateAttack(weak, dataset.target, dataset.ground_truth, 1);
  const auto m_strong =
      eval::EvaluateAttack(strong, dataset.target, dataset.ground_truth, 1);
  EXPECT_GE(m_strong.precision, m_weak.precision);
  EXPECT_GT(m_strong.precision, m_weak.precision - 1e-9);
}

TEST(PipelineTest, ReconfiguredAttackBeatsCga) {
  const auto dataset = BuildDataset(anon::CompleteGraphAnonymizer(),
                                    /*strip=*/true, 0.01, 4);
  core::Dehin dehin(&dataset.auxiliary, AttackConfig(true));
  const auto metrics =
      eval::EvaluateAttack(dehin, dataset.target, dataset.ground_truth, 1);
  // Section 6.2: CGA degrades the attack only slightly.
  EXPECT_GT(metrics.precision, 0.6);
}

TEST(PipelineTest, VwCgaPinsAttackAtDistanceZero) {
  const auto dataset = BuildDataset(anon::VaryingWeightCgaAnonymizer(),
                                    /*strip=*/true, 0.01, 5);
  core::Dehin dehin(&dataset.auxiliary, AttackConfig(true));
  const auto d0 =
      eval::EvaluateAttack(dehin, dataset.target, dataset.ground_truth, 0);
  const auto d2 =
      eval::EvaluateAttack(dehin, dataset.target, dataset.ground_truth, 2);
  // Section 6.3: neighbor utilization gains nothing.
  EXPECT_NEAR(d2.precision, d0.precision, 0.02);
  EXPECT_LT(d2.precision, 0.3);
}

TEST(PipelineTest, KDegreeDefenseIsWeakerThanCga) {
  const auto cga = BuildDataset(anon::CompleteGraphAnonymizer(), true, 0.01, 6);
  const auto kdeg =
      BuildDataset(anon::KDegreeAnonymizer(20), true, 0.01, 6);
  core::Dehin attack_cga(&cga.auxiliary, AttackConfig(true));
  core::Dehin attack_kdeg(&kdeg.auxiliary, AttackConfig(true));
  const auto m_cga =
      eval::EvaluateAttack(attack_cga, cga.target, cga.ground_truth, 1);
  const auto m_kdeg =
      eval::EvaluateAttack(attack_kdeg, kdeg.target, kdeg.ground_truth, 1);
  // CGA is the family's best case, so it cannot do worse than k-degree.
  EXPECT_GE(m_kdeg.precision + 0.15, m_cga.precision);
  EXPECT_GT(m_kdeg.precision, 0.3);
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  const auto a = BuildDataset(anon::KddAnonymizer(), false, 0.005, 7);
  const auto b = BuildDataset(anon::KddAnonymizer(), false, 0.005, 7);
  core::Dehin attack_a(&a.auxiliary, AttackConfig(false));
  core::Dehin attack_b(&b.auxiliary, AttackConfig(false));
  const auto m_a = eval::EvaluateAttack(attack_a, a.target, a.ground_truth, 1);
  const auto m_b = eval::EvaluateAttack(attack_b, b.target, b.ground_truth, 1);
  EXPECT_DOUBLE_EQ(m_a.precision, m_b.precision);
  EXPECT_DOUBLE_EQ(m_a.reduction_rate, m_b.reduction_rate);
}

}  // namespace
}  // namespace hinpriv
