
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/clique_seeds.cc" "src/baselines/CMakeFiles/hinpriv_baselines.dir/clique_seeds.cc.o" "gcc" "src/baselines/CMakeFiles/hinpriv_baselines.dir/clique_seeds.cc.o.d"
  "/root/repo/src/baselines/propagation_attack.cc" "src/baselines/CMakeFiles/hinpriv_baselines.dir/propagation_attack.cc.o" "gcc" "src/baselines/CMakeFiles/hinpriv_baselines.dir/propagation_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hin/CMakeFiles/hinpriv_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
