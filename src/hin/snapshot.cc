#include "hin/snapshot.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "hin/schema_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/mapped_file.h"

namespace hinpriv::hin {

namespace {

constexpr char kMagic[8] = {'H', 'I', 'N', 'P', 'R', 'I', 'V', 'S'};
constexpr uint32_t kSnapshotVersion = 1;
// Written natively; a reader on a different-endian host sees the bytes
// reversed and rejects the file instead of misreading every array.
constexpr uint32_t kByteOrderProbe = 0x01020304;
constexpr uint64_t kAlignment = 64;
constexpr uint64_t kMaxSchemaBytes = 1 << 24;

// size_t-backed counts are written as raw uint64 arrays.
static_assert(sizeof(size_t) == 8, "HINPRIVS assumes 64-bit size_t");

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t header_bytes;
  uint64_t file_bytes;
  uint64_t schema_offset;
  uint64_t schema_bytes;
  uint64_t section_table_offset;
  uint64_t section_count;
  uint64_t num_vertices;
  uint64_t num_edges;
  uint8_t reserved[48];
};
static_assert(sizeof(SnapshotHeader) == 128, "snapshot header is 128 bytes");

enum SectionKind : uint32_t {
  kVertexTypes = 1,  // EntityTypeId[num_vertices]
  kDenseIndex = 2,   // uint32[num_vertices]
  kTypeCounts = 3,   // uint64[num_entity_types]
  kCsrOffsets = 4,   // uint64[num_vertices + 1]; a = link type, b = dir
  kCsrEdges = 5,     // Edge[]; a = link type, b = dir (0 = out, 1 = in)
  kAttrColumn = 6,   // AttrValue[type_counts[a]]; a = entity type, b = attr
};

struct SectionEntry {
  uint32_t kind;
  uint32_t a;
  uint32_t b;
  uint32_t reserved;
  uint64_t offset;
  uint64_t bytes;
};
static_assert(sizeof(SectionEntry) == 32, "section entry is 32 bytes");

uint64_t AlignUp(uint64_t v) {
  return (v + kAlignment - 1) & ~(kAlignment - 1);
}

struct SnapshotMetrics {
  obs::Counter* loads;
  obs::Counter* bytes_mapped;
  obs::Histogram* load_us;
  obs::Gauge* mlocked;
};

const SnapshotMetrics& GlobalSnapshotMetrics() {
  static const SnapshotMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return SnapshotMetrics{
        registry.GetCounter("hin/snapshot_loads"),
        registry.GetCounter("hin/snapshot_bytes_mapped"),
        registry.GetHistogram("hin/snapshot_load_us"),
        registry.GetGauge("hin/snapshot_mlocked"),
    };
  }();
  return metrics;
}

template <typename T>
std::span<const T> SectionSpan(const uint8_t* base, const SectionEntry& e) {
  return {reinterpret_cast<const T*>(base + e.offset), e.bytes / sizeof(T)};
}

util::Status CorruptSnapshot(const std::string& what) {
  return util::Status::Corruption("snapshot: " + what);
}

}  // namespace

// Friend of Graph: packages the private span plumbing for both the writer
// (which needs the whole backing arrays, not per-vertex accessor slices)
// and the loader (which constructs a Graph over the mapping).
class SnapshotReader {
 public:
  static util::Status Save(const Graph& graph, const std::string& path);
  static util::Result<Graph> Load(const std::string& path,
                                  const SnapshotOptions& options);
};

util::Status SnapshotReader::Save(const Graph& graph,
                                  const std::string& path) {
  const NetworkSchema& schema = graph.schema();
  std::ostringstream schema_blob_stream(std::ios::binary);
  HINPRIV_RETURN_IF_ERROR(WriteSchemaBinary(schema_blob_stream, schema));
  const std::string schema_blob = schema_blob_stream.str();

  const uint64_t n = graph.num_vertices();
  const size_t num_types = schema.num_entity_types();
  const size_t num_links = schema.num_link_types();
  std::vector<uint64_t> type_counts(graph.type_counts_.begin(),
                                    graph.type_counts_.end());

  struct PendingSection {
    SectionEntry entry;
    const void* data;
  };
  std::vector<PendingSection> sections;
  auto add = [&sections](uint32_t kind, uint32_t a, uint32_t b,
                         const void* data, uint64_t bytes) {
    sections.push_back({SectionEntry{kind, a, b, 0, 0, bytes}, data});
  };
  add(kVertexTypes, 0, 0, graph.vtype_.data(),
      n * sizeof(EntityTypeId));
  add(kDenseIndex, 0, 0, graph.dense_idx_.data(), n * sizeof(uint32_t));
  add(kTypeCounts, 0, 0, type_counts.data(),
      type_counts.size() * sizeof(uint64_t));
  for (size_t lt = 0; lt < num_links; ++lt) {
    for (uint32_t dir = 0; dir < 2; ++dir) {
      const Graph::CsrView& adj = dir == 0 ? graph.out_[lt] : graph.in_[lt];
      add(kCsrOffsets, static_cast<uint32_t>(lt), dir, adj.offsets.data(),
          adj.offsets.size() * sizeof(uint64_t));
      add(kCsrEdges, static_cast<uint32_t>(lt), dir, adj.edges.data(),
          adj.edges.size() * sizeof(Edge));
    }
  }
  for (size_t t = 0; t < num_types; ++t) {
    const size_t num_attrs = schema.entity_type(
        static_cast<EntityTypeId>(t)).attributes.size();
    for (size_t a = 0; a < num_attrs; ++a) {
      const auto column = graph.attrs_[t][a];
      add(kAttrColumn, static_cast<uint32_t>(t), static_cast<uint32_t>(a),
          column.data(), column.size() * sizeof(AttrValue));
    }
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kSnapshotVersion;
  header.byte_order = kByteOrderProbe;
  header.header_bytes = sizeof(SnapshotHeader);
  header.schema_offset = sizeof(SnapshotHeader);
  header.schema_bytes = schema_blob.size();
  header.section_table_offset =
      AlignUp(header.schema_offset + header.schema_bytes);
  header.section_count = sections.size();
  header.num_vertices = n;
  header.num_edges = graph.num_edges_;
  uint64_t pos =
      header.section_table_offset + sections.size() * sizeof(SectionEntry);
  for (PendingSection& section : sections) {
    section.entry.offset = AlignUp(pos);
    pos = section.entry.offset + section.entry.bytes;
  }
  header.file_bytes = pos;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  uint64_t written = 0;
  auto pad_to = [&out, &written](uint64_t target) {
    static constexpr char kZeros[kAlignment] = {};
    while (written < target) {
      const uint64_t chunk =
          std::min<uint64_t>(target - written, sizeof(kZeros));
      out.write(kZeros, static_cast<std::streamsize>(chunk));
      written += chunk;
    }
  };
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  written += sizeof(header);
  out.write(schema_blob.data(),
            static_cast<std::streamsize>(schema_blob.size()));
  written += schema_blob.size();
  pad_to(header.section_table_offset);
  for (const PendingSection& section : sections) {
    out.write(reinterpret_cast<const char*>(&section.entry),
              sizeof(SectionEntry));
    written += sizeof(SectionEntry);
  }
  for (const PendingSection& section : sections) {
    pad_to(section.entry.offset);
    if (section.entry.bytes > 0) {
      out.write(static_cast<const char*>(section.data),
                static_cast<std::streamsize>(section.entry.bytes));
    }
    written += section.entry.bytes;
  }
  if (!out) return util::Status::IoError("write failure (snapshot): " + path);
  return util::Status::OK();
}

util::Result<Graph> SnapshotReader::Load(const std::string& path,
                                         const SnapshotOptions& options) {
  HINPRIV_SPAN("hin/snapshot_load");
  const auto start = std::chrono::steady_clock::now();

  util::MappedFile::Options map_options;
  map_options.lock = options.mlock;
  map_options.willneed = options.willneed;
  map_options.populate = options.populate;
  auto mapped = [&]() -> util::Result<util::MappedFile> {
    HINPRIV_SPAN("hin/snapshot_map");
    return util::MappedFile::Open(path, map_options);
  }();
  if (!mapped.ok()) return mapped.status();
  auto file = std::make_shared<util::MappedFile>(std::move(mapped).value());
  const uint8_t* base = file->data();
  const uint64_t file_bytes = file->size();

  HINPRIV_SPAN("hin/snapshot_validate");
  if (file_bytes < sizeof(SnapshotHeader)) {
    return CorruptSnapshot("file shorter than header");
  }
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return CorruptSnapshot("bad magic");
  }
  if (header.version != kSnapshotVersion) {
    return CorruptSnapshot("unsupported version");
  }
  if (header.byte_order != kByteOrderProbe) {
    return CorruptSnapshot("byte order mismatch (foreign-endian snapshot)");
  }
  if (header.header_bytes != sizeof(SnapshotHeader)) {
    return CorruptSnapshot("unexpected header size");
  }
  if (header.file_bytes != file_bytes) {
    return CorruptSnapshot("recorded file size does not match actual size");
  }
  if (header.schema_offset != sizeof(SnapshotHeader) ||
      header.schema_bytes > kMaxSchemaBytes ||
      header.schema_bytes > file_bytes - header.schema_offset) {
    return CorruptSnapshot("schema blob out of bounds");
  }
  const uint64_t n = header.num_vertices;
  if (n >= kInvalidVertex) {
    return CorruptSnapshot("vertex count out of range");
  }

  NetworkSchema schema;
  {
    std::istringstream blob(
        std::string(reinterpret_cast<const char*>(base + header.schema_offset),
                    header.schema_bytes),
        std::ios::binary);
    HINPRIV_RETURN_IF_ERROR(ReadSchemaBinary(blob, &schema));
    HINPRIV_RETURN_IF_ERROR(schema.Validate());
  }
  const size_t num_types = schema.num_entity_types();
  const size_t num_links = schema.num_link_types();
  size_t total_attrs = 0;
  for (size_t t = 0; t < num_types; ++t) {
    total_attrs +=
        schema.entity_type(static_cast<EntityTypeId>(t)).attributes.size();
  }
  const uint64_t expected_sections = 3 + 4 * num_links + total_attrs;
  if (header.section_count != expected_sections) {
    return CorruptSnapshot("section count does not match schema");
  }
  if (header.section_table_offset % kAlignment != 0 ||
      header.section_table_offset < sizeof(SnapshotHeader) ||
      header.section_table_offset > file_bytes ||
      expected_sections * sizeof(SectionEntry) >
          file_bytes - header.section_table_offset) {
    return CorruptSnapshot("section table out of bounds");
  }

  // Slot every entry by (kind, a, b); duplicates and unknown kinds reject.
  const SectionEntry* table = reinterpret_cast<const SectionEntry*>(
      base + header.section_table_offset);
  const SectionEntry* vtype_entry = nullptr;
  const SectionEntry* dense_entry = nullptr;
  const SectionEntry* counts_entry = nullptr;
  std::vector<std::array<const SectionEntry*, 2>> csr_offsets(num_links,
                                                              {nullptr});
  std::vector<std::array<const SectionEntry*, 2>> csr_edges(num_links,
                                                            {nullptr});
  std::vector<std::vector<const SectionEntry*>> attr_entries(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    attr_entries[t].assign(
        schema.entity_type(static_cast<EntityTypeId>(t)).attributes.size(),
        nullptr);
  }
  for (uint64_t i = 0; i < header.section_count; ++i) {
    const SectionEntry& e = table[i];
    if (e.offset % kAlignment != 0 || e.offset > file_bytes ||
        e.bytes > file_bytes - e.offset) {
      return CorruptSnapshot("section bounds exceed file");
    }
    auto claim = [&](const SectionEntry** slot) -> util::Status {
      if (*slot != nullptr) return CorruptSnapshot("duplicate section");
      *slot = &e;
      return util::Status::OK();
    };
    switch (e.kind) {
      case kVertexTypes:
        HINPRIV_RETURN_IF_ERROR(claim(&vtype_entry));
        break;
      case kDenseIndex:
        HINPRIV_RETURN_IF_ERROR(claim(&dense_entry));
        break;
      case kTypeCounts:
        HINPRIV_RETURN_IF_ERROR(claim(&counts_entry));
        break;
      case kCsrOffsets:
      case kCsrEdges: {
        if (e.a >= num_links || e.b >= 2) {
          return CorruptSnapshot("CSR section id out of range");
        }
        auto& slots = e.kind == kCsrOffsets ? csr_offsets : csr_edges;
        HINPRIV_RETURN_IF_ERROR(claim(&slots[e.a][e.b]));
        break;
      }
      case kAttrColumn:
        if (e.a >= num_types || e.b >= attr_entries[e.a].size()) {
          return CorruptSnapshot("attribute section id out of range");
        }
        HINPRIV_RETURN_IF_ERROR(claim(&attr_entries[e.a][e.b]));
        break;
      default:
        return CorruptSnapshot("unknown section kind");
    }
  }
  // Exact section count + no duplicates means every slot is filled, but be
  // explicit: a missing slot here would hand out a null-backed span.
  if (vtype_entry == nullptr || dense_entry == nullptr ||
      counts_entry == nullptr) {
    return CorruptSnapshot("missing core section");
  }
  for (size_t lt = 0; lt < num_links; ++lt) {
    for (int dir = 0; dir < 2; ++dir) {
      if (csr_offsets[lt][dir] == nullptr || csr_edges[lt][dir] == nullptr) {
        return CorruptSnapshot("missing CSR section");
      }
    }
  }
  for (const auto& columns : attr_entries) {
    for (const SectionEntry* entry : columns) {
      if (entry == nullptr) return CorruptSnapshot("missing attribute column");
    }
  }

  if (vtype_entry->bytes != n * sizeof(EntityTypeId)) {
    return CorruptSnapshot("vertex type column size mismatch");
  }
  if (dense_entry->bytes != n * sizeof(uint32_t)) {
    return CorruptSnapshot("dense index column size mismatch");
  }
  if (counts_entry->bytes != num_types * sizeof(uint64_t)) {
    return CorruptSnapshot("type count section size mismatch");
  }
  const auto counts = SectionSpan<uint64_t>(base, *counts_entry);
  uint64_t counted = 0;
  for (uint64_t c : counts) {
    if (c > n) return CorruptSnapshot("type count exceeds vertex count");
    counted += c;
  }
  if (counted != n) {
    return CorruptSnapshot("type counts do not sum to vertex count");
  }
  for (size_t t = 0; t < num_types; ++t) {
    for (size_t a = 0; a < attr_entries[t].size(); ++a) {
      if (attr_entries[t][a]->bytes != counts[t] * sizeof(AttrValue)) {
        return CorruptSnapshot("attribute column size mismatch");
      }
    }
  }

  // One pass proves vtype values are in range and the dense index is
  // canonical (the running per-type ordinal in vertex-id order), which is
  // exactly the invariant attribute() indexing relies on.
  const auto vtype = SectionSpan<EntityTypeId>(base, *vtype_entry);
  const auto dense = SectionSpan<uint32_t>(base, *dense_entry);
  {
    std::vector<uint64_t> running(num_types, 0);
    for (uint64_t v = 0; v < n; ++v) {
      if (vtype[v] >= num_types) {
        return CorruptSnapshot("vertex entity type out of range");
      }
      if (dense[v] != running[vtype[v]]++) {
        return CorruptSnapshot("dense index column is not canonical");
      }
    }
    for (size_t t = 0; t < num_types; ++t) {
      if (running[t] != counts[t]) {
        return CorruptSnapshot("dense index totals disagree with type counts");
      }
    }
  }

  // CSR structure: offsets are monotone, start at 0, and terminate exactly
  // at the edge section's element count — after this every span OutEdges /
  // InEdges can produce is inside the mapping, whatever the edge payload
  // contains.
  uint64_t total_out_edges = 0;
  for (size_t lt = 0; lt < num_links; ++lt) {
    for (int dir = 0; dir < 2; ++dir) {
      const SectionEntry& off_entry = *csr_offsets[lt][dir];
      const SectionEntry& edge_entry = *csr_edges[lt][dir];
      if (off_entry.bytes != (n + 1) * sizeof(uint64_t)) {
        return CorruptSnapshot("CSR offsets size mismatch");
      }
      if (edge_entry.bytes % sizeof(Edge) != 0) {
        return CorruptSnapshot("CSR edge section size not a multiple of Edge");
      }
      const auto offsets = SectionSpan<uint64_t>(base, off_entry);
      const uint64_t num_edges_here = edge_entry.bytes / sizeof(Edge);
      if (offsets[0] != 0) return CorruptSnapshot("CSR offsets not 0-based");
      for (uint64_t v = 0; v < n; ++v) {
        if (offsets[v + 1] < offsets[v]) {
          return CorruptSnapshot("CSR offsets not monotone");
        }
      }
      if (offsets[n] != num_edges_here) {
        return CorruptSnapshot("CSR offsets disagree with edge section size");
      }
      if (dir == 0) total_out_edges += num_edges_here;
    }
    if (csr_edges[lt][0]->bytes != csr_edges[lt][1]->bytes) {
      return CorruptSnapshot("out/in edge totals disagree");
    }
  }
  if (total_out_edges != header.num_edges) {
    return CorruptSnapshot("edge total disagrees with header");
  }

  if (options.verify_edges) {
    for (size_t lt = 0; lt < num_links; ++lt) {
      for (int dir = 0; dir < 2; ++dir) {
        const auto offsets = SectionSpan<uint64_t>(base, *csr_offsets[lt][dir]);
        const auto edges = SectionSpan<Edge>(base, *csr_edges[lt][dir]);
        for (uint64_t v = 0; v < n; ++v) {
          VertexId prev = 0;
          for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
            const Edge& e = edges[i];
            if (e.neighbor >= n) {
              return CorruptSnapshot("edge neighbor out of range");
            }
            if (i > offsets[v] && e.neighbor <= prev) {
              return CorruptSnapshot("adjacency list not strictly sorted");
            }
            if (e.strength == 0) {
              return CorruptSnapshot("zero edge strength");
            }
            prev = e.neighbor;
          }
        }
      }
    }
  }

  Graph g;
  g.schema_ = std::move(schema);
  g.vtype_ = vtype;
  g.dense_idx_ = dense;
  g.type_counts_.assign(counts.begin(), counts.end());
  g.attrs_.resize(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    g.attrs_[t].resize(attr_entries[t].size());
    for (size_t a = 0; a < attr_entries[t].size(); ++a) {
      g.attrs_[t][a] = SectionSpan<AttrValue>(base, *attr_entries[t][a]);
    }
  }
  g.out_.resize(num_links);
  g.in_.resize(num_links);
  for (size_t lt = 0; lt < num_links; ++lt) {
    g.out_[lt] = Graph::CsrView{
        SectionSpan<uint64_t>(base, *csr_offsets[lt][0]),
        SectionSpan<Edge>(base, *csr_edges[lt][0])};
    g.in_[lt] = Graph::CsrView{
        SectionSpan<uint64_t>(base, *csr_offsets[lt][1]),
        SectionSpan<Edge>(base, *csr_edges[lt][1])};
  }
  g.num_edges_ = header.num_edges;
  g.mapped_ = true;

  const SnapshotMetrics& metrics = GlobalSnapshotMetrics();
  metrics.loads->Increment();
  metrics.bytes_mapped->Add(file_bytes);
  metrics.mlocked->Set(file->mlocked() ? 1.0 : 0.0);
  metrics.load_us->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  g.arena_ = std::move(file);
  return g;
}

util::Status SaveGraphSnapshot(const Graph& graph, const std::string& path) {
  return SnapshotReader::Save(graph, path);
}

util::Result<Graph> LoadGraphSnapshot(const std::string& path,
                                      const SnapshotOptions& options) {
  return SnapshotReader::Load(path, options);
}

util::Result<Graph> LoadGraphSnapshot(const std::string& path) {
  return SnapshotReader::Load(path, SnapshotOptions());
}

bool SnapshotMagicMatches(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return false;
  char magic[sizeof(kMagic)] = {};
  probe.read(magic, sizeof(magic));
  return probe.gcount() == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace hinpriv::hin
