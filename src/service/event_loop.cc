#include "service/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/trace.h"
#include "service/protocol.h"

namespace hinpriv::service {

namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kEventId = 1;

uint32_t DecodeLen(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

EventLoop::EventLoop(FrameHandler on_frame, Options options)
    : on_frame_(std::move(on_frame)), options_(std::move(options)) {}

EventLoop::~EventLoop() { Shutdown(); }

util::Status EventLoop::Listen(const std::string& host, uint16_t port) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return util::Status::IoError(std::string("epoll_create1: ") +
                                 std::strerror(errno));
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    return util::Status::IoError(std::string("eventfd: ") +
                                 std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("unparseable IPv4 host '" + host +
                                         "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::IoError("bind " + host + ":" + std::to_string(port) +
                                 ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    return util::Status::IoError(std::string("listen: ") +
                                 std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return util::Status::IoError(std::string("getsockname: ") +
                                 std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return util::Status::IoError(std::string("epoll_ctl(listen): ") +
                                 std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kEventId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    return util::Status::IoError(std::string("epoll_ctl(eventfd): ") +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

void EventLoop::Start() {
  if (started_.exchange(true)) return;
  loop_ = std::thread([this] { LoopMain(); });
}

bool EventLoop::Send(uint64_t conn_id, std::string payload) {
  if (finished_.load(std::memory_order_acquire)) return false;
  // Prepend the length prefix here so the loop thread only moves bytes.
  std::string framed;
  framed.reserve(4 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  framed.append(prefix, 4);
  framed.append(payload);
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mailbox_.emplace_back(conn_id, std::move(framed));
  }
  WakeLoop();
  return true;
}

void EventLoop::StopAccepting() {
  stop_accepting_.store(true, std::memory_order_release);
  WakeLoop();
}

void EventLoop::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (finished_.load(std::memory_order_acquire)) return;
  shutdown_requested_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop (if it ever ran) closed every connection before exiting;
  // close the plumbing fds here so a Listen()-without-Start() instance
  // also cleans up.
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  conns_.clear();
  conn_count_.store(0, std::memory_order_release);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (event_fd_ >= 0) ::close(event_fd_);
  event_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  finished_.store(true, std::memory_order_release);
}

size_t EventLoop::num_connections() const {
  return conn_count_.load(std::memory_order_acquire);
}

void EventLoop::WakeLoop() {
  if (event_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void EventLoop::LoopMain() {
  obs::SetCurrentThreadName("service/event_loop");
  using Clock = std::chrono::steady_clock;
  Clock::time_point drain_deadline{};
  bool draining = false;
  epoll_event events[64];
  while (true) {
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      if (!draining) {
        draining = true;
        drain_deadline =
            Clock::now() + std::chrono::milliseconds(options_.drain_grace_ms);
      }
      DrainMailbox();
      bool pending = false;
      {
        std::lock_guard<std::mutex> lock(mail_mu_);
        pending = !mailbox_.empty();
      }
      if (!pending) {
        for (const auto& [id, conn] : conns_) {
          if (!conn.write_queue.empty()) {
            pending = true;
            break;
          }
        }
      }
      if (!pending || Clock::now() >= drain_deadline) break;
    }
    if (stop_accepting_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    const int timeout_ms = draining ? 10 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens on teardown races
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (id == kListenId) {
        if (!stop_accepting_.load(std::memory_order_acquire)) AcceptReady();
        continue;
      }
      if (id == kEventId) {
        uint64_t v = 0;
        while (::read(event_fd_, &v, sizeof(v)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn* conn = &it->second;
      if (mask & (EPOLLERR | EPOLLHUP)) {
        CloseConn(id);
        continue;
      }
      if ((mask & EPOLLIN) && !ReadReady(id, conn)) {
        CloseConn(id);
        continue;
      }
      // ReadReady's handler may have enqueued an inline (admin) response;
      // re-find in case the handler's Send path raced with nothing — the
      // map is loop-owned, the iterator is still valid.
      if ((mask & EPOLLOUT) && !FlushWrites(id, conn)) {
        CloseConn(id);
        continue;
      }
    }
    DrainMailbox();
  }
  // Teardown on the loop thread: every socket closed exactly once.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
  // Anything still in the mailbox now has no connection to go to.
  std::deque<std::pair<uint64_t, std::string>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    orphaned.swap(mailbox_);
  }
  if (options_.on_dropped_response) {
    for (size_t i = 0; i < orphaned.size(); ++i) options_.on_dropped_response();
  }
}

void EventLoop::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or listen socket closed under us
    }
    // Responses go out as one buffer, but without this a partial send's
    // tail waits on the client's delayed ACK.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.emplace(id, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_release);
    if (options_.on_accept) options_.on_accept(id);
  }
}

bool EventLoop::ReadReady(uint64_t id, Conn* conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->read_buf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  // Slice every complete frame out of the buffer, then erase the consumed
  // prefix once (not per frame — a pipelining client would otherwise make
  // this quadratic).
  size_t off = 0;
  while (conn->read_buf.size() - off >= 4) {
    const uint32_t len = DecodeLen(conn->read_buf.data() + off);
    if (len > kMaxFrameBytes) return false;  // same policy as ReadFrame
    if (conn->read_buf.size() - off - 4 < len) break;
    std::string frame = conn->read_buf.substr(off + 4, len);
    off += 4 + static_cast<size_t>(len);
    on_frame_(id, std::move(frame));
  }
  if (off > 0) conn->read_buf.erase(0, off);
  return true;
}

bool EventLoop::FlushWrites(uint64_t id, Conn* conn) {
  while (!conn->write_queue.empty()) {
    const std::string& front = conn->write_queue.front();
    const size_t remaining = front.size() - conn->write_offset;
    const ssize_t n =
        ::send(conn->fd, front.data() + conn->write_offset, remaining,
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (options_.on_dropped_response) {
        // Every queued frame (including the partially written one) is lost.
        for (size_t i = 0; i < conn->write_queue.size(); ++i) {
          options_.on_dropped_response();
        }
      }
      return false;
    }
    conn->write_offset += static_cast<size_t>(n);
    conn->pending_bytes -= static_cast<size_t>(n);
    if (conn->write_offset == front.size()) {
      conn->write_queue.pop_front();
      conn->write_offset = 0;
    }
  }
  UpdateEvents(id, conn);
  return true;
}

void EventLoop::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (options_.on_dropped_response && !conn.write_queue.empty()) {
    for (size_t i = 0; i < conn.write_queue.size(); ++i) {
      options_.on_dropped_response();
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(it);
  conn_count_.store(conns_.size(), std::memory_order_release);
  if (options_.on_close) options_.on_close(id);
}

void EventLoop::DrainMailbox() {
  std::deque<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    batch.swap(mailbox_);
  }
  for (auto& [id, framed] : batch) {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      if (options_.on_dropped_response) options_.on_dropped_response();
      continue;
    }
    Conn* conn = &it->second;
    conn->pending_bytes += framed.size();
    conn->write_queue.push_back(std::move(framed));
    if (conn->pending_bytes > options_.max_pending_write_bytes) {
      // Pipelines requests, never reads responses: cut it loose.
      CloseConn(id);
      continue;
    }
    if (!FlushWrites(id, conn)) CloseConn(id);
  }
}

void EventLoop::UpdateEvents(uint64_t id, Conn* conn) {
  const bool want_out = !conn->write_queue.empty();
  if (want_out == conn->epollout_armed) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0);
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->epollout_armed = want_out;
  }
}

}  // namespace hinpriv::service
