#include "util/status.h"

#include <gtest/gtest.h>

namespace hinpriv::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), Status::Code::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::InvalidArgument("bad input").message(), "bad input");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "NOT_FOUND: missing thing");
  EXPECT_EQ(Status::Corruption("").ToString(), "CORRUPTION");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IoError("disk gone");
  Status copy = s;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.code(), Status::Code::kIoError);
  EXPECT_EQ(copy.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "def";
  EXPECT_EQ(r.value(), "abcdef");
}

Status FailsThenPropagates(bool fail) {
  HINPRIV_RETURN_IF_ERROR(fail ? Status::Corruption("inner")
                               : Status::OK());
  return Status::InvalidArgument("outer");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), Status::Code::kCorruption);
  EXPECT_EQ(FailsThenPropagates(false).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace hinpriv::util
