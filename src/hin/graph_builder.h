#ifndef HINPRIV_HIN_GRAPH_BUILDER_H_
#define HINPRIV_HIN_GRAPH_BUILDER_H_

#include <vector>

#include "hin/graph.h"
#include "hin/schema.h"
#include "hin/types.h"
#include "util/status.h"

namespace hinpriv::hin {

struct GraphDelta;

// Mutable staging area for constructing an immutable Graph.
//
// Usage:
//   GraphBuilder b(schema);
//   VertexId v = b.AddVertex(user_type);
//   b.SetAttribute(v, yob, 1980);
//   b.AddEdge(v, u, mention, /*strength=*/5);
//   util::Result<Graph> g = std::move(b).Build();
//
// Duplicate (src, dst) pairs within one link type are merged by summing
// strengths, matching how the t.qq interaction logs aggregate repeated
// mentions/retweets/comments into a single strength value.
class GraphBuilder {
 public:
  explicit GraphBuilder(NetworkSchema schema);

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;
  GraphBuilder(GraphBuilder&&) = default;
  GraphBuilder& operator=(GraphBuilder&&) = default;

  // Adds a vertex of the given entity type with all attributes zero.
  // Returns kInvalidVertex if the entity type is out of range.
  VertexId AddVertex(EntityTypeId entity_type);

  // Bulk-adds `count` vertices of one type; returns the first id.
  VertexId AddVertices(EntityTypeId entity_type, size_t count);

  util::Status SetAttribute(VertexId v, AttributeId attr, AttrValue value);

  // Stages a directed edge. Strength must be >= 1; for unweighted link
  // types pass 1. Endpoint entity types are validated against the schema.
  util::Status AddEdge(VertexId src, VertexId dst, LinkTypeId link,
                       Strength strength = 1);

  size_t num_vertices() const { return vtype_.size(); }
  size_t num_staged_edges() const;

  // Finalizes: sorts, merges duplicates, builds per-link-type CSR (out and
  // in). Consumes the builder.
  util::Result<Graph> Build() &&;

  // Applies one growth batch (graph_delta.h) in place to a heap-built
  // graph: appends the delta's new vertices and attribute columns, applies
  // growable-attribute bumps, and linearly merges the new edges into fresh
  // per-link-type CSRs — bit-identical to what Build() would produce over
  // the union edge multiset, at O(V + E + |delta| log |delta|) instead of a
  // full re-sort. Rejects mmap'd snapshot graphs (immutable) and invalid
  // deltas without mutating the graph. The caller must guarantee exclusive
  // access to the graph (and everything holding spans into it) for the
  // duration of the call.
  static util::Status ApplyDelta(Graph* graph, const GraphDelta& delta);

 private:
  struct StagedEdge {
    VertexId src;
    VertexId dst;
    Strength strength;
  };

  NetworkSchema schema_;
  std::vector<EntityTypeId> vtype_;
  std::vector<uint32_t> dense_idx_;
  std::vector<size_t> type_counts_;
  std::vector<std::vector<std::vector<AttrValue>>> attrs_;
  std::vector<std::vector<StagedEdge>> staged_;  // one per link type
};

// Appends every vertex of `source` (with its attributes) to `builder`, in
// id order. The builder must be empty (or the caller must account for the
// id offset — with an empty builder, ids are preserved). The builder's
// schema must match the source's layout.
util::Status CopyVerticesWithAttributes(const Graph& source,
                                        GraphBuilder* builder);

// Stages every edge of `source` into `builder` (same vertex ids).
util::Status CopyEdges(const Graph& source, GraphBuilder* builder);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_GRAPH_BUILDER_H_
