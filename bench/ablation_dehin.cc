// Ablation study over the design choices DESIGN.md calls out:
//
//   * candidate index on/off (same results, different cost),
//   * the two DeHIN acceleration layers (neighborhood-stats prefilter,
//     cross-call match cache) each on/off (same results, different cost),
//   * reverse meta paths (in-edge utilization) on/off,
//   * growth-aware vs. time-synchronized matching,
//   * auxiliary growth on/off,
//   * blanket reconfiguration (strip + saturation) on plain KDDA,
//   * the extension defenses (k-degree, edge perturbation) vs. DeHIN.

#include <iostream>
#include <memory>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "hin/homogenize.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density for all ablations");
  flags.Define("json", "", "also write machine-readable results to this path");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const double density = flags.GetDouble("density");
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  std::printf("DeHIN ablations (density %.3f, %lld aux users)\n\n", density,
              static_cast<long long>(flags.GetInt("aux_users")));
  util::TablePrinter table({"ablation", "precision%", "reduction%",
                            "attack sec", "prefilter rej%", "cache hit%"});

  anon::KddAnonymizer kdda;
  auto baseline_dataset = eval::BuildExperimentDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{}, kdda,
      /*strip_majority=*/false, &rng);
  if (!baseline_dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 baseline_dataset.status().ToString().c_str());
    return 1;
  }
  const auto& base = baseline_dataset.value();

  std::vector<bench::BenchJsonEntry> json_entries;
  auto run = [&](const std::string& label,
                 const eval::ExperimentDataset& dataset,
                 core::DehinConfig config, int distance) {
    core::Dehin dehin(&dataset.auxiliary, config);
    const auto evaluation = eval::TimedEvaluateAttack(dehin, dataset, distance);
    const auto& metrics = evaluation.metrics;
    table.AddRow({label, bench::Pct(metrics.precision),
                  bench::Pct(metrics.reduction_rate, 3),
                  util::FormatDouble(evaluation.seconds, 2),
                  bench::Pct(metrics.dehin_stats.PrefilterRejectRate()),
                  bench::Pct(metrics.dehin_stats.CacheHitRate())});
    bench::BenchJsonEntry entry;
    entry.name = label;
    entry.real_time_s = evaluation.seconds;
    entry.counters = {
        {"precision", metrics.precision},
        {"reduction_rate", metrics.reduction_rate},
        {"prefilter_reject_rate", metrics.dehin_stats.PrefilterRejectRate()},
        {"cache_hit_rate", metrics.dehin_stats.CacheHitRate()},
    };
    json_entries.push_back(std::move(entry));
  };

  // Baseline: growth-aware, index, out-edges only, distance 1.
  run("baseline (n=1)", base, bench::AttackConfig(false, flags), 1);
  run("baseline (n=2)", base, bench::AttackConfig(false, flags), 2);

  // Candidate index off: identical quality, higher cost.
  {
    core::DehinConfig config = bench::AttackConfig(false, flags);
    config.use_candidate_index = false;
    run("no candidate index", base, config, 1);
  }

  // Acceleration layers off, one at a time and together, at the distance
  // where they matter most: identical quality, different cost (the
  // both-off row is the pre-acceleration code path).
  {
    core::DehinConfig config = bench::AttackConfig(false, flags);
    config.use_prefilter = false;
    run("no prefilter (n=2)", base, config, 2);
  }
  {
    core::DehinConfig config = bench::AttackConfig(false, flags);
    config.use_shared_cache = false;
    run("no shared cache (n=2)", base, config, 2);
  }
  {
    core::DehinConfig config = bench::AttackConfig(false, flags);
    config.use_prefilter = false;
    config.use_shared_cache = false;
    run("no acceleration (n=2)", base, config, 2);
  }

  // Reverse meta paths: also match in-neighborhoods.
  {
    core::DehinConfig config = bench::AttackConfig(false, flags);
    config.match.use_in_edges = true;
    run("+ in-edge matching", base, config, 1);
  }

  // Blanket reconfiguration on KDDA (Section 6.4).
  {
    util::Rng strip_rng(static_cast<uint64_t>(flags.GetInt("seed")));
    auto stripped = eval::BuildExperimentDataset(
        bench::AuxConfigFromFlags(flags),
        bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{},
        kdda, /*strip_majority=*/true, &strip_rng);
    if (stripped.ok()) {
      run("blanket reconfigured on KDDA", stripped.value(),
          bench::AttackConfig(true, flags), 1);
    }
  }

  // No growth: the auxiliary equals the time-T0 network, so exact matching
  // is admissible and sharper.
  {
    synth::GrowthConfig no_growth;
    no_growth.new_user_fraction = 0.0;
    no_growth.new_edge_fraction = 0.0;
    no_growth.attr_growth_prob = 0.0;
    no_growth.strength_growth_prob = 0.0;
    util::Rng g_rng(static_cast<uint64_t>(flags.GetInt("seed")));
    auto dataset = eval::BuildExperimentDataset(
        bench::AuxConfigFromFlags(flags),
        bench::TargetSpecFromFlags(flags, density), no_growth, kdda, false,
        &g_rng);
    if (dataset.ok()) {
      run("no growth, growth-aware match", dataset.value(),
          bench::AttackConfig(false, flags), 1);
      core::DehinConfig exact = bench::AttackConfig(false, flags);
      exact.match.growth_aware = false;
      run("no growth, exact match", dataset.value(), exact, 1);
    }
  }

  // Homogeneous-network mode: collapse all four link types into one and
  // re-run — the paper claims DeHIN still works "with slight performance
  // degradation", and the delta against the baseline quantifies exactly
  // how much the heterogeneity information is worth.
  {
    auto homo_target = hin::HomogenizeGraph(base.target);
    auto homo_aux = hin::HomogenizeGraph(base.auxiliary);
    if (homo_target.ok() && homo_aux.ok()) {
      eval::ExperimentDataset homogeneous{
          std::move(homo_aux).value(), std::move(homo_target).value(),
          base.ground_truth, base.target_density};
      core::DehinConfig config = bench::AttackConfig(false, flags);
      config.match.link_types = {0};
      run("homogeneous network (1 link type)", homogeneous, config, 1);
    }
  }

  // Extension defenses under the reconfigured attack.
  {
    std::vector<std::pair<std::string, std::unique_ptr<anon::Anonymizer>>>
        defenses;
    defenses.emplace_back("defense: CGA",
                          std::make_unique<anon::CompleteGraphAnonymizer>());
    defenses.emplace_back("defense: VW-CGA",
                          std::make_unique<anon::VaryingWeightCgaAnonymizer>());
    defenses.emplace_back("defense: k-degree (k=20)",
                          std::make_unique<anon::KDegreeAnonymizer>(20));
    defenses.emplace_back(
        "defense: edge perturbation 10%",
        std::make_unique<anon::EdgePerturbationAnonymizer>(0.1));
    for (const auto& [label, anonymizer] : defenses) {
      util::Rng d_rng(static_cast<uint64_t>(flags.GetInt("seed")));
      auto dataset = eval::BuildExperimentDataset(
          bench::AuxConfigFromFlags(flags),
          bench::TargetSpecFromFlags(flags, density), synth::GrowthConfig{},
          *anonymizer, /*strip_majority=*/true, &d_rng);
      if (dataset.ok()) {
        run(label, dataset.value(), bench::AttackConfig(true, flags), 1);
      }
    }
  }

  table.Print(std::cout);
  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    const auto context = bench::CommonBenchContext(
        flags, {{"density", flags.GetString("density")}});
    if (!bench::WriteBenchJson(json_path, json_entries, context)) return 1;
  }
  std::printf("\nNotes: edge perturbation deletes real links, so it breaks "
              "DeHIN's soundness guarantee (the truth may leave the "
              "candidate set) at a direct utility cost; VW-CGA defends by "
              "destroying all neighborhood signal.\n");
  return 0;
}
