#ifndef HINPRIV_EXEC_WORK_STEALING_DEQUE_H_
#define HINPRIV_EXEC_WORK_STEALING_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hinpriv::exec {

// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05, in the C11 atomics
// formulation of Lê/Pop/Cohen/Nardelli, PPoPP'13) specialised to untyped
// pointers. The owning worker pushes and pops at the bottom (LIFO, cheap);
// thieves take from the top (FIFO, one CAS). `top_` is a monotone int64
// position, never an index that wraps, so the CAS has no ABA window.
//
// Two deliberate deviations from the textbook version:
//
//  * All cross-thread orderings go through seq_cst operations on `top_` /
//    `bottom_` instead of relaxed accesses ordered by standalone
//    `atomic_thread_fence(seq_cst)`. ThreadSanitizer does not model
//    standalone fences, so the textbook form reports false races; putting
//    the ordering on the atomics themselves is equivalent under the C++
//    model and keeps the TSan CI job meaningful. The cost is one locked
//    instruction per push/pop on x86 — noise next to the thousands of
//    match tests a scheduled grain performs.
//
//  * Grown-out ring buffers are retired, not freed: a thief may still be
//    reading a slot of the old buffer after the owner swapped in a bigger
//    one. Retired buffers are reclaimed when the deque is destroyed. The
//    slots a thief can read from a retired buffer were copied verbatim
//    into the live buffer before it was published, so a late thief that
//    wins its CAS still hands out the right item exactly once.
//
// Owner-only calls: PushBottom, PopBottom. Any thread: Steal, ApproxSize.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t initial_capacity = 64) {
    size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    auto initial = std::make_unique<Buffer>(cap);
    buffer_.store(initial.get(), std::memory_order_relaxed);
    owned_.push_back(std::move(initial));
  }
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  // Owner only. Never fails; grows the ring when full.
  void PushBottom(void* item) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) {
      buf = Grow(buf, t, b);
    }
    buf->Put(b, item);
    // seq_cst publish: pairs with the seq_cst loads in Steal so a thief
    // that reads the new bottom also sees the slot contents.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. nullptr when empty.
  void* PopBottom() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // Reserve the bottom slot before looking at top (the Dekker handshake
    // with Steal); both sides use seq_cst so one of them must observe the
    // other's reservation.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    void* item = buf->Get(b);
    if (t == b) {
      // Last element: race thieves for it with the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread. nullptr when empty or when the race for the top item was
  // lost (callers just move on to the next victim).
  void* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    // Read the item before claiming the slot: once the CAS succeeds the
    // owner may reuse the slot for a new push.
    void* item = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  // Racy size estimate for observability; may briefly read as negative
  // mid-operation, reported as 0.
  size_t ApproxSize() const {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<void*>[]>(cap)) {}
    void* Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void Put(int64_t i, void* v) {
      slots[static_cast<size_t>(i) & mask].store(v,
                                                 std::memory_order_relaxed);
    }
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<void*>[]> slots;
  };

  // Owner only. Copies the live range into a doubled ring and publishes it;
  // the old buffer stays in owned_ for late thieves.
  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    auto grown = std::make_unique<Buffer>(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) grown->Put(i, old->Get(i));
    Buffer* raw = grown.get();
    owned_.push_back(std::move(grown));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  // Every buffer ever allocated, current one last. Touched only by the
  // owner (Grow) and the destructor.
  std::vector<std::unique_ptr<Buffer>> owned_;
};

}  // namespace hinpriv::exec

#endif  // HINPRIV_EXEC_WORK_STEALING_DEQUE_H_
