#include "shard/shard_plan.h"

#include <unistd.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/snapshot.h"

namespace hinpriv::shard {
namespace {

hin::NetworkSchema UserSchema() {
  hin::NetworkSchema schema;
  const hin::EntityTypeId user = schema.AddEntityType("User");
  schema.AddAttribute(user, "yob", false);
  schema.AddLinkType("follow", user, user, false, false, false);
  return schema;
}

// A ring with chords so every shard's halo crosses shard boundaries.
hin::Graph MakeRing(size_t n) {
  hin::GraphBuilder builder(UserSchema());
  builder.AddVertices(0, n);
  for (hin::VertexId v = 0; v < n; ++v) {
    EXPECT_TRUE(builder.SetAttribute(v, 0, 1980 + static_cast<int>(v % 40))
                    .ok());
    EXPECT_TRUE(
        builder.AddEdge(v, static_cast<hin::VertexId>((v + 1) % n), 0).ok());
    if (v % 5 == 0) {
      EXPECT_TRUE(
          builder.AddEdge(v, static_cast<hin::VertexId>((v + 7) % n), 0).ok());
    }
  }
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(ShardPlanTest, PartitionCoversEveryVertexExactlyOnce) {
  ShardPlanOptions options;
  options.num_shards = 4;
  const ShardPlan plan(1000, options);
  std::set<hin::VertexId> seen;
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    const std::vector<hin::VertexId> owned = plan.OwnedVertices(s);
    // Owned lists are ascending (the owned-first slice ordering relies on
    // deterministic seed order).
    for (size_t i = 1; i < owned.size(); ++i) {
      EXPECT_LT(owned[i - 1], owned[i]);
    }
    for (hin::VertexId v : owned) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " owned twice";
    }
    total += owned.size();
  }
  EXPECT_EQ(total, 1000u);

  const std::vector<size_t> counts = plan.OwnedCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(counts[s], plan.OwnedVertices(s).size());
    // Mix64 spreads uniformly; allow wide slack but catch a broken hash
    // that dumps everything in one shard.
    EXPECT_GT(counts[s], 150u);
    EXPECT_LT(counts[s], 350u);
  }
}

TEST(ShardPlanTest, DeterministicAcrossInstancesAndSeedSensitive) {
  ShardPlanOptions options;
  options.num_shards = 3;
  const ShardPlan a(500, options);
  const ShardPlan b(500, options);
  options.hash_seed ^= 0x1234;
  const ShardPlan c(500, options);
  bool any_moved = false;
  for (hin::VertexId v = 0; v < 500; ++v) {
    EXPECT_EQ(a.ShardOf(v), b.ShardOf(v));
    any_moved |= a.ShardOf(v) != c.ShardOf(v);
  }
  EXPECT_TRUE(any_moved);  // a different seed is a different partition
}

TEST(ExtractShardSliceTest, OwnedFirstOrderingAndHaloCompleteness) {
  const hin::Graph aux = MakeRing(60);
  ShardPlanOptions options;
  options.num_shards = 3;
  const ShardPlan plan(aux.num_vertices(), options);
  size_t total_owned = 0;
  for (size_t s = 0; s < 3; ++s) {
    auto slice = ExtractShardSlice(aux, plan, s, /*halo_depth=*/1);
    ASSERT_TRUE(slice.ok());
    const std::vector<hin::VertexId> owned = plan.OwnedVertices(s);
    ASSERT_EQ(slice.value().num_owned, owned.size());
    total_owned += owned.size();
    // to_parent's owned prefix is exactly the plan's owned list, in order.
    for (size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(slice.value().to_parent[i], owned[i]);
    }
    // Every owned vertex's ring neighbors are present in the slice (the
    // depth-1 halo follows both edge directions).
    std::set<hin::VertexId> members(slice.value().to_parent.begin(),
                                    slice.value().to_parent.end());
    EXPECT_EQ(members.size(), slice.value().to_parent.size());
    for (hin::VertexId v : owned) {
      EXPECT_TRUE(members.count((v + 1) % 60));
      EXPECT_TRUE(members.count((v + 59) % 60));
    }
    EXPECT_EQ(slice.value().halo_depth, 1);
  }
  EXPECT_EQ(total_owned, 60u);
}

TEST(ExtractShardSliceTest, RejectsBadShardOrMismatchedPlan) {
  const hin::Graph aux = MakeRing(20);
  ShardPlanOptions options;
  options.num_shards = 2;
  const ShardPlan plan(aux.num_vertices(), options);
  EXPECT_FALSE(ExtractShardSlice(aux, plan, 2, 1).ok());
  const ShardPlan wrong_size(19, options);
  EXPECT_FALSE(ExtractShardSlice(aux, wrong_size, 0, 1).ok());
}

TEST(ShardSliceIoTest, SaveLoadRoundTrip) {
  const hin::Graph aux = MakeRing(40);
  ShardPlanOptions options;
  options.num_shards = 2;
  const ShardPlan plan(aux.num_vertices(), options);
  auto slice = ExtractShardSlice(aux, plan, 1, /*halo_depth=*/2);
  ASSERT_TRUE(slice.ok());

  const std::string prefix = ::testing::TempDir() + "shard_slice_rt";
  ASSERT_TRUE(SaveShardSlice(slice.value(), prefix, 1, 2).ok());
  auto loaded = LoadShardSlice(prefix, 1, 2, 2, hin::SnapshotOptions{});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_owned, slice.value().num_owned);
  EXPECT_EQ(loaded.value().halo_depth, 2);
  EXPECT_EQ(loaded.value().to_parent, slice.value().to_parent);
  EXPECT_EQ(loaded.value().graph.num_vertices(),
            slice.value().graph.num_vertices());
  EXPECT_EQ(loaded.value().graph.num_edges(), slice.value().graph.num_edges());
}

TEST(ShardSliceIoTest, MissingSliceIsNotFound) {
  const std::string prefix = ::testing::TempDir() + "shard_slice_absent";
  auto loaded = LoadShardSlice(prefix, 0, 2, 1, hin::SnapshotOptions{});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kNotFound);
}

TEST(ShardSliceIoTest, RejectsHaloDepthMismatchAndTruncation) {
  const hin::Graph aux = MakeRing(30);
  ShardPlanOptions options;
  options.num_shards = 2;
  const ShardPlan plan(aux.num_vertices(), options);
  auto slice = ExtractShardSlice(aux, plan, 0, /*halo_depth=*/1);
  ASSERT_TRUE(slice.ok());
  const std::string prefix = ::testing::TempDir() + "shard_slice_corrupt";
  ASSERT_TRUE(SaveShardSlice(slice.value(), prefix, 0, 2).ok());

  // A slice saved at depth 1 does not satisfy a depth-2 request: the
  // depth-2 sidecar simply does not exist.
  auto wrong_depth = LoadShardSlice(prefix, 0, 2, 2, hin::SnapshotOptions{});
  ASSERT_FALSE(wrong_depth.ok());
  EXPECT_EQ(wrong_depth.status().code(), util::Status::Code::kNotFound);

  // Truncate the sidecar mid-array: load must fail loudly, not return a
  // slice with a short id map.
  const std::string map_path = ShardMapPath(prefix, 0, 2, 1);
  std::FILE* f = std::fopen(map_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(map_path.c_str(), size - 5), 0);
  auto truncated = LoadShardSlice(prefix, 0, 2, 1, hin::SnapshotOptions{});
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::Status::Code::kCorruption);

  // Corrupt the magic: also a loud failure.
  f = std::fopen(map_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fputc('X', f);
  std::fclose(f);
  auto bad_magic = LoadShardSlice(prefix, 0, 2, 1, hin::SnapshotOptions{});
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), util::Status::Code::kCorruption);
}

}  // namespace
}  // namespace hinpriv::shard
