#ifndef HINPRIV_HIN_SCHEMA_IO_H_
#define HINPRIV_HIN_SCHEMA_IO_H_

#include <iosfwd>

#include "hin/schema.h"
#include "util/status.h"

namespace hinpriv::hin {

// Shared binary codec for NetworkSchema, used verbatim by the HINPRIVB
// graph format (binary_io.cc) and as the schema blob inside HINPRIVS
// snapshots (snapshot.cc):
//
//   u16 num_entity_types
//     (u32-length string name, u16 num_attrs,
//        (string name, u8 growable) x num_attrs) x num_entity_types
//   u16 num_link_types
//     (string name, u16 src, u16 dst, u8 has_strength, u8 growable,
//      u8 self_link) x num_link_types
//
// The reader validates every count and endpoint id but does NOT call
// NetworkSchema::Validate(); callers do that once the full container
// format has been checked.
util::Status WriteSchemaBinary(std::ostream& os, const NetworkSchema& schema);
util::Status ReadSchemaBinary(std::istream& is, NetworkSchema* schema);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_SCHEMA_IO_H_
