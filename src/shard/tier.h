#ifndef HINPRIV_SHARD_TIER_H_
#define HINPRIV_SHARD_TIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hin/graph.h"
#include "hin/snapshot.h"
#include "service/server.h"
#include "shard/shard_plan.h"
#include "util/status.h"

namespace hinpriv::shard {

// Assembly of a complete in-process scatter-gather tier: N shard servers,
// each owning its slice of the auxiliary graph (own CandidateIndex,
// prefilter tables, MatchCache, executor pool), fronted by one
// coordinator that scatters attack_one over the loopback wire protocol
// and merges the verdicts bit-identically to the unsharded scan.
struct ShardTierConfig {
  size_t num_shards = 2;
  // Halo depth extracted around each shard's owned vertices; the tier
  // serves attack_one up to max_distance == halo_depth bit-identically
  // and the coordinator rejects deeper requests (INVALID_REQUEST).
  int halo_depth = 1;
  uint64_t hash_seed = ShardPlanOptions{}.hash_seed;
  // When nonempty, slices persist as <prefix>.<i>ofN.d<halo>.hinprivs
  // snapshots (plus .shardmap sidecars) and each shard worker mmaps only
  // its slice through the arena-backed snapshot path; missing slices are
  // extracted and saved first. Empty = extract in memory.
  std::string slice_prefix;
  hin::SnapshotOptions snapshot;
  // Template for every shard server. Host/port are overridden (loopback,
  // ephemeral), as are dehin.candidate_limit, aux_id_map and metric_shard;
  // everything else (num_workers, queue bounds, deadlines, match options)
  // applies per shard. executor must stay null: a coordinator sharing a
  // pool with its shards deadlocks (see ServerConfig::executor).
  service::ServerConfig shard_server;
  // The coordinator's config; its host/port are the tier's public
  // endpoint. shard_endpoints/shard_halo_depth are filled in by Start().
  service::ServerConfig coordinator;
};

class ShardTier {
 public:
  // Both graphs are borrowed and must outlive the tier. `aux` is the full
  // auxiliary graph the slices are cut from (only needed at Start() when
  // slices are extracted rather than loaded, but the coordinator also
  // reports its totals in stats).
  ShardTier(const hin::Graph* target, const hin::Graph* aux,
            ShardTierConfig config);
  ~ShardTier();  // implies Shutdown()

  ShardTier(const ShardTier&) = delete;
  ShardTier& operator=(const ShardTier&) = delete;

  // Builds the plan, extracts or loads every slice, starts the shard
  // servers, then the coordinator wired to their ports.
  util::Status Start();

  // Coordinator drains first (it stops referencing the shards), then the
  // shards. Idempotent.
  void Shutdown();

  // The tier's public endpoint (the coordinator).
  uint16_t port() const;
  service::Server* coordinator() { return coordinator_.get(); }

  size_t num_shards() const { return config_.num_shards; }
  const std::vector<uint16_t>& shard_ports() const { return shard_ports_; }
  // Owned-vertex count per shard (balance observability).
  const std::vector<size_t>& owned_counts() const { return owned_counts_; }

 private:
  const hin::Graph* target_;
  const hin::Graph* aux_;
  ShardTierConfig config_;

  // Stable storage: shard servers hold pointers into these slices, so the
  // vector is sized once at Start() and never touched again.
  std::vector<ShardSlice> slices_;
  std::vector<std::unique_ptr<service::Server>> shard_servers_;
  std::unique_ptr<service::Server> coordinator_;
  std::vector<uint16_t> shard_ports_;
  std::vector<size_t> owned_counts_;
  bool started_ = false;
};

}  // namespace hinpriv::shard

#endif  // HINPRIV_SHARD_TIER_H_
