#include "obs/windowed.h"

#include <algorithm>

#include "obs/trace.h"

namespace hinpriv::obs {

WindowedAggregator::WindowedAggregator(MetricsRegistry* registry,
                                       WindowedAggregatorOptions options)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      options_(std::move(options)) {
  options_.ring_capacity = std::max<size_t>(2, options_.ring_capacity);
  if (options_.tick.count() <= 0) {
    options_.tick = std::chrono::milliseconds(1000);
  }
}

WindowedAggregator::~WindowedAggregator() { Stop(); }

std::chrono::steady_clock::time_point WindowedAggregator::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

void WindowedAggregator::SampleNow() {
  TimedSample sample;
  sample.at = Now();
  sample.snapshot = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

void WindowedAggregator::Start() {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  sampler_stop_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void WindowedAggregator::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void WindowedAggregator::SamplerLoop() {
  SetCurrentThreadName("obs/windowed_sampler");
  while (true) {
    SampleNow();
    std::unique_lock<std::mutex> lock(sampler_mu_);
    if (sampler_cv_.wait_for(lock, options_.tick,
                             [this] { return sampler_stop_; })) {
      return;
    }
  }
}

bool WindowedAggregator::PickWindow(double window_sec,
                                    const TimedSample** base,
                                    const TimedSample** latest) const {
  // Caller holds mu_.
  if (ring_.size() < 2) return false;
  *latest = &ring_.back();
  // Newest retained sample at least window_sec old; the ring is in time
  // order, so scan backwards from the end. Falls back to the oldest when
  // history is shorter than the window.
  const auto cutoff = (*latest)->at - std::chrono::duration_cast<
                                          std::chrono::steady_clock::duration>(
                                          std::chrono::duration<double>(
                                              std::max(0.0, window_sec)));
  *base = &ring_.front();
  for (size_t i = ring_.size() - 1; i-- > 0;) {
    if (ring_[i].at <= cutoff) {
      *base = &ring_[i];
      break;
    }
  }
  return *base != *latest;
}

WindowedAggregator::CounterWindow WindowedAggregator::CounterRate(
    std::string_view name, double window_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  CounterWindow window;
  const TimedSample* base = nullptr;
  const TimedSample* latest = nullptr;
  if (!PickWindow(window_sec, &base, &latest)) return window;
  const uint64_t newest = latest->snapshot.CounterValue(name);
  const uint64_t oldest = base->snapshot.CounterValue(name);
  // Counters are monotone; a smaller newest value means the registry was
  // reset between samples — report zero rather than a huge bogus delta.
  window.delta = newest >= oldest ? newest - oldest : 0;
  window.seconds =
      std::chrono::duration<double>(latest->at - base->at).count();
  window.rate = window.seconds > 0
                    ? static_cast<double>(window.delta) / window.seconds
                    : 0.0;
  return window;
}

HistogramSnapshot WindowedAggregator::HistogramWindow(
    std::string_view name, double window_sec, double* seconds_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot delta;
  delta.name = std::string(name);
  if (seconds_out != nullptr) *seconds_out = 0.0;
  const TimedSample* base = nullptr;
  const TimedSample* latest = nullptr;
  if (!PickWindow(window_sec, &base, &latest)) return delta;
  const HistogramSnapshot* newest = latest->snapshot.FindHistogram(name);
  if (newest == nullptr) return delta;
  const HistogramSnapshot* oldest = base->snapshot.FindHistogram(name);
  if (seconds_out != nullptr) {
    *seconds_out =
        std::chrono::duration<double>(latest->at - base->at).count();
  }
  size_t first_populated = Histogram::kNumBuckets;
  size_t last_populated = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t now_count = newest->buckets[b];
    const uint64_t then_count = oldest != nullptr ? oldest->buckets[b] : 0;
    delta.buckets[b] = now_count >= then_count ? now_count - then_count : 0;
    if (delta.buckets[b] > 0) {
      first_populated = std::min(first_populated, b);
      last_populated = std::max(last_populated, b);
      delta.count += delta.buckets[b];
    }
  }
  const uint64_t then_sum = oldest != nullptr ? oldest->sum : 0;
  delta.sum = newest->sum >= then_sum ? newest->sum - then_sum : 0;
  if (delta.count > 0) {
    // Exact window extremes are not recoverable from two cumulative
    // snapshots; tighten to the populated delta buckets intersected with
    // the cumulative extremes (which bound every sample in the window).
    delta.min = std::max(Histogram::BucketLow(first_populated), newest->min);
    delta.max = std::min(Histogram::BucketHigh(last_populated), newest->max);
    if (delta.min > delta.max) {
      delta.min = Histogram::BucketLow(first_populated);
      delta.max = Histogram::BucketHigh(last_populated);
    }
  }
  return delta;
}

double WindowedAggregator::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  for (const GaugeSnapshot& gauge : ring_.back().snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return 0.0;
}

uint64_t WindowedAggregator::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0;
  return ring_.back().snapshot.CounterValue(name);
}

size_t WindowedAggregator::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

double WindowedAggregator::coverage_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  return std::chrono::duration<double>(ring_.back().at - ring_.front().at)
      .count();
}

}  // namespace hinpriv::obs
