#include "core/signature.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

hin::Graph BuildUsers(size_t n) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, n);
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

SignatureOptions TagOnlyOptions() {
  SignatureOptions options;
  options.attributes = {hin::kTagCountAttr};
  options.link_types = {hin::kFollowLink, hin::kMentionLink,
                        hin::kRetweetLink, hin::kCommentLink};
  return options;
}

TEST(SignatureTest, DistanceZeroDependsOnlyOnSelectedAttributes) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 3);
  // Same tag count, different other attributes.
  ASSERT_TRUE(builder.SetAttribute(0, hin::kTagCountAttr, 5).ok());
  ASSERT_TRUE(builder.SetAttribute(1, hin::kTagCountAttr, 5).ok());
  ASSERT_TRUE(builder.SetAttribute(1, hin::kYobAttr, 1980).ok());
  ASSERT_TRUE(builder.SetAttribute(2, hin::kTagCountAttr, 6).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  const auto sigs = ComputeSignatures(graph.value(), TagOnlyOptions(), 0);
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs[0][0], sigs[0][1]);
  EXPECT_NE(sigs[0][0], sigs[0][2]);
}

TEST(SignatureTest, NeighborhoodsDifferentiateAtDistanceOne) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 4);
  // 0 and 1 share profiles; 0 mentions 2 (tag 7), 1 mentions 3 (tag 9).
  ASSERT_TRUE(builder.SetAttribute(2, hin::kTagCountAttr, 7).ok());
  ASSERT_TRUE(builder.SetAttribute(3, hin::kTagCountAttr, 9).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, hin::kMentionLink, 5).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  const auto sigs = ComputeSignatures(graph.value(), TagOnlyOptions(), 1);
  EXPECT_EQ(sigs[0][0], sigs[0][1]);  // identical at distance 0
  EXPECT_NE(sigs[1][0], sigs[1][1]);  // differentiated at distance 1
}

TEST(SignatureTest, IsomorphicNeighborhoodsShareSignatures) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 6);
  // Users 0 and 1 each mention a tag-7 user with strength 5 and follow a
  // tag-2 user: structurally identical neighborhoods on distinct vertices.
  ASSERT_TRUE(builder.SetAttribute(2, hin::kTagCountAttr, 7).ok());
  ASSERT_TRUE(builder.SetAttribute(3, hin::kTagCountAttr, 7).ok());
  ASSERT_TRUE(builder.SetAttribute(4, hin::kTagCountAttr, 2).ok());
  ASSERT_TRUE(builder.SetAttribute(5, hin::kTagCountAttr, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, hin::kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 4, hin::kFollowLink).ok());
  ASSERT_TRUE(builder.AddEdge(1, 5, hin::kFollowLink).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  const auto sigs = ComputeSignatures(graph.value(), TagOnlyOptions(), 2);
  EXPECT_EQ(sigs[1][0], sigs[1][1]);
  EXPECT_EQ(sigs[2][0], sigs[2][1]);
}

TEST(SignatureTest, StrengthEntersTheSignature) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 4);
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, hin::kMentionLink, 6).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  const auto sigs = ComputeSignatures(graph.value(), TagOnlyOptions(), 1);
  EXPECT_NE(sigs[1][0], sigs[1][1]);
}

TEST(SignatureTest, LinkTypeEntersTheSignature) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 4);
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, hin::kCommentLink, 5).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  const auto sigs = ComputeSignatures(graph.value(), TagOnlyOptions(), 1);
  EXPECT_NE(sigs[1][0], sigs[1][1]);
}

TEST(SignatureTest, DisabledLinkTypesAreInvisible) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 4);
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kRetweetLink, 3).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  SignatureOptions options = TagOnlyOptions();
  options.link_types = {hin::kFollowLink};  // retweet not utilized
  const auto sigs = ComputeSignatures(graph.value(), options, 1);
  EXPECT_EQ(sigs[1][0], sigs[1][1]);
}

TEST(SignatureTest, NeighborOrderIsCanonical) {
  // Same multiset of neighbors added in different order must hash equally.
  hin::GraphBuilder b1(hin::TqqTargetSchema());
  b1.AddVertices(0, 3);
  ASSERT_TRUE(b1.AddEdge(0, 1, hin::kMentionLink, 2).ok());
  ASSERT_TRUE(b1.AddEdge(0, 2, hin::kMentionLink, 9).ok());
  auto g1 = std::move(b1).Build();
  hin::GraphBuilder b2(hin::TqqTargetSchema());
  b2.AddVertices(0, 3);
  ASSERT_TRUE(b2.AddEdge(0, 2, hin::kMentionLink, 9).ok());
  ASSERT_TRUE(b2.AddEdge(0, 1, hin::kMentionLink, 2).ok());
  auto g2 = std::move(b2).Build();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  const auto s1 = ComputeSignatures(g1.value(), TagOnlyOptions(), 1);
  const auto s2 = ComputeSignatures(g2.value(), TagOnlyOptions(), 1);
  EXPECT_EQ(s1[1][0], s2[1][0]);
}

TEST(SignatureTest, InEdgesChangeSignatureOnlyWhenEnabled) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 3);
  ASSERT_TRUE(builder.AddEdge(2, 0, hin::kMentionLink, 4).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  SignatureOptions out_only = TagOnlyOptions();
  const auto sigs_out = ComputeSignatures(graph.value(), out_only, 1);
  EXPECT_EQ(sigs_out[1][0], sigs_out[1][1]);  // in-edge invisible

  SignatureOptions both = TagOnlyOptions();
  both.use_in_edges = true;
  const auto sigs_both = ComputeSignatures(graph.value(), both, 1);
  EXPECT_NE(sigs_both[1][0], sigs_both[1][1]);
}

TEST(SignatureTest, CountDistinct) {
  EXPECT_EQ(CountDistinct(std::vector<uint64_t>{}), 0u);
  EXPECT_EQ(CountDistinct(std::vector<uint64_t>{1, 1, 1}), 1u);
  EXPECT_EQ(CountDistinct(std::vector<uint64_t>{1, 2, 3, 2}), 3u);
}

TEST(SignatureTest, EmptyGraphYieldsEmptyLevels) {
  const hin::Graph graph = BuildUsers(0);
  const auto sigs = ComputeSignatures(graph, TagOnlyOptions(), 2);
  ASSERT_EQ(sigs.size(), 3u);
  for (const auto& level : sigs) EXPECT_TRUE(level.empty());
}

// Property sweep on random graphs: signature count levels are monotone
// nondecreasing in distance (utilizing more neighbors can only refine the
// partition — equal sig_n implies equal sig_{n-1} ... except hash
// collisions, which are vanishingly unlikely at this scale).
class SignatureMonotonicityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SignatureMonotonicityTest, CardinalityNondecreasingInDistance) {
  synth::TqqConfig config;
  config.num_users = 400;
  util::Rng rng(GetParam());
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  SignatureOptions options = TagOnlyOptions();
  const auto sigs = ComputeSignatures(graph.value(), options, 3);
  size_t prev = 0;
  for (const auto& level : sigs) {
    const size_t card = CountDistinct(level);
    EXPECT_GE(card, prev);
    prev = card;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureMonotonicityTest,
                         testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace hinpriv::core
