#include "baselines/propagation_attack.h"

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/planted_target.h"
#include "util/random.h"

namespace hinpriv::baselines {
namespace {

using hin::VertexId;

// A small target/auxiliary pair where the mapping is forced by structure:
// a directed 5-chain with distinctive mention strengths. Identical graphs,
// identity is the only consistent mapping.
hin::Graph Chain(const std::vector<hin::Strength>& strengths) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, strengths.size() + 1);
  for (size_t i = 0; i < strengths.size(); ++i) {
    EXPECT_TRUE(builder
                    .AddEdge(static_cast<VertexId>(i),
                             static_cast<VertexId>(i + 1), hin::kMentionLink,
                             strengths[i])
                    .ok());
  }
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(PropagationAttackTest, PropagatesAlongAChainFromOneSeed) {
  const hin::Graph target = Chain({2, 3, 4, 5});
  const hin::Graph aux = Chain({2, 3, 4, 5});
  auto result = RunPropagationAttack(target, aux, {{0, 0}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_mapped, 5u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.value().mapping[v], v) << v;
  }
}

TEST(PropagationAttackTest, SeedsAreValidated) {
  const hin::Graph target = Chain({1});
  const hin::Graph aux = Chain({1});
  EXPECT_FALSE(RunPropagationAttack(target, aux, {{9, 0}}).ok());
  EXPECT_FALSE(RunPropagationAttack(target, aux, {{0, 9}}).ok());
  EXPECT_FALSE(
      RunPropagationAttack(target, aux, {{0, 0}, {0, 1}}).ok());  // dup
  EXPECT_FALSE(
      RunPropagationAttack(target, aux, {{0, 0}, {1, 0}}).ok());  // dup aux
}

TEST(PropagationAttackTest, NoSeedsMapsNothing) {
  const hin::Graph target = Chain({2, 3});
  const hin::Graph aux = Chain({2, 3});
  auto result = RunPropagationAttack(target, aux, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_mapped, 0u);
}

TEST(PropagationAttackTest, AmbiguityBlocksEccentricityGate) {
  // Target vertex 0 points at two structurally identical aux candidates:
  // the (best - second)/stddev gate must refuse to choose.
  hin::GraphBuilder aux_builder(hin::TqqTargetSchema());
  aux_builder.AddVertices(0, 4);
  // Both 1 and 2 point at 3 with equal strength.
  EXPECT_TRUE(aux_builder.AddEdge(1, 3, hin::kMentionLink, 2).ok());
  EXPECT_TRUE(aux_builder.AddEdge(2, 3, hin::kMentionLink, 2).ok());
  auto aux = std::move(aux_builder).Build();
  ASSERT_TRUE(aux.ok());

  hin::GraphBuilder t_builder(hin::TqqTargetSchema());
  t_builder.AddVertices(0, 2);
  EXPECT_TRUE(t_builder.AddEdge(0, 1, hin::kMentionLink, 2).ok());
  auto target = std::move(t_builder).Build();
  ASSERT_TRUE(target.ok());

  // Seed: target 1 (the mentioned user) == aux 3.
  auto result = RunPropagationAttack(target.value(), aux.value(), {{1, 3}});
  ASSERT_TRUE(result.ok());
  // Target 0 stays unmapped: aux 1 and aux 2 tie.
  EXPECT_EQ(result.value().mapping[0], hin::kInvalidVertex);
}

TEST(PropagationAttackTest, RespectsConfigValidation) {
  const hin::Graph target = Chain({1});
  const hin::Graph aux = Chain({1});
  PropagationConfig config;
  config.max_iterations = 0;
  EXPECT_FALSE(RunPropagationAttack(target, aux, {}, config).ok());
  config = PropagationConfig{};
  config.link_types = {static_cast<hin::LinkTypeId>(99)};
  EXPECT_FALSE(RunPropagationAttack(target, aux, {}, config).ok());
}

TEST(PropagationAttackTest, RecoversMostOfADenseSelfMapping) {
  // Target == auxiliary (no anonymization, no growth): with a handful of
  // ground-truth seeds, propagation should re-identify a decent share of a
  // dense planted sample — and everything it maps in this noiseless
  // setting should be correct.
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 300;
  spec.density = 0.02;
  synth::GrowthConfig no_growth;
  no_growth.new_user_fraction = 0.0;
  no_growth.new_edge_fraction = 0.0;
  no_growth.attr_growth_prob = 0.0;
  no_growth.strength_growth_prob = 0.0;
  util::Rng rng(3);
  auto dataset = synth::BuildPlantedDataset(config, spec, no_growth, &rng);
  ASSERT_TRUE(dataset.ok());

  std::vector<std::pair<VertexId, VertexId>> seeds;
  for (VertexId v = 0; v < 20; ++v) {
    seeds.emplace_back(v, dataset.value().target_to_aux[v]);
  }
  auto result = RunPropagationAttack(dataset.value().target,
                                     dataset.value().auxiliary, seeds);
  ASSERT_TRUE(result.ok());
  size_t correct = 0;
  size_t wrong = 0;
  for (VertexId v = 20; v < 300; ++v) {
    const VertexId mapped = result.value().mapping[v];
    if (mapped == hin::kInvalidVertex) continue;
    if (mapped == dataset.value().target_to_aux[v]) {
      ++correct;
    } else {
      ++wrong;
    }
  }
  EXPECT_GT(correct, 50u);
  // The eccentricity gate keeps the error rate low in the noiseless case.
  EXPECT_LT(wrong, correct / 4 + 5);
}

TEST(PropagationAttackTest, MismatchedSchemasRejected) {
  const hin::Graph target = Chain({1});
  hin::NetworkSchema schema;
  const hin::EntityTypeId node = schema.AddEntityType("N");
  schema.AddLinkType("e", node, node, false, false, false);
  hin::GraphBuilder builder(schema);
  builder.AddVertex(node);
  auto aux = std::move(builder).Build();
  ASSERT_TRUE(aux.ok());
  EXPECT_FALSE(RunPropagationAttack(target, aux.value(), {}).ok());
}

}  // namespace
}  // namespace hinpriv::baselines
