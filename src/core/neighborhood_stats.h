#ifndef HINPRIV_CORE_NEIGHBORHOOD_STATS_H_
#define HINPRIV_CORE_NEIGHBORHOOD_STATS_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/dominance_kernels.h"
#include "hin/graph.h"
#include "hin/types.h"
#include "util/simd.h"

namespace hinpriv::hin {
struct GraphDelta;
}  // namespace hinpriv::hin

namespace hinpriv::core {

// Precomputed per-vertex neighborhood statistics for the link types (and
// directions) a DeHIN configuration utilizes: for every vertex and every
// (link type, direction) slot, the neighborhood's strength multiset sorted
// ascending. Built once per graph (O(E log deg)) and then queried in O(1)
// per slot, this backs the Layer-1 prefilter of Dehin::LinkMatch — a sound
// necessary-condition test that rejects (target, candidate) pairs without
// touching the O(|T|·|A|) bipartite candidate-set construction.
//
// Slot layout: link type i of the configured list occupies slot i (out
// direction) when in-edges are unused, or slots 2i (out) / 2i+1 (in) when
// they are. Two stats built from the same configuration therefore agree on
// slot meaning, which is all the prefilter needs.
//
// Storage is two contiguous arenas shared by every slot — one offsets
// array (slot-major, absolute into the strengths arena) and one strengths
// array — both util::kSimdAlignment-aligned with zeroed padding, so the
// dominance kernels (core/dominance_kernels.h) can run full-width loads at
// any span offset without faulting.
//
// Growth deltas are absorbed incrementally (ApplyDelta): vertices touched
// by a delta move into a side patch table (same two-arena layout, same
// alignment guarantees) rebuilt per batch from the touched set, while the
// untouched majority keeps reading the original arenas. When the patched
// fraction crosses a threshold the stats compact back into one full build.
class NeighborhoodStats {
 public:
  NeighborhoodStats(const hin::Graph& graph,
                    const std::vector<hin::LinkTypeId>& link_types,
                    bool use_in_edges);

  NeighborhoodStats(const NeighborhoodStats&) = delete;
  NeighborhoodStats& operator=(const NeighborhoodStats&) = delete;

  size_t num_slots() const { return num_slots_; }

  // The strength multiset of v's neighborhood in `slot`, sorted ascending.
  // The span's size is the per-type degree, so no separate degree query is
  // needed.
  std::span<const hin::Strength> SortedStrengths(size_t slot,
                                                 hin::VertexId v) const {
    if (v < patch_row_.size() && patch_row_[v] != kNoPatch) {
      const uint64_t* off =
          patch_offsets_.data() + slot * patch_stride_ + patch_row_[v];
      return {patch_strengths_.data() + off[0], off[1] - off[0]};
    }
    const uint64_t* off = SlotOffsets(slot) + v;
    return {strengths_.data() + off[0], off[1] - off[0]};
  }

  // Batched Layer-1 test for one (vt, va) pair: every slot's target span
  // (this object, vertex vt) must be dominated by the same slot's
  // auxiliary span (aux_stats, vertex va) under `dominates` — the kernel
  // Dehin resolved once at startup, so the per-slot loop is two pointer
  // fetches and one indirect call, with no per-slot dispatch. Slots whose
  // target span is empty or larger than `saturation_limit` (fake-link
  // saturation, see DehinConfig) are skipped, mirroring LinkMatch. False
  // proves LinkMatch would reject the pair.
  bool PrefilterPass(const NeighborhoodStats& aux_stats, hin::VertexId vt,
                     hin::VertexId va, size_t saturation_limit,
                     DominanceFn dominates) const {
    for (size_t slot = 0; slot < num_slots_; ++slot) {
      const std::span<const hin::Strength> t = SortedStrengths(slot, vt);
      if (t.empty() || t.size() > saturation_limit) continue;
      const std::span<const hin::Strength> a =
          aux_stats.SortedStrengths(slot, va);
      if (!dominates(t.data(), t.size(), a.data(), a.size())) {
        return false;
      }
    }
    return true;
  }

  // Incrementally absorbs one growth batch after the graph has been
  // mutated by hin::GraphBuilder::ApplyDelta. Only vertices in the delta's
  // 1-hop closure — new vertices plus the endpoints of added edges (attr
  // bumps do not touch strengths) — have their slots recomputed, into the
  // patch arenas; the base arenas stay untouched, so cost is proportional
  // to the patched set's degree sum, not E. The patch set accumulates
  // across batches; once it exceeds ~1/4 of the graph the stats compact
  // into a fresh full build (amortized O(E) every O(V) patched vertices).
  void ApplyDelta(const hin::Graph& graph, const hin::GraphDelta& delta);

  // Observability for tests and the delta bench: how many vertices read
  // from the patch table, and how many the base arenas cover.
  size_t num_patched() const { return patch_rows_; }
  size_t base_vertices() const { return base_vertices_; }

  // Necessary condition for Algorithm 2's per-type acceptance test: a
  // perfect left matching assigns each target edge a distinct auxiliary
  // edge whose strength passes LinkStrengthMatch. Under growth-aware
  // (aux >= target) semantics that requires the top-|T| auxiliary strengths
  // to dominate the sorted target strengths element-wise; under exact
  // semantics it requires multiset containment. Both are decided by one
  // merged scan over the sorted spans, O(|T| + |A|). Returns true when a
  // matching is still possible (the pair must proceed to the full test);
  // false is a proof that Dehin::LinkMatch would reject.
  //
  // This is the scalar reference the SIMD tiers in dominance_kernels.cc
  // are differentially pinned against.
  static bool StrengthMultisetDominates(
      std::span<const hin::Strength> target_sorted,
      std::span<const hin::Strength> aux_sorted, bool growth_aware);

 private:
  static constexpr uint32_t kNoPatch = std::numeric_limits<uint32_t>::max();

  // Full (re)build of the base arenas from `graph`; clears the patch table.
  void BuildFull(const hin::Graph& graph);

  // Offsets of `slot`: base_vertices_ + 1 absolute positions into the
  // shared strengths arena. Valid for unpatched vertices only (every
  // vertex >= base_vertices_ is patched by construction).
  const uint64_t* SlotOffsets(size_t slot) const {
    return offsets_.data() + slot * offsets_stride_;
  }

  std::vector<hin::LinkTypeId> link_types_;
  bool use_in_edges_ = false;

  size_t num_slots_ = 0;
  size_t base_vertices_ = 0;   // vertex count at the last full build
  size_t offsets_stride_ = 0;  // base_vertices_ + 1
  util::AlignedBuffer<uint64_t> offsets_;
  util::AlignedBuffer<hin::Strength> strengths_;

  // Patch table: row r of `slot` lives at patch_offsets_[slot *
  // patch_stride_ + r .. +1], absolute into patch_strengths_. patch_row_
  // maps vertex id -> row (kNoPatch when the base arenas are current).
  size_t patch_rows_ = 0;
  size_t patch_stride_ = 0;  // patch_rows_ + 1
  std::vector<uint32_t> patch_row_;
  util::AlignedBuffer<uint64_t> patch_offsets_;
  util::AlignedBuffer<hin::Strength> patch_strengths_;
};

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_NEIGHBORHOOD_STATS_H_
