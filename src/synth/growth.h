#ifndef HINPRIV_SYNTH_GROWTH_H_
#define HINPRIV_SYNTH_GROWTH_H_

#include "hin/graph.h"
#include "synth/tqq_config.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::synth {

// Applies the Section 5.1 threat-model growth to a base network, producing
// the auxiliary dataset an adversary crawls after a time gap:
//
//   * the first base.num_vertices() vertices are preserved with their ids,
//     so ground-truth mappings into the base remain valid;
//   * new users are appended; new links are added (possibly touching base
//     users); nothing is ever removed;
//   * growable profile attributes (per the schema's AttributeDef.growable)
//     only increase;
//   * strengths of growable-strength link types only increase.
//
// Only single-entity-type target-schema graphs are supported (the growth
// semantics of tweets/comments are induced via projection instead).
util::Result<hin::Graph> GrowNetwork(const hin::Graph& base,
                                     const GrowthConfig& growth,
                                     const TqqConfig& profile_config,
                                     util::Rng* rng);

}  // namespace hinpriv::synth

#endif  // HINPRIV_SYNTH_GROWTH_H_
