# Empty compiler generated dependencies file for table2_dehin_density.
# This may be replaced when dependencies are built.
