# Empty dependencies file for hinpriv_baselines.
# This may be replaced when dependencies are built.
