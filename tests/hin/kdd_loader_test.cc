#include "hin/kdd_loader.h"

#include <fstream>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

class KddLoaderTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/kdd_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    files_.user_profile = dir_ + "_profile.txt";
    files_.user_sns = dir_ + "_sns.txt";
    files_.user_action = dir_ + "_action.txt";
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    out << content;
  }

  void WriteDefaultFiles() {
    // Users 100, 200, 300 with profiles; 100 follows 200; 100 mentions 200
    // five times and comments 300 twice.
    WriteFile(files_.user_profile,
              "100\t1980\t1\t120\t5;7;9\n"
              "200\t1985\t0\t80\t0\n"
              "300\t1970\t1\t400\t11\n");
    WriteFile(files_.user_sns, "100\t200\n");
    WriteFile(files_.user_action,
              "100\t200\t5\t0\t0\n"
              "100\t300\t0\t0\t2\n");
  }

  std::string dir_;
  KddCupFiles files_;
};

TEST_F(KddLoaderTest, LoadsProfilesAndAllLinkChannels) {
  WriteDefaultFiles();
  auto report = LoadKddCupDataset(files_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Graph& g = report.value().graph;
  EXPECT_EQ(report.value().num_users, 3u);
  EXPECT_EQ(report.value().skipped_edges, 0u);

  // File order defines vertex ids: 100 -> 0, 200 -> 1, 300 -> 2.
  EXPECT_EQ(g.attribute(0, kYobAttr), 1980);
  EXPECT_EQ(g.attribute(0, kGenderAttr), 1);
  EXPECT_EQ(g.attribute(0, kTweetCountAttr), 120);
  EXPECT_EQ(g.attribute(0, kTagCountAttr), 3);  // "5;7;9"
  EXPECT_EQ(g.attribute(1, kTagCountAttr), 0);  // "0" == no tags
  EXPECT_EQ(g.attribute(2, kTagCountAttr), 1);  // "11"

  EXPECT_TRUE(g.HasEdge(kFollowLink, 0, 1));
  EXPECT_EQ(g.EdgeStrength(kMentionLink, 0, 1), 5u);
  EXPECT_EQ(g.EdgeStrength(kCommentLink, 0, 2), 2u);
  EXPECT_EQ(g.EdgeStrength(kRetweetLink, 0, 1), 0u);
}

TEST_F(KddLoaderTest, SkipsUnknownUsersWhenConfigured) {
  WriteDefaultFiles();
  WriteFile(files_.user_sns, "100\t200\n100\t999\n");
  auto report = LoadKddCupDataset(files_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().skipped_edges, 1u);

  KddLoadOptions strict;
  strict.skip_unknown_users = false;
  EXPECT_FALSE(LoadKddCupDataset(files_, strict).ok());
}

TEST_F(KddLoaderTest, SelfInteractionsAreDropped) {
  WriteDefaultFiles();
  WriteFile(files_.user_action, "100\t100\t3\t0\t0\n100\t200\t5\t0\t0\n");
  auto report = LoadKddCupDataset(files_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().skipped_edges, 1u);
  EXPECT_EQ(report.value().graph.EdgeStrength(kMentionLink, 0, 1), 5u);
}

TEST_F(KddLoaderTest, RejectsMalformedRows) {
  WriteDefaultFiles();
  WriteFile(files_.user_profile, "100\t1980\t1\t120\n");  // 4 fields
  EXPECT_FALSE(LoadKddCupDataset(files_).ok());

  WriteDefaultFiles();
  WriteFile(files_.user_profile, "abc\t1980\t1\t120\t0\n");
  EXPECT_FALSE(LoadKddCupDataset(files_).ok());

  WriteDefaultFiles();
  WriteFile(files_.user_profile,
            "100\t1980\t1\t120\t0\n100\t1990\t0\t10\t0\n");  // dup id
  EXPECT_FALSE(LoadKddCupDataset(files_).ok());

  WriteDefaultFiles();
  WriteFile(files_.user_action, "100\t200\t-3\t0\t0\n");  // negative
  EXPECT_FALSE(LoadKddCupDataset(files_).ok());
}

TEST_F(KddLoaderTest, MissingFileIsIoError) {
  WriteDefaultFiles();
  files_.user_sns = "/nonexistent/sns.txt";
  const auto report = LoadKddCupDataset(files_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::Status::Code::kIoError);
}

TEST_F(KddLoaderTest, SyntheticNetworkRoundTrips) {
  synth::TqqConfig config;
  config.num_users = 400;
  util::Rng rng(7);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());

  ASSERT_TRUE(WriteKddCupDataset(graph.value(), files_).ok());
  auto loaded = LoadKddCupDataset(files_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& g = loaded.value().graph;
  ASSERT_EQ(g.num_vertices(), graph.value().num_vertices());
  ASSERT_EQ(g.num_edges(), graph.value().num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (AttributeId a = 0; a < 4; ++a) {
      ASSERT_EQ(g.attribute(v, a), graph.value().attribute(v, a));
    }
    for (LinkTypeId lt = 0; lt < kNumTqqLinkTypes; ++lt) {
      const auto original = graph.value().OutEdges(lt, v);
      const auto round_tripped = g.OutEdges(lt, v);
      ASSERT_EQ(original.size(), round_tripped.size());
      for (size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(original[i], round_tripped[i]);
      }
    }
  }
}

TEST_F(KddLoaderTest, WriterRejectsNonTqqGraphs) {
  NetworkSchema schema;
  const EntityTypeId node = schema.AddEntityType("N");
  schema.AddLinkType("e", node, node, false, false, false);
  GraphBuilder builder(schema);
  builder.AddVertex(node);
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(WriteKddCupDataset(graph.value(), files_).ok());
}

}  // namespace
}  // namespace hinpriv::hin
