file(REMOVE_RECURSE
  "CMakeFiles/dehin_property_test.dir/core/dehin_property_test.cc.o"
  "CMakeFiles/dehin_property_test.dir/core/dehin_property_test.cc.o.d"
  "dehin_property_test"
  "dehin_property_test.pdb"
  "dehin_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehin_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
