file(REMOVE_RECURSE
  "libhinpriv_synth.a"
)
