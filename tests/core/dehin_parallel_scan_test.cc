// Differential and cancellation coverage for Dehin::DeanonymizeParallel:
// the intra-query parallel candidate scan must be bit-identical to the
// serial Deanonymize for every configuration that changes its code path
// (candidate index on/off, shared cache on/off, executor sizes, grain
// sizes), and a cancelled scan must report a status without poisoning the
// shared MatchCache.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "core/dehin.h"
#include "eval/experiment.h"
#include "exec/executor.h"
#include "util/cancellation.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

eval::ExperimentDataset MakeDataset(uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = 4000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 150;
  spec.density = 0.012;
  util::Rng rng(seed);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

struct ScanConfig {
  bool use_index;
  bool use_shared_cache;
};

class ParallelScanDifferentialTest
    : public testing::TestWithParam<ScanConfig> {};

TEST_P(ParallelScanDifferentialTest, BitIdenticalToSerialEverywhere) {
  const ScanConfig scan = GetParam();
  const eval::ExperimentDataset dataset = MakeDataset(11);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.use_candidate_index = scan.use_index;
  config.use_shared_cache = scan.use_shared_cache;
  Dehin dehin(&dataset.auxiliary, config);

  exec::Executor two(2);
  exec::Executor four(4);
  struct Variant {
    exec::Executor* executor;
    size_t grain;
  };
  const Variant variants[] = {
      {&two, 0}, {&four, 0}, {&four, 1}, {&four, 7}, {&four, 100000}};

  for (int max_distance = 0; max_distance <= 2; ++max_distance) {
    for (hin::VertexId vt = 0; vt < dataset.target.num_vertices(); ++vt) {
      const std::vector<hin::VertexId> serial =
          dehin.Deanonymize(dataset.target, vt, max_distance);
      for (const Variant& variant : variants) {
        Dehin::ParallelScanOptions options;
        options.executor = variant.executor;
        options.grain = variant.grain;
        auto parallel = dehin.DeanonymizeParallel(dataset.target, vt,
                                                  max_distance, options);
        ASSERT_TRUE(parallel.ok());
        ASSERT_EQ(parallel.value(), serial)
            << "vt=" << vt << " d=" << max_distance
            << " workers=" << variant.executor->num_workers()
            << " grain=" << variant.grain;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScanConfigs, ParallelScanDifferentialTest,
    testing::Values(ScanConfig{true, true}, ScanConfig{true, false},
                    ScanConfig{false, true}, ScanConfig{false, false}));

TEST(ParallelScanTest, SingleWorkerExecutorFallsBackToSerial) {
  const eval::ExperimentDataset dataset = MakeDataset(12);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&dataset.auxiliary, config);
  exec::Executor one(1);
  Dehin::ParallelScanOptions options;
  options.executor = &one;
  for (hin::VertexId vt = 0; vt < 10; ++vt) {
    auto parallel = dehin.DeanonymizeParallel(dataset.target, vt, 1, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value(), dehin.Deanonymize(dataset.target, vt, 1));
  }
}

TEST(ParallelScanTest, PreCancelledTokenReturnsCancelled) {
  const eval::ExperimentDataset dataset = MakeDataset(13);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&dataset.auxiliary, config);
  exec::Executor executor(4);
  util::CancelToken cancel;
  cancel.Cancel();
  Dehin::ParallelScanOptions options;
  options.executor = &executor;
  options.cancel = &cancel;
  auto result = dehin.DeanonymizeParallel(dataset.target, 0, 2, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kCancelled);
}

TEST(ParallelScanTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const eval::ExperimentDataset dataset = MakeDataset(14);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&dataset.auxiliary, config);
  exec::Executor executor(4);
  util::CancelToken cancel;
  cancel.SetDeadlineAfter(std::chrono::nanoseconds(0));
  Dehin::ParallelScanOptions options;
  options.executor = &executor;
  options.cancel = &cancel;
  auto result = dehin.DeanonymizeParallel(dataset.target, 0, 2, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kDeadlineExceeded);
}

// A scan cancelled mid-flight must leave the shared MatchCache consistent:
// full scans on the same Dehin afterwards must equal a fresh instance.
TEST(ParallelScanTest, CancelledScanDoesNotPoisonMatchCache) {
  const eval::ExperimentDataset dataset = MakeDataset(15);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.use_shared_cache = true;
  Dehin dehin(&dataset.auxiliary, config);
  exec::Executor executor(4);

  // Fire a batch of scans racing a cancel; some may complete, some stop —
  // either way the cache must stay answer-preserving.
  for (hin::VertexId vt = 0; vt < 20; ++vt) {
    util::CancelToken cancel;
    Dehin::ParallelScanOptions options;
    options.executor = &executor;
    options.grain = 1;
    options.cancel = &cancel;
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      cancel.Cancel();
    });
    (void)dehin.DeanonymizeParallel(dataset.target, vt, 2, options);
    canceller.join();
  }

  Dehin fresh(&dataset.auxiliary, config);
  for (hin::VertexId vt = 0; vt < dataset.target.num_vertices(); ++vt) {
    ASSERT_EQ(dehin.Deanonymize(dataset.target, vt, 2),
              fresh.Deanonymize(dataset.target, vt, 2))
        << "vt=" << vt;
  }
}

}  // namespace
}  // namespace hinpriv::core
