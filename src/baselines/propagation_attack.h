#ifndef HINPRIV_BASELINES_PROPAGATION_ATTACK_H_
#define HINPRIV_BASELINES_PROPAGATION_ATTACK_H_

#include <utility>
#include <vector>

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::baselines {

// The seed-and-propagate de-anonymization baseline in the style of
// Narayanan & Shmatikov (S&P 2009), which the paper discusses in Section
// 2.2: starting from a set of precisely known seed mappings (in the
// original attack, re-identified cliques), the mapping is propagated along
// the graph — a target vertex whose already-mapped neighbors strongly
// agree on one auxiliary vertex gets mapped to it.
//
// This implementation generalizes the original to typed links (each link
// type and direction contributes its own votes) so it can run on the same
// heterogeneous networks as DeHIN, and serves as the comparison baseline
// in bench/baseline_comparison. Unlike DeHIN it needs seeds the adversary
// must obtain out of band, uses no profile attributes, and offers no
// soundness guarantee — its mistakes cascade.
struct PropagationConfig {
  // Eccentricity threshold: a candidate wins only if
  // (best - second_best) / stddev(scores) >= theta. Higher = more
  // conservative (fewer, more reliable mappings).
  double theta = 0.5;
  // Passes over the target vertex set; the original iterates until no new
  // mappings appear, which this cap bounds.
  int max_iterations = 10;
  // Degree-normalize votes by 1/sqrt(deg) of the auxiliary candidate, as
  // in the original algorithm.
  bool normalize_by_degree = true;
  // Link types to propagate along; empty = all.
  std::vector<hin::LinkTypeId> link_types;
};

struct PropagationResult {
  // mapping[target vertex] = auxiliary vertex or hin::kInvalidVertex.
  std::vector<hin::VertexId> mapping;
  size_t num_mapped = 0;
  int iterations_run = 0;
};

// Runs the attack. `seeds` are (target vertex, auxiliary vertex) pairs the
// adversary knows a priori; they are copied into the result mapping.
util::Result<PropagationResult> RunPropagationAttack(
    const hin::Graph& target, const hin::Graph& auxiliary,
    const std::vector<std::pair<hin::VertexId, hin::VertexId>>& seeds,
    const PropagationConfig& config = {});

}  // namespace hinpriv::baselines

#endif  // HINPRIV_BASELINES_PROPAGATION_ATTACK_H_
