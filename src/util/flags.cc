#include "util/flags.h"

#include <cassert>

#include "util/string_util.h"

namespace hinpriv::util {

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.value = default_value;
  f.default_value = default_value;
  f.help = help;
  flags_[name] = std::move(f);
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: '" +
                                     std::string(arg) + "'");
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // "--name value" form, unless the next token is another flag or absent.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      // Accept "--no-prefilter" for a flag defined as "no_prefilter":
      // hyphens and underscores are interchangeable on the command line.
      std::string normalized = name;
      for (char& c : normalized) {
        if (c == '-') c = '_';
      }
      it = flags_.find(normalized);
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    it->second.value = value;
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end());
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end());
  auto parsed = ParseInt64(it->second.value);
  if (parsed.ok()) return parsed.value();
  auto fallback = ParseInt64(it->second.default_value);
  return fallback.ok() ? fallback.value() : 0;
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end());
  auto parsed = ParseDouble(it->second.value);
  if (parsed.ok()) return parsed.value();
  auto fallback = ParseDouble(it->second.default_value);
  return fallback.ok() ? fallback.value() : 0.0;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end());
  const std::string& v = it->second.value;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace hinpriv::util
