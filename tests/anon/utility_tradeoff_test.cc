#include "anon/utility_tradeoff_anonymizers.h"

#include <set>

#include <gtest/gtest.h>

#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::anon {
namespace {

hin::Graph MakeGraph(size_t users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(StrengthBucketingTest, BucketsGrowableStrengths) {
  const hin::Graph graph = MakeGraph(400, 1);
  StrengthBucketingAnonymizer anonymizer(/*bucket=*/5);
  util::Rng rng(2);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  EXPECT_EQ(anon.num_edges(), graph.num_edges());  // no links lost
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    for (const hin::Edge& e : anon.OutEdges(hin::kMentionLink, v)) {
      // Published strengths sit on bucket boundaries 1, 6, 11, ...
      ASSERT_EQ((e.strength - 1) % 5, 0u);
    }
    for (const hin::Edge& e : anon.OutEdges(hin::kFollowLink, v)) {
      ASSERT_EQ(e.strength, 1u);  // non-growable types untouched
    }
  }
}

TEST(StrengthBucketingTest, IsGrowthConsistentLowerBound) {
  // Bucketed strength <= original, so the growth-aware matchers stay sound
  // when the auxiliary carries the raw strengths.
  const hin::Graph graph = MakeGraph(300, 3);
  StrengthBucketingAnonymizer anonymizer(10);
  util::Rng rng(4);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const auto& to_original = result.value().to_original;
  std::vector<hin::VertexId> to_new(graph.num_vertices());
  for (hin::VertexId v = 0; v < graph.num_vertices(); ++v) {
    to_new[to_original[v]] = v;
  }
  for (hin::VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const hin::Edge& e : graph.OutEdges(hin::kCommentLink, v)) {
      const hin::Strength published = result.value().graph.EdgeStrength(
          hin::kCommentLink, to_new[v], to_new[e.neighbor]);
      ASSERT_GE(published, 1u);
      ASSERT_LE(published, e.strength);
    }
  }
}

TEST(StrengthBucketingTest, ReducesStrengthCardinality) {
  const hin::Graph graph = MakeGraph(2000, 5);
  StrengthBucketingAnonymizer anonymizer(10);
  util::Rng rng(6);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  auto distinct_strengths = [](const hin::Graph& g, hin::LinkTypeId lt) {
    std::set<hin::Strength> values;
    for (hin::VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const hin::Edge& e : g.OutEdges(lt, v)) values.insert(e.strength);
    }
    return values.size();
  };
  EXPECT_LT(distinct_strengths(result.value().graph, hin::kMentionLink),
            distinct_strengths(graph, hin::kMentionLink));
}

TEST(StrengthBucketingTest, RejectsZeroBucket) {
  const hin::Graph graph = MakeGraph(50, 7);
  util::Rng rng(8);
  EXPECT_FALSE(StrengthBucketingAnonymizer(0).Anonymize(graph, &rng).ok());
}

TEST(LinkTypeDroppingTest, PublishesOnlyKeptTypes) {
  const hin::Graph graph = MakeGraph(400, 9);
  LinkTypeDroppingAnonymizer anonymizer({hin::kFollowLink});
  util::Rng rng(10);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  const hin::Graph& anon = result.value().graph;
  size_t follow_edges = 0;
  for (hin::VertexId v = 0; v < anon.num_vertices(); ++v) {
    follow_edges += anon.OutDegree(hin::kFollowLink, v);
    EXPECT_EQ(anon.OutDegree(hin::kMentionLink, v), 0u);
    EXPECT_EQ(anon.OutDegree(hin::kRetweetLink, v), 0u);
    EXPECT_EQ(anon.OutDegree(hin::kCommentLink, v), 0u);
  }
  EXPECT_EQ(anon.num_edges(), follow_edges);
  EXPECT_GT(follow_edges, 0u);
}

TEST(LinkTypeDroppingTest, EmptyKeptSetPublishesProfilesOnly) {
  const hin::Graph graph = MakeGraph(100, 11);
  LinkTypeDroppingAnonymizer anonymizer({});
  util::Rng rng(12);
  auto result = anonymizer.Anonymize(graph, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().graph.num_edges(), 0u);
  EXPECT_EQ(result.value().graph.num_vertices(), graph.num_vertices());
}

TEST(LinkTypeDroppingTest, RejectsOutOfRangeTypes) {
  const hin::Graph graph = MakeGraph(50, 13);
  util::Rng rng(14);
  LinkTypeDroppingAnonymizer anonymizer({static_cast<hin::LinkTypeId>(9)});
  EXPECT_FALSE(anonymizer.Anonymize(graph, &rng).ok());
}

TEST(UtilityTradeoffTest, Names) {
  EXPECT_EQ(StrengthBucketingAnonymizer(5).name(), "BUCKET5");
  EXPECT_EQ(LinkTypeDroppingAnonymizer({hin::kFollowLink}).name(),
            "DROP-TO-0");
}

}  // namespace
}  // namespace hinpriv::anon
