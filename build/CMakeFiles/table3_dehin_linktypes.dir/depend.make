# Empty dependencies file for table3_dehin_linktypes.
# This may be replaced when dependencies are built.
