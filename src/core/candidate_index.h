#ifndef HINPRIV_CORE_CANDIDATE_INDEX_H_
#define HINPRIV_CORE_CANDIDATE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/matchers.h"
#include "hin/graph.h"
#include "obs/metrics.h"

namespace hinpriv::hin {
struct GraphDelta;
}  // namespace hinpriv::hin

namespace hinpriv::core {

// Inverted index over the auxiliary network's profile attributes that
// accelerates the "foreach v in V" scan of Algorithm 1: auxiliary vertices
// are bucketed by their exact-match attribute values (gender, yob, tag
// count) and each bucket is sorted descending by the primary growable
// attribute (tweet count), so a query enumerates exactly the prefix whose
// growable value can still dominate the target's.
//
// The index is a pure optimization: with or without it, DeHIN visits the
// same candidate set (asserted by the differential tests and measured by
// the --no-index ablation).
class CandidateIndex {
 public:
  // `options` supplies the attribute partition; link-related fields are
  // ignored. The index holds a reference to `aux`; the graph must outlive
  // the index.
  CandidateIndex(const hin::Graph& aux, const MatchOptions& options);

  CandidateIndex(const CandidateIndex&) = delete;
  CandidateIndex& operator=(const CandidateIndex&) = delete;

  // Invokes fn(aux_vertex) for every auxiliary vertex whose profile
  // attributes match target vertex `vt` under `options_` (the same
  // predicate as EntityAttributesMatch).
  template <typename Fn>
  void ForEachCandidate(const hin::Graph& target, hin::VertexId vt,
                        Fn&& fn) const {
    auto it = buckets_.find(ExactKey(target, vt));
    if (it == buckets_.end()) {
      scan_length_->Record(0);
      return;
    }
    uint64_t scanned = 0;
    for (hin::VertexId va : it->second) {
      if (has_primary_ && options_.growth_aware &&
          aux_.attribute(va, primary_) < target.attribute(vt, primary_)) {
        break;  // sorted descending; no later entry can match
      }
      ++scanned;
      if (EntityAttributesMatch(target, vt, aux_, va, options_)) fn(va);
    }
    scan_length_->Record(scanned);
  }

  // Incrementally maintains the index after hin::GraphBuilder::ApplyDelta
  // has mutated the indexed graph (call order matters: the graph must
  // already hold the post-delta values). New vertices are inserted at their
  // sorted bucket position; existing vertices move only when a bumped
  // attribute participates in a key — a primary-growable bump re-positions
  // within its bucket, an exact-key bump (possible under non-default
  // options) moves it between buckets, and bumps to unkeyed attributes are
  // no-ops. Cost is O(|delta| log B) bucket work instead of the O(V log V)
  // full rebuild; the result is structurally identical to a rebuild
  // (asserted by OrderIdenticalTo in the differential tests).
  void ApplyDelta(const hin::GraphDelta& delta);

  // Exact structural equality with another index: same bucket keys and the
  // same vertex order inside every bucket. The differential guard for the
  // incremental path — the bucket sort's strict total order (primary value
  // descending, id ascending) makes rebuilt order unique, so identity here
  // implies identical candidate enumeration.
  bool OrderIdenticalTo(const CandidateIndex& other) const {
    return buckets_ == other.buckets_;
  }

  size_t num_buckets() const { return buckets_.size(); }

 private:
  uint64_t ExactKey(const hin::Graph& graph, hin::VertexId v) const;
  uint64_t ExactKeyBeforeBumps(
      hin::VertexId v,
      const std::vector<std::pair<hin::AttributeId, hin::AttrValue>>& bumps)
      const;

  const hin::Graph& aux_;
  MatchOptions options_;
  bool has_primary_ = false;
  hin::AttributeId primary_ = 0;
  std::unordered_map<uint64_t, std::vector<hin::VertexId>> buckets_;
  // How far each query walks its bucket before the descending-primary
  // early break — the measurable half of the "pure optimization" claim
  // above (the other half is the index-hit vs full-scan counters in
  // dehin.cc). Resolved once; Record() is lock-free.
  obs::Histogram* scan_length_;
};

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_CANDIDATE_INDEX_H_
