# Empty dependencies file for tqq_schema_test.
# This may be replaced when dependencies are built.
