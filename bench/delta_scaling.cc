// Delta-scaling benchmark: measures the cost of keeping the attack's warm
// state (candidate index, neighborhood-stats prefilter arenas, match-cache
// validity) current while the auxiliary network grows, against the
// alternative of rebuilding everything from scratch after every batch.
//
// At the paper's crawl size (2,320,895 t.qq users, Section 6.1) each
// growth batch touches well under 1% of the vertex set, so the incremental
// path — GraphBuilder::ApplyDelta on the heap arena followed by
// Dehin::ApplyAuxDelta (O(|delta| log B) index maintenance, 1-hop patch
// table for the prefilter, epoch-scoped cache invalidation) — should be
// dramatically cheaper than re-running the O(V log V + E) constructor.
//
// The headline claim this bench pins: the incremental warm-state refresh
// is >= 10x cheaper than a full rebuild for batches <= 1% of V. Every
// batch also runs a differential guard — Deanonymize answers from the
// incrementally-maintained Dehin must be bit-identical to a fresh one —
// so the speedup can never come from silently serving stale state.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "core/dehin.h"
#include "hin/graph_builder.h"
#include "hin/graph_delta.h"
#include "synth/growth.h"
#include "synth/planted_target.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace hinpriv;

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  // Like paper_scale: the point of this bench is the paper-scale number,
  // so --aux_users defaults to the crawl size. Flag names match the other
  // benches so CommonBenchContext and sweep scripts work unchanged.
  flags.Define("aux_users", "2320895",
               "users in the auxiliary network (paper: 2,320,895)");
  flags.Define("target_size", "1000",
               "users per published target graph (paper: 1000)");
  flags.Define("seed", "20140324", "rng seed (EDBT 2014 opening day)");
  flags.Define("no_prefilter", "false",
               "disable the neighborhood-stats prefilter (Layer 1)");
  flags.Define("no_shared_cache", "false",
               "disable the cross-call match cache (Layer 2)");
  flags.Define("dominance_kernel", "auto",
               "Layer-1 strength-dominance kernel: auto|scalar|sse2|avx2");
  flags.Define("density", "0.01", "planted target density");
  flags.Define("batches", "3", "growth batches to apply");
  // The defaults keep each batch's total record count under 1% of V, the
  // regime the 10x speedup floor applies to. Note the edge fractions are
  // relative to E (~10x V on the t.qq substrate), so they sit an order of
  // magnitude below the user fraction.
  flags.Define("new_user_fraction", "0.002",
               "new users per batch, fraction of current users");
  flags.Define("new_edge_fraction", "0.0003",
               "new links per batch, fraction of current links");
  flags.Define("attr_growth_prob", "0.001",
               "per user, probability a growable attribute grows");
  flags.Define("strength_growth_prob", "0.0003",
               "per growable-strength edge, probability the strength grows");
  flags.Define("guard_queries", "64",
               "differential-guard queries per batch (incremental answers "
               "must match a freshly rebuilt attack bit for bit)");
  flags.Define("json", "BENCH_delta_scaling.json",
               "machine-readable results path (empty to skip)");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const size_t num_users = static_cast<size_t>(flags.GetInt("aux_users"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  std::printf("Delta-scaling bench: %zu auxiliary users (paper: "
              "2,320,895)\n\n",
              num_users);
  std::vector<bench::BenchJsonEntry> entries;

  // --- 1. Base dataset + published target --------------------------------
  synth::TqqConfig config = bench::AuxConfigFromFlags(flags);
  WallTimer timer;
  auto dataset = synth::BuildPlantedDataset(
      config, bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  hin::Graph aux = std::move(dataset.value().auxiliary);
  const double generate_s = timer.Seconds();
  std::printf("generated: %zu vertices, %zu edges in %.1fs\n",
              aux.num_vertices(), aux.num_edges(), generate_s);
  entries.push_back({"generate", generate_s,
                     {{"vertices", static_cast<double>(aux.num_vertices())},
                      {"edges", static_cast<double>(aux.num_edges())}}});

  anon::KddAnonymizer anonymizer;
  auto published = anonymizer.Anonymize(dataset.value().target, &rng);
  if (!published.ok()) {
    std::fprintf(stderr, "anonymize: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& target = published.value().graph;

  // --- 2. Warm the incrementally-maintained attack -----------------------
  const core::DehinConfig attack_config = bench::AttackConfig(false, flags);
  timer.Reset();
  core::Dehin dehin(&aux, attack_config);
  const double initial_build_s = timer.Seconds();
  std::printf("initial warm-state build: %.3fs\n", initial_build_s);
  entries.push_back({"initial_build", initial_build_s, {}});

  const size_t guard_queries = std::min<size_t>(
      static_cast<size_t>(flags.GetInt("guard_queries")),
      target.num_vertices());
  // Populate the per-target caches so batch invalidation has real entries
  // to keep or discard (otherwise the epoch machinery is a no-op).
  for (size_t q = 0; q < guard_queries; ++q) {
    (void)dehin.Deanonymize(target, static_cast<hin::VertexId>(q));
  }

  // --- 3. Growth batches: incremental vs full rebuild --------------------
  synth::GrowthConfig growth;
  growth.new_user_fraction = flags.GetDouble("new_user_fraction");
  growth.new_edge_fraction = flags.GetDouble("new_edge_fraction");
  growth.attr_growth_prob = flags.GetDouble("attr_growth_prob");
  growth.strength_growth_prob = flags.GetDouble("strength_growth_prob");
  synth::TqqConfig profile_config = config;

  const size_t batches =
      static_cast<size_t>(std::max<int64_t>(flags.GetInt("batches"), 1));
  util::TablePrinter table(
      {"batch", "|delta|", "graph_s", "incr_s", "rebuild_s", "speedup"});
  double min_speedup = -1.0;
  for (size_t b = 0; b < batches; ++b) {
    auto delta = synth::SampleGrowthDelta(aux, growth, profile_config, &rng);
    if (!delta.ok()) {
      std::fprintf(stderr, "sample batch %zu: %s\n", b,
                   delta.status().ToString().c_str());
      return 1;
    }
    const size_t delta_size = delta.value().size();

    timer.Reset();
    if (auto s = hin::GraphBuilder::ApplyDelta(&aux, delta.value());
        !s.ok()) {
      std::fprintf(stderr, "apply batch %zu: %s\n", b, s.ToString().c_str());
      return 1;
    }
    const double graph_apply_s = timer.Seconds();

    timer.Reset();
    if (auto s = dehin.ApplyAuxDelta(delta.value()); !s.ok()) {
      std::fprintf(stderr, "warm-state batch %zu: %s\n", b,
                   s.ToString().c_str());
      return 1;
    }
    const double incremental_s = timer.Seconds();

    // The alternative this bench prices: throw the warm state away and pay
    // the constructor again (candidate index + prefilter arenas over the
    // full grown graph). The fresh instance then doubles as the oracle for
    // the differential guard.
    timer.Reset();
    core::Dehin fresh(&aux, attack_config);
    const double rebuild_s = timer.Seconds();
    const double speedup =
        incremental_s > 0 ? rebuild_s / incremental_s : 0.0;
    if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;

    size_t guarded = 0;
    for (size_t q = 0; q < guard_queries; ++q) {
      const auto vt = static_cast<hin::VertexId>(q);
      const auto incremental = dehin.Deanonymize(target, vt);
      const auto oracle = fresh.Deanonymize(target, vt);
      if (incremental != oracle) {
        std::fprintf(stderr,
                     "FAIL: differential guard: batch %zu target %u: "
                     "incremental answer diverges from fresh rebuild "
                     "(%zu vs %zu candidates)\n",
                     b, vt, incremental.size(), oracle.size());
        return 1;
      }
      ++guarded;
    }

    std::printf("batch %zu: |delta|=%zu  graph %.4fs  incremental %.4fs  "
                "rebuild %.3fs  => %.0fx  (%zu guarded queries identical)\n",
                b, delta_size, graph_apply_s, incremental_s, rebuild_s,
                speedup, guarded);
    table.AddRow({std::to_string(b), std::to_string(delta_size),
                  util::FormatDouble(graph_apply_s, 4),
                  util::FormatDouble(incremental_s, 4),
                  util::FormatDouble(rebuild_s, 3),
                  util::FormatDouble(speedup, 0) + "x"});
    entries.push_back(
        {"batch_" + std::to_string(b),
         incremental_s,
         {{"delta_records", static_cast<double>(delta_size)},
          {"new_vertices",
           static_cast<double>(delta.value().new_vertices.size())},
          {"edge_adds", static_cast<double>(delta.value().edge_adds.size())},
          {"attr_bumps",
           static_cast<double>(delta.value().attr_bumps.size())},
          {"graph_apply_s", graph_apply_s},
          {"rebuild_s", rebuild_s},
          {"speedup_vs_rebuild", speedup},
          {"guard_queries", static_cast<double>(guarded)}}});
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf("final: %zu vertices, %zu edges\n", aux.num_vertices(),
              aux.num_edges());

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty() &&
      !bench::WriteBenchJson(
          json_path, entries,
          bench::CommonBenchContext(
              flags,
              {{"batches", flags.GetString("batches")},
               {"new_user_fraction", flags.GetString("new_user_fraction")},
               {"new_edge_fraction", flags.GetString("new_edge_fraction")},
               {"guard_queries", flags.GetString("guard_queries")}}))) {
    return 1;
  }

  if (min_speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: incremental warm-state refresh speedup %.1fx is "
                 "below the 10x floor\n",
                 min_speedup);
    return 1;
  }
  return 0;
}
