#include "core/neighborhood_stats.h"

#include <algorithm>

#include "hin/graph_delta.h"

namespace hinpriv::core {

NeighborhoodStats::NeighborhoodStats(
    const hin::Graph& graph, const std::vector<hin::LinkTypeId>& link_types,
    bool use_in_edges)
    : link_types_(link_types), use_in_edges_(use_in_edges) {
  num_slots_ = link_types_.size() * (use_in_edges_ ? 2 : 1);
  BuildFull(graph);
}

void NeighborhoodStats::BuildFull(const hin::Graph& graph) {
  const size_t n = graph.num_vertices();
  base_vertices_ = n;
  offsets_stride_ = n + 1;
  offsets_.Reset(num_slots_ * offsets_stride_);

  // Pass 1: per-slot degrees -> one absolute offset table over the shared
  // strengths arena (slot boundaries are just where the previous slot's
  // running total left off).
  uint64_t total = 0;
  size_t slot = 0;
  auto lay_out_slot = [&](hin::LinkTypeId lt, bool incoming) {
    uint64_t* off = offsets_.data() + slot * offsets_stride_;
    for (hin::VertexId v = 0; v < n; ++v) {
      off[v] = total;
      total += incoming ? graph.InDegree(lt, v) : graph.OutDegree(lt, v);
    }
    off[n] = total;
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types_) {
    lay_out_slot(lt, /*incoming=*/false);
    if (use_in_edges_) lay_out_slot(lt, /*incoming=*/true);
  }

  // Pass 2: fill and sort each vertex's strength run in place.
  strengths_.Reset(total);
  slot = 0;
  auto fill_slot = [&](hin::LinkTypeId lt, bool incoming) {
    const uint64_t* off = SlotOffsets(slot);
    for (hin::VertexId v = 0; v < n; ++v) {
      const auto edges =
          incoming ? graph.InEdges(lt, v) : graph.OutEdges(lt, v);
      hin::Strength* out = strengths_.data() + off[v];
      for (size_t i = 0; i < edges.size(); ++i) out[i] = edges[i].strength;
      std::sort(out, out + edges.size());
    }
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types_) {
    fill_slot(lt, /*incoming=*/false);
    if (use_in_edges_) fill_slot(lt, /*incoming=*/true);
  }

  // A full build supersedes any patch state.
  patch_rows_ = 0;
  patch_stride_ = 0;
  patch_row_.clear();
  patch_offsets_.Reset(0);
  patch_strengths_.Reset(0);
}

void NeighborhoodStats::ApplyDelta(const hin::Graph& graph,
                                   const hin::GraphDelta& delta) {
  const size_t n = graph.num_vertices();

  // Touched set = the delta's 1-hop strength closure: new vertices plus
  // both endpoints of every added edge. Attribute bumps never change
  // neighborhood strengths, so they are not part of it. The patch set
  // accumulates: previously patched vertices stay patched (the base arenas
  // no longer describe them).
  std::vector<uint32_t> new_patch_row(n, kNoPatch);
  for (size_t v = 0; v < patch_row_.size(); ++v) {
    if (patch_row_[v] != kNoPatch) new_patch_row[v] = 0;  // marked, re-rowed
  }
  for (size_t v = delta.base_num_vertices; v < n; ++v) new_patch_row[v] = 0;
  for (const hin::GraphDelta::EdgeAdd& e : delta.edge_adds) {
    new_patch_row[e.src] = 0;
    new_patch_row[e.dst] = 0;
  }

  // One O(n) pass assigns rows in vertex-id order and collects the patched
  // list; everything below iterates that list, not the vertex range, so a
  // batch costs O(|patched| * degree), not O(V * slots).
  std::vector<hin::VertexId> patched;
  size_t rows = 0;
  for (size_t v = 0; v < n; ++v) {
    if (new_patch_row[v] != kNoPatch) {
      new_patch_row[v] = static_cast<uint32_t>(rows++);
      patched.push_back(static_cast<hin::VertexId>(v));
    }
  }

  // Compaction: once a quarter of the graph reads through the patch table,
  // fold everything back into one full build — amortized O(E) per O(V)
  // patched vertices, and the hot path goes back to mostly-base reads.
  if (rows > n / 4) {
    BuildFull(graph);
    return;
  }

  // Rebuild the patch table wholesale for the merged patched set (the
  // aligned arenas are Reset-then-fill only). Layout mirrors the base
  // arenas with vertices replaced by rows, preserving the zero-padded
  // alignment contract the dominance kernels rely on.
  const size_t stride = rows + 1;
  util::AlignedBuffer<uint64_t> offsets(num_slots_ * stride);

  uint64_t total = 0;
  size_t slot = 0;
  auto lay_out_slot = [&](hin::LinkTypeId lt, bool incoming) {
    uint64_t* off = offsets.data() + slot * stride;
    uint32_t row = 0;
    for (hin::VertexId v : patched) {
      off[row++] = total;
      total += incoming ? graph.InDegree(lt, v) : graph.OutDegree(lt, v);
    }
    off[rows] = total;
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types_) {
    lay_out_slot(lt, /*incoming=*/false);
    if (use_in_edges_) lay_out_slot(lt, /*incoming=*/true);
  }

  util::AlignedBuffer<hin::Strength> strengths(total);
  slot = 0;
  auto fill_slot = [&](hin::LinkTypeId lt, bool incoming) {
    const uint64_t* off = offsets.data() + slot * stride;
    uint32_t row = 0;
    for (hin::VertexId v : patched) {
      const auto edges =
          incoming ? graph.InEdges(lt, v) : graph.OutEdges(lt, v);
      hin::Strength* out = strengths.data() + off[row++];
      for (size_t i = 0; i < edges.size(); ++i) out[i] = edges[i].strength;
      std::sort(out, out + edges.size());
    }
    ++slot;
  };
  for (hin::LinkTypeId lt : link_types_) {
    fill_slot(lt, /*incoming=*/false);
    if (use_in_edges_) fill_slot(lt, /*incoming=*/true);
  }

  patch_rows_ = rows;
  patch_stride_ = stride;
  patch_row_ = std::move(new_patch_row);
  patch_offsets_ = std::move(offsets);
  patch_strengths_ = std::move(strengths);
}

bool NeighborhoodStats::StrengthMultisetDominates(
    std::span<const hin::Strength> target_sorted,
    std::span<const hin::Strength> aux_sorted, bool growth_aware) {
  const size_t k = target_sorted.size();
  const size_t m = aux_sorted.size();
  if (m < k) return false;
  if (growth_aware) {
    // The i-th smallest of the k largest auxiliary strengths dominates the
    // i-th smallest strength of ANY k-subset, so if even that assignment
    // fails somewhere, no injective aux >= target assignment exists.
    for (size_t i = 0; i < k; ++i) {
      if (aux_sorted[m - k + i] < target_sorted[i]) return false;
    }
    return true;
  }
  // Exact semantics: every target strength needs a distinct equal auxiliary
  // strength, i.e. multiset containment; merged scan over the sorted spans.
  size_t j = 0;
  for (size_t i = 0; i < k; ++i) {
    while (j < m && aux_sorted[j] < target_sorted[i]) ++j;
    if (j == m || aux_sorted[j] != target_sorted[i]) return false;
    ++j;
  }
  return true;
}

}  // namespace hinpriv::core
