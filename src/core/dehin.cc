#include "core/dehin.h"

#include <algorithm>
#include <unordered_map>

#include "hin/graph_builder.h"
#include "matching/hopcroft_karp.h"

namespace hinpriv::core {

namespace {

// Memo key for (target vertex, aux vertex, depth): target ids are sample-
// scale (< 2^28), aux ids fit 32 bits, depth fits 4 bits.
uint64_t MemoKey(hin::VertexId vt, hin::VertexId va, int depth) {
  return (static_cast<uint64_t>(vt) << 36) |
         (static_cast<uint64_t>(va) << 4) | static_cast<uint64_t>(depth);
}

}  // namespace

Dehin::Dehin(const hin::Graph* auxiliary, DehinConfig config)
    : aux_(auxiliary), config_(std::move(config)) {
  // The index implements exactly the MatchOptions profile predicate, so a
  // custom entity matcher forces the full scan.
  if (config_.use_candidate_index && !config_.entity_match_override) {
    index_ = std::make_unique<CandidateIndex>(*aux_, config_.match);
  }
}

bool Dehin::EntityMatch(const hin::Graph& target, hin::VertexId vt,
                        hin::VertexId va) const {
  if (config_.entity_match_override) {
    return config_.entity_match_override(target, vt, *aux_, va);
  }
  return EntityAttributesMatch(target, vt, *aux_, va, config_.match);
}

bool Dehin::StrengthMatch(hin::Strength target_strength,
                          hin::Strength aux_strength) const {
  if (config_.link_match_override) {
    return config_.link_match_override(target_strength, aux_strength);
  }
  return LinkStrengthMatch(target_strength, aux_strength,
                           config_.match.growth_aware);
}

std::vector<hin::VertexId> Dehin::Deanonymize(const hin::Graph& target,
                                              hin::VertexId vt,
                                              int max_distance) const {
  std::vector<hin::VertexId> candidates;
  std::unordered_map<uint64_t, bool> memo;
  auto consider = [&](hin::VertexId va) {
    if (max_distance > 0 && !LinkMatch(max_distance, target, vt, va, &memo)) {
      return;
    }
    candidates.push_back(va);
  };
  if (index_ != nullptr) {
    index_->ForEachCandidate(target, vt, consider);
  } else {
    for (hin::VertexId va = 0; va < aux_->num_vertices(); ++va) {
      if (EntityMatch(target, vt, va)) consider(va);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

bool Dehin::LinkMatch(int depth, const hin::Graph& target, hin::VertexId vt,
                      hin::VertexId va,
                      std::unordered_map<uint64_t, bool>* memo) const {
  const uint64_t key = MemoKey(vt, va, depth);
  if (auto it = memo->find(key); it != memo->end()) return it->second;

  // The saturation threshold in absolute neighbor count (see DehinConfig).
  const size_t saturation_limit = static_cast<size_t>(
      config_.saturation_fraction *
      static_cast<double>(target.num_vertices() > 0 ? target.num_vertices() - 1
                                                    : 0));

  bool is_match = true;
  for (hin::LinkTypeId lt : config_.match.link_types) {
    const int directions = config_.match.use_in_edges ? 2 : 1;
    for (int dir = 0; dir < directions && is_match; ++dir) {
      const bool incoming = dir == 1;
      const auto t_neighbors =
          incoming ? target.InEdges(lt, vt) : target.OutEdges(lt, vt);
      if (t_neighbors.empty()) continue;
      // A near-complete neighborhood is fake-link saturation (VW-CGA);
      // it carries no signal, so the adversary ignores this link type.
      if (t_neighbors.size() > saturation_limit) continue;
      const auto a_neighbors =
          incoming ? aux_->InEdges(lt, va) : aux_->OutEdges(lt, va);
      if (a_neighbors.size() < t_neighbors.size()) {
        is_match = false;  // growth only adds links; pigeonhole reject
        break;
      }
      // Bipartite candidate sets C(b') for each target neighbor
      // (Algorithm 2), then the Hopcroft-Karp acceptance test.
      matching::BipartiteGraph bipartite(t_neighbors.size(),
                                         a_neighbors.size());
      for (uint32_t i = 0; i < t_neighbors.size(); ++i) {
        const hin::Edge& tb = t_neighbors[i];
        bool any = false;
        for (uint32_t j = 0; j < a_neighbors.size(); ++j) {
          const hin::Edge& ab = a_neighbors[j];
          if (!StrengthMatch(tb.strength, ab.strength)) continue;
          if (!EntityMatch(target, tb.neighbor, ab.neighbor)) continue;
          if (depth > 1 &&
              !LinkMatch(depth - 1, target, tb.neighbor, ab.neighbor, memo)) {
            continue;
          }
          bipartite.AddEdge(i, j);
          any = true;
        }
        if (!any) {
          is_match = false;  // empty candidate set C(b'): no matching exists
          break;
        }
      }
      if (is_match && !matching::HasPerfectLeftMatching(bipartite)) {
        is_match = false;
      }
    }
    if (!is_match) break;
  }
  memo->emplace(key, is_match);
  return is_match;
}

util::Result<hin::Graph> StripMajorityStrengthLinks(const hin::Graph& graph) {
  hin::GraphBuilder builder(graph.schema());
  HINPRIV_RETURN_IF_ERROR(hin::CopyVerticesWithAttributes(graph, &builder));
  for (hin::LinkTypeId lt = 0; lt < graph.num_link_types(); ++lt) {
    // Majority (most frequent) strength for this link type; ties break
    // toward the smaller strength for determinism.
    std::unordered_map<hin::Strength, size_t> counts;
    for (hin::VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const hin::Edge& e : graph.OutEdges(lt, v)) ++counts[e.strength];
    }
    if (counts.empty()) continue;
    hin::Strength majority = 0;
    size_t majority_count = 0;
    for (const auto& [strength, count] : counts) {
      if (count > majority_count ||
          (count == majority_count && strength < majority)) {
        majority = strength;
        majority_count = count;
      }
    }
    for (hin::VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const hin::Edge& e : graph.OutEdges(lt, v)) {
        if (e.strength == majority) continue;
        HINPRIV_RETURN_IF_ERROR(builder.AddEdge(v, e.neighbor, lt, e.strength));
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace hinpriv::core
