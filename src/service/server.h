#ifndef HINPRIV_SERVICE_SERVER_H_
#define HINPRIV_SERVICE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dehin.h"
#include "exec/executor.h"
#include "hin/graph.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/slow_query_log.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace hinpriv::service {

// Configuration of the resident attack service.
struct ServerConfig {
  // IPv4 listen address; the default binds loopback only — the service
  // hands out de-anonymization results, keep it off public interfaces.
  std::string host = "127.0.0.1";
  // 0 = kernel-assigned ephemeral port (read back via Server::port()).
  uint16_t port = 0;
  // Size of the execution pool the server creates when `executor` is
  // null (0 = hardware concurrency). Requests run as high-priority tasks
  // on that pool, so this bounds request concurrency; Dehin::Deanonymize
  // is thread-safe over the shared per-target state and match cache.
  size_t num_workers = 4;
  // Shared work-stealing executor to run on instead of an owned pool;
  // borrowed, must outlive the server. Request drain tasks are submitted
  // at Priority::kHigh and intra-query scan grains at kNormal, so
  // admitted requests never starve behind another query's scan work.
  exec::Executor* executor = nullptr;
  // When the executor has more than one worker, serve attack_one with the
  // intra-query parallel candidate scan (Dehin::DeanonymizeParallel);
  // results are bit-identical to the serial path.
  bool parallel_scan = true;
  // Bound of the request queue = admission control. A full queue sheds
  // with BUSY instead of queueing into certain deadline misses.
  size_t queue_capacity = 128;
  // Micro-batching: one worker pops up to this many same-method requests
  // at once so consecutive attack_one calls reuse the hot per-target state
  // and cache lines. 1 disables batching.
  size_t max_batch = 8;
  // Default max neighbor distance n for requests that omit it.
  int default_max_distance = 1;
  // Default per-request deadline for requests that omit it; 0 = none.
  double default_deadline_ms = 0.0;
  // Upper bound on the sleep debug method (load testing aid).
  double max_sleep_ms = 10'000.0;
  // When nonempty, Shutdown() writes a final hinpriv-metrics-v1 snapshot
  // of the global registry here after the drain completes.
  std::string metrics_json_path;
  // Attack configuration (match options, prefilter/cache/kernels).
  core::DehinConfig dehin;

  // --- live introspection ---------------------------------------------------
  // Watchdog tick: every tick the global registry is sampled into the
  // windowed ring and the health state is re-evaluated. <= 0 disables the
  // watchdog thread entirely (stats still answers, with empty windows and
  // health pinned at "ok").
  int introspection_tick_ms = 250;
  // Snapshots retained in the windowed ring; tick * ring bounds the widest
  // answerable window (the defaults cover a 60s window with headroom).
  size_t introspection_ring = 256;
  // Worst-N slow-query log returned by the `stats` verb.
  size_t slow_log_capacity = 16;
  // Health policy (see DESIGN.md §11): "shedding" when any request was
  // shed within shed_window_sec or the queue is full; otherwise "degraded"
  // when the queue sits at or above degraded_queue_fraction of capacity or
  // the deadline-miss fraction over miss_window_sec exceeds
  // degraded_miss_rate; otherwise "ok".
  double shed_window_sec = 1.0;
  double miss_window_sec = 10.0;
  double degraded_queue_fraction = 0.75;
  double degraded_miss_rate = 0.10;
};

// Watchdog-derived serving condition, exported as the service/health_state
// gauge (the numeric value) and by the `health` admin verb (the name).
enum class HealthState {
  kOk = 0,
  kDegraded = 1,
  kShedding = 2,
};

const char* HealthStateName(HealthState state);

// The resident de-anonymization attack service. Loads nothing itself: the
// caller provides the anonymized target graph and the adversary's
// auxiliary graph (both must outlive the server), and the server builds
// the expensive `Dehin` state — candidate index, neighborhood prefilter
// tables, shared match cache — once at Start(), then answers queries as
// high-priority tasks on a work-stealing executor fed by a bounded
// queue. The same executor runs the intra-query parallel candidate scan
// (at normal priority), so a lone expensive query can saturate the pool
// without starving newly admitted requests.
//
// Production semantics (see DESIGN.md §7):
//   * admission control — a full queue sheds with BUSY immediately;
//   * per-request deadlines — enforced both while queued and inside the
//     Dehin recursion via util::CancelToken (DEADLINE_EXCEEDED);
//   * micro-batching — same-method runs pop together for cache locality;
//   * graceful drain — Shutdown() stops accepting, finishes every
//     admitted request, joins all threads, and flushes a final metrics
//     snapshot.
//
// Telemetry: service/* counters (received, ok, shed, deadline_exceeded,
// invalid, connections, batches, write_errors), the service/queue_depth
// gauge, service/request_latency_us and service/batch_size histograms,
// and HINPRIV_SPAN coverage of the accept/read/worker loops, so a serving
// run produces the same Chrome-trace flame timelines as the batch path.
class Server {
 public:
  Server(const hin::Graph* target, const hin::Graph* auxiliary,
         ServerConfig config);
  ~Server();  // implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the acceptor and worker threads, and warms the
  // per-target Dehin state so the first request does not pay the build.
  util::Status Start();

  // The actually-bound port (differs from config.port when that was 0).
  uint16_t port() const { return port_; }

  // Instantaneous queue depth (observability).
  size_t queue_depth() const { return queue_.size(); }

  // Current watchdog health verdict (kOk until the first watchdog tick).
  HealthState health() const;

  // One-line self-report over roughly the last `window_sec` seconds, read
  // from the windowed aggregator: the `serve --heartbeat_sec` loop and the
  // introspection tests consume this without a network round-trip.
  struct LiveStats {
    double window_sec = 0.0;  // actually covered seconds
    double qps = 0.0;
    double p99_us = 0.0;
    size_t queue_depth = 0;
    uint64_t requests_received = 0;  // cumulative, as of the last sample
    HealthState health = HealthState::kOk;
  };
  LiveStats Live(double window_sec = 10.0) const;

  // Graceful drain: stop accepting connections and admitting requests,
  // finish everything already admitted, join every thread, flush the
  // final metrics snapshot. Idempotent and thread-safe; blocks until the
  // drain completes.
  void Shutdown();

  // True once Shutdown() has completed.
  bool finished() const;

 private:
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}
    ~Connection();
    const int fd;
    std::mutex write_mu;
  };

  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    Request request;
    std::chrono::steady_clock::time_point admitted;
    // Monotonically increasing server-side request id, assigned at
    // admission and installed as the span context while the request runs.
    uint64_t rid = 0;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  // One executor task per admitted request: drains up to max_batch
  // compatible head items non-blockingly (another task may already have
  // batched this task's item away, in which case it pops nothing).
  void DrainOne();

  Response Process(const PendingRequest& pending);
  Response ProcessAttackOne(const Request& request,
                            const util::CancelToken& token);
  Response ProcessRisk(const Request& request);
  Response ProcessStats(const Request& request);
  Response ProcessSleep(const Request& request,
                        const util::CancelToken& token);
  // Admin verbs, dispatched inline on the reader thread (never queued) so
  // they answer while the serving path is saturated.
  Response ProcessAdmin(const Request& request);
  Response ProcessHealth(const Request& request);
  Response ProcessMetrics(const Request& request);
  Response ProcessTraceStart(const Request& request);
  Response ProcessTraceStop(const Request& request);
  Response ProcessTraceDump(const Request& request);

  void WatchdogLoop();
  void EvaluateHealth();

  void Respond(const std::shared_ptr<Connection>& conn,
               const Response& response);

  // Per-distance risk results over the target graph, computed lazily and
  // cached (signature pass + per-tuple risk); per-entity queries then cost
  // one array read.
  struct RiskEntry {
    std::vector<double> per_tuple;
    double network_risk = 0.0;
    size_t cardinality = 0;
  };
  util::Result<const RiskEntry*> RiskForDistance(int max_distance);

  int ResolveMaxDistance(const Request& request) const;

  const hin::Graph* target_;
  const hin::Graph* aux_;
  ServerConfig config_;
  core::Dehin dehin_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers

  BoundedQueue<PendingRequest> queue_;
  std::thread acceptor_;

  // Execution pool: config_.executor when the caller shares one, else an
  // owned pool sized from config_.num_workers. Outstanding drain tasks
  // are counted so Shutdown can wait for the queue to empty: every push
  // submits exactly one task and a task pops at least one item whenever
  // the queue is nonempty, so tasks-outstanding >= items-queued always
  // holds and drain_tasks_ == 0 implies the queue is drained.
  exec::Executor* executor_ = nullptr;
  std::unique_ptr<exec::Executor> owned_executor_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t drain_tasks_ = 0;

  std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Connection>> conns_;  // by fd
  std::vector<std::thread> readers_;                  // joined at Shutdown

  std::mutex risk_mu_;
  std::map<int, RiskEntry> risk_cache_;

  // Introspection plane: a windowed view over the global registry, fed by
  // the watchdog thread (which also re-evaluates the health verdict each
  // tick), plus the worst-N slow-query log and the request-id source.
  obs::WindowedAggregator window_;
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<int> health_{static_cast<int>(HealthState::kOk)};
  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<uint64_t> next_rid_{0};
  SlowQueryLog slow_log_;

  // Distances 0..kMaxDistanceBucket get their own per-distance counters;
  // anything larger lands in the final overflow slot.
  static constexpr int kMaxDistanceBucket = 8;
  static constexpr size_t kDistanceSlots = kMaxDistanceBucket + 2;

  // Registry instruments, resolved once at construction.
  obs::Counter* requests_received_;
  obs::Counter* responses_ok_;
  obs::Counter* shed_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* cancelled_;
  obs::Counter* invalid_;
  obs::Counter* internal_errors_;
  obs::Counter* connections_accepted_;
  obs::Counter* batches_;
  obs::Counter* write_errors_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* latency_us_;
  obs::Histogram* batch_size_;
  obs::Counter* admin_requests_;
  obs::Gauge* health_gauge_;
  obs::Counter* health_transitions_;
  obs::Counter* attack_by_distance_[kDistanceSlots];
  obs::Counter* deanon_by_distance_[kDistanceSlots];
};

}  // namespace hinpriv::service

#endif  // HINPRIV_SERVICE_SERVER_H_
