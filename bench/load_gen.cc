// Closed-/open-loop load generator for the sharded scatter-gather attack
// tier (BENCH_shard_scaling.json).
//
// Default (self-hosted) mode generates the synthetic t.qq substrate,
// computes the unsharded reference answer for every target up front, then
// for each shard count in --shards starts an in-process shard::ShardTier
// and drives it over real loopback TCP for --duration_sec. Every OK
// response is differentially verified against the reference — a merged
// candidate list that is not bit-identical to the unsharded scan aborts
// the run — so the committed QPS/latency numbers can only come from
// correct merges.
//
//   closed loop (--rate 0): each of --connections clients keeps exactly
//     one request in flight; throughput is whatever the tier sustains.
//   open loop (--rate Q): clients send on a fixed schedule totalling Q
//     requests/sec, and latency is measured from the *scheduled* send
//     time, so queueing delay from a saturated tier is charged to the
//     response (no coordinated omission).
//
// With --port set the generator instead drives an already-running server
// (e.g. `hinpriv_cli serve --shards 2`), cycling targets [0, target_ids);
// pass --verify_target/--verify_aux with the served graph files to keep
// the differential guard in that mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anon/kdd_anonymizer.h"
#include "bench/bench_common.h"
#include "core/dehin.h"
#include "eval/experiment.h"
#include "hin/io.h"
#include "service/client.h"
#include "service/json.h"
#include "shard/tier.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace hinpriv;

// The unsharded reference answer, pre-encoded the way the wire protocol
// encodes it (first 1024 candidates + exact total), so a worker can
// compare a response with two integer checks and one vector compare.
struct ExpectedAnswer {
  std::vector<int64_t> encoded;
  size_t total = 0;
};

constexpr size_t kMaxEncodedCandidates = 1024;

std::vector<ExpectedAnswer> BuildReference(const hin::Graph& target,
                                           const hin::Graph& aux,
                                           const core::DehinConfig& config,
                                           int max_distance) {
  core::Dehin dehin(&aux, config);
  std::vector<ExpectedAnswer> expected(target.num_vertices());
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    const std::vector<hin::VertexId> candidates =
        dehin.Deanonymize(target, vt, max_distance);
    ExpectedAnswer& e = expected[vt];
    e.total = candidates.size();
    const size_t encoded = std::min(candidates.size(), kMaxEncodedCandidates);
    e.encoded.reserve(encoded);
    for (size_t i = 0; i < encoded; ++i) {
      e.encoded.push_back(static_cast<int64_t>(candidates[i]));
    }
  }
  return expected;
}

struct WorkerTallies {
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t deadline = 0;
  uint64_t errors = 0;
  uint64_t mismatches = 0;
};

struct DriveOptions {
  std::string host;
  uint16_t port = 0;
  size_t num_targets = 0;
  int max_distance = 1;
  double duration_sec = 3.0;
  // Requests/sec this one connection schedules; 0 = closed loop.
  double rate_per_conn = 0.0;
  std::chrono::steady_clock::time_point start;
};

// One connection's send/verify loop. `expected` may be null (no guard).
void DriveConnection(const DriveOptions& options, size_t worker,
                     const std::vector<ExpectedAnswer>* expected,
                     bench::WindowedLatencyProbe* probe,
                     WorkerTallies* tallies) {
  auto client = service::Client::Connect(options.host, options.port);
  if (!client.ok()) {
    ++tallies->errors;
    return;
  }
  const auto deadline =
      options.start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(options.duration_sec));
  const bool open_loop = options.rate_per_conn > 0.0;
  const auto interval =
      open_loop ? std::chrono::duration_cast<std::chrono::steady_clock::
                                                 duration>(
                      std::chrono::duration<double>(1.0 /
                                                    options.rate_per_conn))
                : std::chrono::steady_clock::duration::zero();
  // Stagger open-loop schedules so connections do not send in phase.
  auto next_send =
      options.start + (open_loop ? interval * static_cast<int>(worker) /
                                       static_cast<int>(worker + 1)
                                 : std::chrono::steady_clock::duration::zero());
  size_t cursor = worker;  // per-worker stride through the target ids
  while (true) {
    if (open_loop) {
      std::this_thread::sleep_until(next_send);
      if (next_send >= deadline) break;
    } else if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const auto target =
        static_cast<hin::VertexId>(cursor % options.num_targets);
    cursor += 17;  // coprime stride: every worker still covers all ids
    const auto sent = open_loop ? next_send : std::chrono::steady_clock::now();
    auto response = client.value().AttackOne(target, options.max_distance);
    const auto received = std::chrono::steady_clock::now();
    if (open_loop) next_send += interval;
    if (!response.ok()) {
      ++tallies->errors;
      // The server may have dropped the connection (e.g. drain); retry on
      // a fresh one rather than silently producing a short run.
      client = service::Client::Connect(options.host, options.port);
      if (!client.ok()) return;
      continue;
    }
    switch (response.value().code) {
      case service::ResponseCode::kOk:
        break;
      case service::ResponseCode::kBusy:
        ++tallies->busy;
        continue;
      case service::ResponseCode::kDeadlineExceeded:
        ++tallies->deadline;
        continue;
      default:
        ++tallies->errors;
        continue;
    }
    probe->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(received - sent)
            .count()));
    ++tallies->ok;
    if (expected == nullptr) continue;
    const ExpectedAnswer& want = (*expected)[target];
    const service::JsonValue& result = response.value().result;
    const service::JsonValue* candidates = result.Find("candidates");
    bool match = candidates != nullptr &&
                 result.GetInt("num_candidates", -1) ==
                     static_cast<int64_t>(want.total) &&
                 candidates->items().size() == want.encoded.size();
    if (match) {
      const auto& items = candidates->items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].AsInt() != want.encoded[i]) {
          match = false;
          break;
        }
      }
    }
    if (!match) ++tallies->mismatches;
  }
}

struct RunResult {
  WorkerTallies tallies;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

RunResult RunLoad(const std::string& host, uint16_t port, size_t num_targets,
                  int max_distance, size_t connections, double duration_sec,
                  double rate, const std::vector<ExpectedAnswer>* expected,
                  const char* probe_name) {
  bench::WindowedLatencyProbe probe(probe_name);
  std::vector<WorkerTallies> tallies(connections);
  DriveOptions options;
  options.host = host;
  options.port = port;
  options.num_targets = num_targets;
  options.max_distance = max_distance;
  options.duration_sec = duration_sec;
  options.rate_per_conn =
      rate > 0.0 ? rate / static_cast<double>(connections) : 0.0;
  options.start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (size_t w = 0; w < connections; ++w) {
    workers.emplace_back(DriveConnection, options, w, expected, &probe,
                         &tallies[w]);
  }
  for (auto& t : workers) t.join();
  RunResult result;
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - options.start)
                         .count();
  for (const WorkerTallies& t : tallies) {
    result.tallies.ok += t.ok;
    result.tallies.busy += t.busy;
    result.tallies.deadline += t.deadline;
    result.tallies.errors += t.errors;
    result.tallies.mismatches += t.mismatches;
  }
  result.qps = static_cast<double>(result.tallies.ok) / result.elapsed_s;
  const obs::HistogramSnapshot snapshot = probe.Snapshot();
  result.p50_us = snapshot.Percentile(50);
  result.p95_us = snapshot.Percentile(95);
  result.p99_us = snapshot.Percentile(99);
  return result;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("%-14s qps=%8.1f p50=%7.0fus p95=%7.0fus p99=%7.0fus "
              "ok=%llu busy=%llu deadline=%llu err=%llu mismatch=%llu\n",
              label, r.qps, r.p50_us, r.p95_us, r.p99_us,
              static_cast<unsigned long long>(r.tallies.ok),
              static_cast<unsigned long long>(r.tallies.busy),
              static_cast<unsigned long long>(r.tallies.deadline),
              static_cast<unsigned long long>(r.tallies.errors),
              static_cast<unsigned long long>(r.tallies.mismatches));
}

bench::BenchJsonEntry JsonEntry(const std::string& name, const RunResult& r,
                                double shards_value) {
  bench::BenchJsonEntry entry;
  entry.name = name;
  entry.real_time_s = r.elapsed_s;
  entry.counters = {{"shards", shards_value},
                    {"qps", r.qps},
                    {"p50_us", r.p50_us},
                    {"p95_us", r.p95_us},
                    {"p99_us", r.p99_us},
                    {"requests_ok", static_cast<double>(r.tallies.ok)},
                    {"requests_busy", static_cast<double>(r.tallies.busy)},
                    {"requests_deadline",
                     static_cast<double>(r.tallies.deadline)},
                    {"requests_error", static_cast<double>(r.tallies.errors)},
                    {"mismatches", static_cast<double>(r.tallies.mismatches)}};
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("density", "0.01", "target density");
  flags.Define("max_distance", "1",
               "attack depth n; also the tier's slice halo depth");
  flags.Define("shards", "1,2,4", "comma-separated shard counts to sweep");
  flags.Define("connections", "4", "concurrent client connections");
  flags.Define("duration_sec", "3", "seconds of load per configuration");
  flags.Define("rate", "0",
               "open-loop total requests/sec across all connections "
               "(0 = closed loop)");
  flags.Define("shard_workers", "2", "worker pool size of each shard server");
  flags.Define("coordinator_workers", "4", "coordinator worker pool size");
  flags.Define("queue_capacity", "256", "coordinator admission queue bound");
  flags.Define("json", "", "also write machine-readable results to this path");
  flags.Define("host", "127.0.0.1", "external mode: server address");
  flags.Define("port", "0",
               "external mode: drive an already-running server on this "
               "port instead of self-hosting a tier");
  flags.Define("target_ids", "0",
               "external mode: cycle target ids [0, N) (0 = --target_size)");
  flags.Define("verify_target", "",
               "external mode: published graph file for the differential "
               "guard (with --verify_aux)");
  flags.Define("verify_aux", "",
               "external mode: auxiliary graph file for the differential "
               "guard");
  bench::ParseFlagsOrDie(&flags, argc, argv);

  const int n = static_cast<int>(flags.GetInt("max_distance"));
  const auto connections = static_cast<size_t>(flags.GetInt("connections"));
  const double duration_sec = flags.GetDouble("duration_sec");
  const double rate = flags.GetDouble("rate");
  const char* mode = rate > 0.0 ? "open_loop" : "closed_loop";

  // --- external mode: drive a server someone else started. ---------------
  if (flags.GetInt("port") != 0) {
    size_t num_targets = static_cast<size_t>(flags.GetInt("target_ids"));
    if (num_targets == 0) {
      num_targets = static_cast<size_t>(flags.GetInt("target_size"));
    }
    std::vector<ExpectedAnswer> expected;
    bool verify = false;
    if (!flags.GetString("verify_target").empty()) {
      auto target = hin::LoadGraphAuto(flags.GetString("verify_target"));
      auto aux = hin::LoadGraphAuto(flags.GetString("verify_aux"));
      if (!target.ok() || !aux.ok()) {
        std::fprintf(stderr, "verify graphs failed to load: %s\n",
                     (!target.ok() ? target.status() : aux.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      num_targets = std::min(num_targets, target.value().num_vertices());
      expected = BuildReference(target.value(), aux.value(),
                                bench::AttackConfig(false, flags), n);
      verify = true;
    }
    const RunResult r = RunLoad(
        flags.GetString("host"), static_cast<uint16_t>(flags.GetInt("port")),
        num_targets, n, connections, duration_sec, rate,
        verify ? &expected : nullptr, "bench/load_gen/external");
    PrintRun("external", r);
    if (verify && r.tallies.mismatches > 0) {
      std::fprintf(stderr, "DIFFERENTIAL FAILURE: %llu responses diverged "
                   "from the unsharded reference\n",
                   static_cast<unsigned long long>(r.tallies.mismatches));
      return 1;
    }
    if (r.tallies.ok == 0) {
      std::fprintf(stderr, "no successful responses\n");
      return 1;
    }
    const std::string json_path = flags.GetString("json");
    if (!json_path.empty()) {
      std::vector<bench::BenchJsonEntry> entries;
      entries.push_back(JsonEntry(std::string("external/") + mode, r, 0.0));
      auto context = bench::CommonBenchContext(
          flags, {{"mode", mode},
                  {"max_distance", flags.GetString("max_distance")},
                  {"connections", flags.GetString("connections")},
                  {"verified", verify ? "true" : "false"}});
      if (!bench::WriteBenchJson(json_path, entries, context)) return 1;
    }
    return 0;
  }

  // --- self-hosted sweep: dataset, reference, then one tier per count. ----
  std::vector<size_t> shard_counts;
  const std::string shards_flag = flags.GetString("shards");
  for (const auto& field : util::Split(shards_flag, ',')) {
    auto parsed = util::ParseUint64(util::Trim(field));
    if (!parsed.ok() || parsed.value() == 0) {
      std::fprintf(stderr, "bad --shards entry: %s\n",
                   std::string(field).c_str());
      return 2;
    }
    shard_counts.push_back(parsed.value());
  }

  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      bench::AuxConfigFromFlags(flags),
      bench::TargetSpecFromFlags(flags, flags.GetDouble("density")),
      synth::GrowthConfig{}, anonymizer, /*strip_majority=*/false, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& target = dataset.value().target;
  const hin::Graph& aux = dataset.value().auxiliary;
  const core::DehinConfig attack = bench::AttackConfig(false, flags);

  std::printf("building unsharded reference answers for %zu targets "
              "(distance %d, aux %zu vertices)...\n",
              target.num_vertices(), n, aux.num_vertices());
  const std::vector<ExpectedAnswer> expected =
      BuildReference(target, aux, attack, n);

  std::printf("%s load, %zu connections, %.1fs per shard count%s\n\n", mode,
              connections, duration_sec,
              rate > 0.0
                  ? (" @ " + util::FormatDouble(rate, 0) + " req/s").c_str()
                  : "");
  std::vector<bench::BenchJsonEntry> entries;
  for (size_t num_shards : shard_counts) {
    shard::ShardTierConfig tier_config;
    tier_config.num_shards = num_shards;
    tier_config.halo_depth = n;
    tier_config.shard_server.num_workers =
        static_cast<size_t>(flags.GetInt("shard_workers"));
    tier_config.shard_server.default_max_distance = n;
    tier_config.shard_server.dehin = attack;
    tier_config.shard_server.dehin.max_distance = n;
    tier_config.coordinator.num_workers =
        static_cast<size_t>(flags.GetInt("coordinator_workers"));
    tier_config.coordinator.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue_capacity"));
    tier_config.coordinator.default_max_distance = n;
    tier_config.coordinator.port = 0;
    shard::ShardTier tier(&target, &aux, tier_config);
    const util::Status started = tier.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "tier start failed at %zu shards: %s\n",
                   num_shards, started.ToString().c_str());
      return 1;
    }
    const std::string probe_name =
        "bench/load_gen/shards_" + std::to_string(num_shards);
    const RunResult r =
        RunLoad("127.0.0.1", tier.port(), target.num_vertices(), n,
                connections, duration_sec, rate, &expected,
                probe_name.c_str());
    tier.Shutdown();
    const std::string label = "shards=" + std::to_string(num_shards);
    PrintRun(label.c_str(), r);
    if (r.tallies.mismatches > 0) {
      std::fprintf(stderr, "DIFFERENTIAL FAILURE: %llu merged answers "
                   "diverged from the unsharded scan at %zu shards\n",
                   static_cast<unsigned long long>(r.tallies.mismatches),
                   num_shards);
      return 1;
    }
    if (r.tallies.ok == 0) {
      std::fprintf(stderr, "no successful responses at %zu shards\n",
                   num_shards);
      return 1;
    }
    entries.push_back(JsonEntry(label + "/" + mode, r,
                                static_cast<double>(num_shards)));
  }
  std::printf("\nall shard counts passed the differential guard "
              "(bit-identical to the unsharded scan)\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    auto context = bench::CommonBenchContext(
        flags,
        {{"mode", mode},
         {"max_distance", flags.GetString("max_distance")},
         {"shards_swept", flags.GetString("shards")},
         {"connections", flags.GetString("connections")},
         {"shard_workers", flags.GetString("shard_workers")},
         {"hardware_concurrency",
          std::to_string(std::thread::hardware_concurrency())},
         {"verified", "true"}});
    if (!bench::WriteBenchJson(json_path, entries, context)) return 1;
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
