file(REMOVE_RECURSE
  "CMakeFiles/planted_target_test.dir/synth/planted_target_test.cc.o"
  "CMakeFiles/planted_target_test.dir/synth/planted_target_test.cc.o.d"
  "planted_target_test"
  "planted_target_test.pdb"
  "planted_target_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planted_target_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
