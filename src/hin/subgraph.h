#ifndef HINPRIV_HIN_SUBGRAPH_H_
#define HINPRIV_HIN_SUBGRAPH_H_

#include <vector>

#include "hin/graph.h"
#include "hin/types.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::hin {

// An induced subgraph plus the mapping back to the parent graph.
struct SubgraphResult {
  Graph graph;
  // to_parent[sub-vertex-id] = vertex id in the parent graph.
  std::vector<VertexId> to_parent;
};

// Extracts the vertex-induced subgraph on `vertices` (all edges among them
// are preserved, matching the paper's target-graph sampling procedure).
// Vertex ids in the subgraph follow the order of `vertices`; duplicates or
// out-of-range ids are an error.
util::Result<SubgraphResult> InducedSubgraph(
    const Graph& parent, const std::vector<VertexId>& vertices);

// Uniformly samples `count` distinct vertices (paper Section 6.1: "vertices
// are randomly sampled and all the edges among them are preserved") and
// extracts the induced subgraph. When `entity_type` is valid, sampling is
// restricted to vertices of that type.
util::Result<SubgraphResult> SampleInducedSubgraph(
    const Graph& parent, size_t count, util::Rng* rng,
    EntityTypeId entity_type = kInvalidEntityType);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_SUBGRAPH_H_
