#ifndef HINPRIV_HIN_KDD_LOADER_H_
#define HINPRIV_HIN_KDD_LOADER_H_

#include <string>

#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::hin {

// Loader/writer for the file formats of the released KDD Cup 2012 Track 1
// t.qq dataset the paper evaluates on. The dataset itself is not
// redistributable, but anyone holding a copy (or data in the same shape)
// can load it straight into a target-schema Graph and run every attack and
// metric in this library on the real thing.
//
// Formats (tab-separated, one record per line):
//   user_profile.txt  userid \t yob \t gender \t #tweets \t tags
//                     (tags: ';'-separated tag ids, or "0" for none;
//                      tag_count is derived from the list length)
//   user_sns.txt      follower_userid \t followee_userid
//   user_action.txt   userid \t dest_userid \t #at \t #retweet \t #comment
//                     (the short-circuited mention/retweet/comment
//                      strengths of Section 3)
struct KddCupFiles {
  std::string user_profile;
  std::string user_sns;
  std::string user_action;
};

struct KddLoadOptions {
  // Interaction rows referencing users absent from user_profile.txt are
  // skipped (and counted) rather than failing the load; the released logs
  // do contain such rows.
  bool skip_unknown_users = true;
};

struct KddLoadReport {
  Graph graph;
  size_t num_users = 0;
  size_t skipped_edges = 0;
};

// Loads the three files into a graph over hin::TqqTargetSchema(). User ids
// are remapped to dense vertex ids in file order of user_profile.txt.
util::Result<KddLoadReport> LoadKddCupDataset(
    const KddCupFiles& files, const KddLoadOptions& options = {});

// Writes a target-schema graph in the same three-file format (vertex id ==
// published user id). Useful for exporting synthetic datasets to tools
// built for the original release, and for round-trip testing.
util::Status WriteKddCupDataset(const Graph& graph, const KddCupFiles& files);

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_KDD_LOADER_H_
