#include "core/dehin.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "hin/graph_builder.h"
#include "obs/metrics.h"
#include "hin/tqq_schema.h"
#include "synth/growth.h"
#include "synth/planted_target.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

using hin::VertexId;

// Hand-built auxiliary graph realizing the paper's Figure 6 scenario plus
// profile-distinguishable users. Users 0..3 are "v1..v4" (aux neighbors),
// user 4 is "v9" (the candidate), user 5 is a decoy with v9's profile but
// a poorer neighborhood.
struct Figure6 {
  hin::Graph aux;
  hin::Graph target;
};

Figure6 BuildFigure6() {
  // Neighbor profiles: v1 and v2 share a profile (tag 3); v3 and v4 share
  // another (tag 5).
  hin::GraphBuilder aux_builder(hin::TqqTargetSchema());
  aux_builder.AddVertices(0, 6);
  EXPECT_TRUE(aux_builder.SetAttribute(0, hin::kTagCountAttr, 3).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(1, hin::kTagCountAttr, 3).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(2, hin::kTagCountAttr, 5).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(3, hin::kTagCountAttr, 5).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(4, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(5, hin::kYobAttr, 1980).ok());
  // v9 follows v1, v2, v3, v4.
  for (VertexId n = 0; n < 4; ++n) {
    EXPECT_TRUE(aux_builder.AddEdge(4, n, hin::kFollowLink).ok());
  }
  // The decoy follows only v1 and v2.
  EXPECT_TRUE(aux_builder.AddEdge(5, 0, hin::kFollowLink).ok());
  EXPECT_TRUE(aux_builder.AddEdge(5, 1, hin::kFollowLink).ok());
  auto aux = std::move(aux_builder).Build();
  EXPECT_TRUE(aux.ok());

  // Target graph: v8' (vertex 3) with neighbors v5', v6' (profile tag 3)
  // and v7' (tag 5) — one fewer neighbor than v9 has, since the auxiliary
  // grew in the time gap.
  hin::GraphBuilder t_builder(hin::TqqTargetSchema());
  t_builder.AddVertices(0, 4);
  EXPECT_TRUE(t_builder.SetAttribute(0, hin::kTagCountAttr, 3).ok());
  EXPECT_TRUE(t_builder.SetAttribute(1, hin::kTagCountAttr, 3).ok());
  EXPECT_TRUE(t_builder.SetAttribute(2, hin::kTagCountAttr, 5).ok());
  EXPECT_TRUE(t_builder.SetAttribute(3, hin::kYobAttr, 1980).ok());
  for (VertexId n = 0; n < 3; ++n) {
    EXPECT_TRUE(t_builder.AddEdge(3, n, hin::kFollowLink).ok());
  }
  auto target = std::move(t_builder).Build();
  EXPECT_TRUE(target.ok());
  return Figure6{std::move(aux).value(), std::move(target).value()};
}

TEST(DehinTest, Figure6BipartiteMatchingAcceptsGrownCandidate) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  Dehin dehin(&fixture.aux, config);
  const auto candidates = dehin.Deanonymize(fixture.target, 3);
  // v9 (vertex 4) matches: v5'~{v1,v2}, v6'~{v2 or v1}, v7'~{v3,v4} admits
  // a perfect matching. The decoy (vertex 5) cannot host v7'.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 4u);
}

TEST(DehinTest, ProfileOnlyDistanceZeroKeepsDecoy) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&fixture.aux, config);
  const auto candidates = dehin.Deanonymize(fixture.target, 3, 0);
  // Both v9 and the profile-identical decoy survive without link matching.
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(DehinTest, PigeonholeRejectsSmallerNeighborhoods) {
  // If the target has more typed neighbors than an auxiliary user, growth
  // cannot explain it and the user is rejected.
  hin::GraphBuilder aux_builder(hin::TqqTargetSchema());
  aux_builder.AddVertices(0, 3);
  EXPECT_TRUE(aux_builder.AddEdge(0, 1, hin::kMentionLink, 1).ok());
  auto aux = std::move(aux_builder).Build();
  ASSERT_TRUE(aux.ok());

  hin::GraphBuilder t_builder(hin::TqqTargetSchema());
  t_builder.AddVertices(0, 3);
  EXPECT_TRUE(t_builder.AddEdge(0, 1, hin::kMentionLink, 1).ok());
  EXPECT_TRUE(t_builder.AddEdge(0, 2, hin::kMentionLink, 1).ok());
  auto target = std::move(t_builder).Build();
  ASSERT_TRUE(target.ok());

  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  Dehin dehin(&aux.value(), config);
  const auto candidates = dehin.Deanonymize(target.value(), 0);
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 0u) ==
              candidates.end());
}

TEST(DehinTest, StrengthDominanceRequired) {
  // Target mentions with strength 5; an auxiliary user mentioning the same
  // profile with strength 3 cannot be the grown counterpart.
  hin::GraphBuilder aux_builder(hin::TqqTargetSchema());
  aux_builder.AddVertices(0, 4);
  EXPECT_TRUE(aux_builder.SetAttribute(0, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(aux_builder.SetAttribute(1, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(aux_builder.AddEdge(0, 2, hin::kMentionLink, 3).ok());
  EXPECT_TRUE(aux_builder.AddEdge(1, 2, hin::kMentionLink, 7).ok());
  auto aux = std::move(aux_builder).Build();
  ASSERT_TRUE(aux.ok());

  hin::GraphBuilder t_builder(hin::TqqTargetSchema());
  t_builder.AddVertices(0, 2);
  EXPECT_TRUE(t_builder.SetAttribute(0, hin::kYobAttr, 1980).ok());
  EXPECT_TRUE(t_builder.AddEdge(0, 1, hin::kMentionLink, 5).ok());
  auto target = std::move(t_builder).Build();
  ASSERT_TRUE(target.ok());

  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  Dehin dehin(&aux.value(), config);
  const auto candidates = dehin.Deanonymize(target.value(), 0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);  // only the strength-7 user dominates
}

TEST(DehinTest, CustomEntityMatchOverride) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 0;
  // An adversary-configured matcher that only accepts yob equality.
  config.entity_match_override = [](const hin::Graph& target, VertexId vt,
                                    const hin::Graph& aux, VertexId va) {
    return target.attribute(vt, hin::kYobAttr) ==
           aux.attribute(va, hin::kYobAttr);
  };
  Dehin dehin(&fixture.aux, config);
  const auto candidates = dehin.Deanonymize(fixture.target, 3);
  EXPECT_EQ(candidates.size(), 2u);  // both 1980 users
}

TEST(DehinTest, CustomLinkMatchOverride) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  // Reject every link: the target's non-empty neighborhood can never be
  // matched, so no candidates survive distance 1.
  config.link_match_override = [](hin::Strength, hin::Strength) {
    return false;
  };
  Dehin dehin(&fixture.aux, config);
  EXPECT_TRUE(dehin.Deanonymize(fixture.target, 3).empty());
}

// --- Property tests on synthetic datasets --------------------------------

struct SoundnessParams {
  uint64_t seed;
  double density;
  int max_distance;
};

class DehinSoundnessTest : public testing::TestWithParam<SoundnessParams> {};

// Soundness: under growth-consistent anonymization (id permutation only),
// the true counterpart is ALWAYS in the candidate set, at every distance.
TEST_P(DehinSoundnessTest, TruthAlwaysAmongCandidates) {
  const SoundnessParams p = GetParam();
  synth::TqqConfig config;
  config.num_users = 4000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 150;
  spec.density = p.density;
  util::Rng rng(p.seed);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  Dehin dehin(&dataset.value().auxiliary, attack);
  for (VertexId vt = 0; vt < dataset.value().target.num_vertices(); ++vt) {
    const auto candidates =
        dehin.Deanonymize(dataset.value().target, vt, p.max_distance);
    ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                   dataset.value().target_to_aux[vt]))
        << "target " << vt << " lost its true counterpart";
  }
}

INSTANTIATE_TEST_SUITE_P(
    GrowthAndDensity, DehinSoundnessTest,
    testing::Values(SoundnessParams{1, 0.002, 1}, SoundnessParams{2, 0.01, 1},
                    SoundnessParams{3, 0.01, 2}, SoundnessParams{4, 0.02, 3},
                    SoundnessParams{5, 0.005, 2}));

// Candidate sets shrink (weakly) as the max distance grows.
TEST(DehinTest, CandidateSetsMonotoneInDistance) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 120;
  spec.density = 0.01;
  util::Rng rng(11);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());
  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  Dehin dehin(&dataset.value().auxiliary, attack);
  for (VertexId vt = 0; vt < 40; ++vt) {
    size_t prev = SIZE_MAX;
    for (int n = 0; n <= 3; ++n) {
      const auto candidates = dehin.Deanonymize(dataset.value().target, vt, n);
      ASSERT_LE(candidates.size(), prev);
      prev = candidates.size();
    }
  }
}

// The index-accelerated attack visits exactly the same candidates as the
// paper's literal linear scan.
TEST(DehinTest, IndexAndScanAgree) {
  synth::TqqConfig config;
  config.num_users = 2000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.01;
  util::Rng rng(13);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());

  DehinConfig with_index;
  with_index.match = DefaultTqqMatchOptions();
  with_index.use_candidate_index = true;
  DehinConfig without_index = with_index;
  without_index.use_candidate_index = false;
  Dehin fast(&dataset.value().auxiliary, with_index);
  Dehin slow(&dataset.value().auxiliary, without_index);
  for (VertexId vt = 0; vt < dataset.value().target.num_vertices(); ++vt) {
    ASSERT_EQ(fast.Deanonymize(dataset.value().target, vt, 1),
              slow.Deanonymize(dataset.value().target, vt, 1));
  }
}

// Exact self-matching: attacking the auxiliary network with itself in
// time-synchronized mode must return a candidate set containing exactly
// the vertex itself for structurally unique vertices, and always at least
// the vertex itself.
TEST(DehinTest, SelfAttackFindsSelf) {
  synth::TqqConfig config;
  config.num_users = 1500;
  util::Rng rng(17);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  attack.match.growth_aware = false;
  Dehin dehin(&graph.value(), attack);
  for (VertexId v = 0; v < 60; ++v) {
    const auto candidates = dehin.Deanonymize(graph.value(), v, 2);
    ASSERT_TRUE(
        std::binary_search(candidates.begin(), candidates.end(), v));
  }
}

// --- StripMajorityStrengthLinks -------------------------------------------

TEST(StripMajorityTest, RemovesMajorityValuePerLinkType) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 5);
  // Mention strengths: {1, 1, 1, 4}: majority 1 removed, 4 kept.
  ASSERT_TRUE(builder.AddEdge(0, 1, hin::kMentionLink, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, hin::kMentionLink, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, hin::kMentionLink, 1).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, hin::kMentionLink, 4).ok());
  // Retweet strengths: {2, 2, 7}: majority 2 removed.
  ASSERT_TRUE(builder.AddEdge(0, 2, hin::kRetweetLink, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3, hin::kRetweetLink, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 4, hin::kRetweetLink, 7).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  auto stripped = StripMajorityStrengthLinks(graph.value());
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value().num_edges(), 2u);
  EXPECT_EQ(stripped.value().EdgeStrength(hin::kMentionLink, 3, 4), 4u);
  EXPECT_EQ(stripped.value().EdgeStrength(hin::kRetweetLink, 2, 4), 7u);
}

TEST(StripMajorityTest, TieBreaksTowardSmallerStrength) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 3);
  ASSERT_TRUE(builder.AddEdge(0, 1, hin::kMentionLink, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, hin::kMentionLink, 9).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  auto stripped = StripMajorityStrengthLinks(graph.value());
  ASSERT_TRUE(stripped.ok());
  // 1 and 9 tie with count 1; the smaller strength (1) is stripped.
  EXPECT_EQ(stripped.value().num_edges(), 1u);
  EXPECT_EQ(stripped.value().EdgeStrength(hin::kMentionLink, 1, 2), 9u);
}

TEST(StripMajorityTest, EmptyLinkTypesAreNoOp) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 3);
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  auto stripped = StripMajorityStrengthLinks(graph.value());
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value().num_edges(), 0u);
  EXPECT_EQ(stripped.value().num_vertices(), 3u);
}

TEST(StripMajorityTest, PreservesAttributes) {
  hin::GraphBuilder builder(hin::TqqTargetSchema());
  builder.AddVertices(0, 2);
  ASSERT_TRUE(builder.SetAttribute(0, hin::kYobAttr, 1980).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, hin::kFollowLink).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  auto stripped = StripMajorityStrengthLinks(graph.value());
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value().attribute(0, hin::kYobAttr), 1980);
}

// Saturated (near-complete) neighborhoods carry no signal and are skipped,
// pinning the attack at its distance-0 result (the VW-CGA behavior of
// Figure 8).
TEST(DehinTest, SaturatedNeighborhoodsFallBackToProfileMatching) {
  // Target: every user follows every other (complete follow graph).
  hin::GraphBuilder t_builder(hin::TqqTargetSchema());
  t_builder.AddVertices(0, 10);
  for (VertexId a = 0; a < 10; ++a) {
    for (VertexId b = 0; b < 10; ++b) {
      if (a != b) {
        ASSERT_TRUE(t_builder.AddEdge(a, b, hin::kFollowLink).ok());
      }
    }
  }
  auto target = std::move(t_builder).Build();
  ASSERT_TRUE(target.ok());

  // Auxiliary: sparse.
  hin::GraphBuilder a_builder(hin::TqqTargetSchema());
  a_builder.AddVertices(0, 10);
  ASSERT_TRUE(a_builder.AddEdge(0, 1, hin::kFollowLink).ok());
  auto aux = std::move(a_builder).Build();
  ASSERT_TRUE(aux.ok());

  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  config.saturation_fraction = 0.5;  // the reconfigured attack
  Dehin dehin(&aux.value(), config);
  // All profiles are identical: distance-0 would return all 10. With the
  // saturated follow neighborhood skipped, distance-1 returns the same.
  const auto candidates = dehin.Deanonymize(target.value(), 0, 1);
  EXPECT_EQ(candidates.size(), 10u);

  // Without the reconfiguration, the impossible neighborhood (9 followees
  // vs. at most 1 in the auxiliary) eliminates everyone.
  DehinConfig unreconfigured = config;
  unreconfigured.saturation_fraction = 1.0;
  Dehin strict(&aux.value(), unreconfigured);
  EXPECT_TRUE(strict.Deanonymize(target.value(), 0, 1).empty());
}

// Every configured kernel must produce the same candidate sets — the
// dominance kernel is a pure performance knob.
TEST(DehinTest, KernelChoiceNeverChangesResults) {
  Figure6 fixture = BuildFigure6();
  DehinConfig scalar_config;
  scalar_config.match = DefaultTqqMatchOptions();
  scalar_config.dominance_kernel = DominanceKernel::kScalar;
  Dehin scalar(&fixture.aux, scalar_config);
  for (DominanceKernel choice :
       {DominanceKernel::kAuto, DominanceKernel::kSse2,
        DominanceKernel::kAvx2}) {
    DehinConfig config = scalar_config;
    config.dominance_kernel = choice;
    Dehin dehin(&fixture.aux, config);
    for (VertexId v = 0; v < fixture.target.num_vertices(); ++v) {
      for (int n = 0; n <= 2; ++n) {
        EXPECT_EQ(dehin.Deanonymize(fixture.target, v, n),
                  scalar.Deanonymize(fixture.target, v, n))
            << "kernel=" << DominanceKernelChoiceName(choice) << " v=" << v
            << " n=" << n;
      }
    }
  }
}

// stats() deltas are computed with DehinStats::operator-; a "later" snapshot
// taken after ResetStats() used to wrap around to huge values.
TEST(DehinStatsTest, SubtractionClampsAtZero) {
  DehinStats before;
  before.prefilter_rejects = 100;
  before.cache_hits = 50;
  before.full_tests = 10;
  DehinStats after;  // all zero, as after a ResetStats()
  after.full_tests = 25;
  const DehinStats delta = after - before;
  EXPECT_EQ(delta.prefilter_rejects, 0u);
  EXPECT_EQ(delta.cache_hits, 0u);
  EXPECT_EQ(delta.full_tests, 15u);
}

// Differential check for the telemetry layer: the per-instance DehinStats and
// the process-wide metrics registry are fed from the same batched flush, so
// over a run their deltas must agree exactly.
TEST(DehinTest, StatsMatchGlobalRegistryDeltas) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&fixture.aux, config);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (VertexId v = 0; v < fixture.target.num_vertices(); ++v) {
    for (int n = 0; n <= 2; ++n) {
      (void)dehin.Deanonymize(fixture.target, v, n);
    }
  }
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  const DehinStats stats = dehin.stats();
  EXPECT_EQ(after.CounterValue("dehin/prefilter_rejects") -
                before.CounterValue("dehin/prefilter_rejects"),
            stats.prefilter_rejects);
  EXPECT_EQ(after.CounterValue("dehin/cache_hits") -
                before.CounterValue("dehin/cache_hits"),
            stats.cache_hits);
  EXPECT_EQ(after.CounterValue("dehin/full_tests") -
                before.CounterValue("dehin/full_tests"),
            stats.full_tests);
  // The attack exercised the matcher, so something was counted and the
  // candidate-set histograms saw every Deanonymize call.
  EXPECT_GT(stats.full_tests + stats.prefilter_rejects + stats.cache_hits, 0u);
}

TEST(DehinTest, StatsReportResolvedKernel) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.dominance_kernel = DominanceKernel::kScalar;
  Dehin dehin(&fixture.aux, config);
  EXPECT_STREQ(dehin.dominance_kernel_name(), "scalar");
  EXPECT_STREQ(dehin.stats().dominance_kernel, "scalar");
  DehinConfig no_prefilter = config;
  no_prefilter.use_prefilter = false;
  Dehin off(&fixture.aux, no_prefilter);
  EXPECT_STREQ(off.dominance_kernel_name(), "off");
}

// Regression for the target-state use-after-free: concurrent Deanonymize
// calls race InvalidateTarget on the same (immutable) graph. The old code
// handed out a raw pointer into the cache, so an invalidation freed the
// NeighborhoodStats another thread was scanning; shared_ptr pinning must
// keep every in-flight state alive. Run under ASan to make any regression
// loud.
TEST(DehinTest, ConcurrentInvalidationDoesNotInvalidateInFlightReads) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&fixture.aux, config);
  const auto expected = dehin.Deanonymize(fixture.target, 3, 2);

  std::atomic<bool> stop{false};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (dehin.Deanonymize(fixture.target, 3, 2) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 400; ++i) {
    dehin.InvalidateTarget(fixture.target);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // The cache never holds more than one entry for the one live graph.
  EXPECT_LE(dehin.num_cached_target_states(), 1u);
}

// Retiring a target graph and building a new one at the same address must
// not resurrect stale cached state: InvalidateTarget drops the entry, and
// a rebuilt graph gets a fresh fingerprint-consistent analysis.
TEST(DehinTest, InvalidateTargetDropsCachedState) {
  Figure6 fixture = BuildFigure6();
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  Dehin dehin(&fixture.aux, config);
  EXPECT_EQ(dehin.num_cached_target_states(), 0u);
  (void)dehin.Deanonymize(fixture.target, 3, 1);
  EXPECT_EQ(dehin.num_cached_target_states(), 1u);
  dehin.InvalidateTarget(fixture.target);
  EXPECT_EQ(dehin.num_cached_target_states(), 0u);
  // Invalidating an unknown graph is a no-op, not an error.
  dehin.InvalidateTarget(fixture.aux);
  EXPECT_EQ(dehin.num_cached_target_states(), 0u);
  // Re-analysis after invalidation still yields the Figure 6 answer.
  const auto candidates = dehin.Deanonymize(fixture.target, 3, 1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 4u);
  EXPECT_EQ(dehin.num_cached_target_states(), 1u);
}

}  // namespace
}  // namespace hinpriv::core
