#include "synth/profile.h"

#include "hin/tqq_schema.h"

namespace hinpriv::synth {

ProfileSampler::ProfileSampler(const TqqConfig& config)
    : config_(config),
      gender_(static_cast<uint64_t>(config.num_genders), 0.3),
      yob_(static_cast<uint64_t>(config.yob_max - config.yob_min + 1),
           config.yob_zipf),
      tweet_count_(static_cast<uint64_t>(config.tweet_count_max + 1),
                   config.tweet_count_zipf),
      tags_(static_cast<uint64_t>(config.tag_count_max + 1),
            config.tag_zipf) {}

Profile ProfileSampler::Sample(util::Rng* rng) const {
  Profile p;
  p.gender = static_cast<hin::AttrValue>(gender_.Sample(rng));
  // Zipf rank 0 is the most common year; anchor it at the top of the year
  // span so recent cohorts dominate, as on a real microblogging site.
  p.yob = static_cast<hin::AttrValue>(
      config_.yob_max - static_cast<int>(yob_.Sample(rng)));
  p.tweet_count = static_cast<hin::AttrValue>(tweet_count_.Sample(rng));
  p.tag_count = static_cast<hin::AttrValue>(tags_.Sample(rng));
  return p;
}

util::Status ApplyProfile(hin::GraphBuilder* builder, hin::VertexId v,
                          const Profile& profile) {
  HINPRIV_RETURN_IF_ERROR(
      builder->SetAttribute(v, hin::kGenderAttr, profile.gender));
  HINPRIV_RETURN_IF_ERROR(builder->SetAttribute(v, hin::kYobAttr, profile.yob));
  HINPRIV_RETURN_IF_ERROR(
      builder->SetAttribute(v, hin::kTweetCountAttr, profile.tweet_count));
  HINPRIV_RETURN_IF_ERROR(
      builder->SetAttribute(v, hin::kTagCountAttr, profile.tag_count));
  return util::Status::OK();
}

}  // namespace hinpriv::synth
