// Property tests over DeHIN's soundness guarantee: for growth-consistent
// publication pipelines (no real-edge deletion), the true counterpart must
// remain in every candidate set — across anonymizers, reconfiguration,
// homogenization and bucketing, at every distance.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "anon/complete_graph_anonymizer.h"
#include "anon/k_degree_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "eval/experiment.h"
#include "hin/homogenize.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

enum class Defense { kKdda, kCga, kVwCga, kKDegree, kBucketing };

struct PropertyParams {
  Defense defense;
  bool reconfigured;  // strip + saturation fallback
  uint64_t seed;
};

std::unique_ptr<anon::Anonymizer> MakeAnonymizer(Defense defense) {
  switch (defense) {
    case Defense::kKdda:
      return std::make_unique<anon::KddAnonymizer>();
    case Defense::kCga:
      return std::make_unique<anon::CompleteGraphAnonymizer>();
    case Defense::kVwCga:
      return std::make_unique<anon::VaryingWeightCgaAnonymizer>();
    case Defense::kKDegree:
      return std::make_unique<anon::KDegreeAnonymizer>(10);
    case Defense::kBucketing:
      return std::make_unique<anon::StrengthBucketingAnonymizer>(7);
  }
  return nullptr;
}

class DehinDefenseSoundnessTest
    : public testing::TestWithParam<PropertyParams> {};

TEST_P(DehinDefenseSoundnessTest, TruthSurvivesEveryPipeline) {
  const PropertyParams p = GetParam();
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 120;
  spec.density = 0.015;
  util::Rng rng(p.seed);
  auto anonymizer = MakeAnonymizer(p.defense);
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, *anonymizer, p.reconfigured, &rng);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  if (p.reconfigured) attack.saturation_fraction = 0.5;
  Dehin dehin(&dataset.value().auxiliary, attack);
  for (hin::VertexId vt = 0; vt < dataset.value().target.num_vertices();
       ++vt) {
    for (int n : {0, 1, 2}) {
      const auto candidates =
          dehin.Deanonymize(dataset.value().target, vt, n);
      ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                     dataset.value().ground_truth[vt]))
          << "defense=" << static_cast<int>(p.defense) << " vt=" << vt
          << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, DehinDefenseSoundnessTest,
    testing::Values(
        PropertyParams{Defense::kKdda, false, 1},
        PropertyParams{Defense::kKdda, true, 2},  // blanket reconfiguration
        PropertyParams{Defense::kCga, true, 3},
        PropertyParams{Defense::kVwCga, true, 4},
        PropertyParams{Defense::kKDegree, true, 5},
        PropertyParams{Defense::kBucketing, false, 6}));

// Homogenized pipeline: collapsing link types on BOTH sides preserves
// soundness (merged target strengths are dominated by merged auxiliary
// strengths under growth).
TEST(DehinHomogeneousSoundnessTest, TruthSurvivesHomogenization) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 120;
  spec.density = 0.015;
  util::Rng rng(7);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());
  auto homo_target = hin::HomogenizeGraph(dataset.value().target);
  auto homo_aux = hin::HomogenizeGraph(dataset.value().auxiliary);
  ASSERT_TRUE(homo_target.ok());
  ASSERT_TRUE(homo_aux.ok());

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  attack.match.link_types = {0};
  Dehin dehin(&homo_aux.value(), attack);
  for (hin::VertexId vt = 0; vt < homo_target.value().num_vertices(); ++vt) {
    const auto candidates = dehin.Deanonymize(homo_target.value(), vt, 2);
    ASSERT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                   dataset.value().ground_truth[vt]));
  }
}

// Dropping link types from the published target only removes constraints:
// candidate sets grow (weakly) relative to the full publication, and the
// truth stays inside.
TEST(DehinLinkDropMonotonicityTest, DroppingTypesWeakensButStaysSound) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.015;
  util::Rng rng(8);
  auto planted =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(planted.ok());

  // Publish twice with the same permutation stream: full vs follow-only.
  util::Rng full_rng(11);
  util::Rng drop_rng(11);
  anon::KddAnonymizer full_publisher;
  anon::LinkTypeDroppingAnonymizer drop_publisher({hin::kFollowLink});
  auto full = full_publisher.Anonymize(planted.value().target, &full_rng);
  auto dropped = drop_publisher.Anonymize(planted.value().target, &drop_rng);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(dropped.ok());
  ASSERT_EQ(full.value().to_original, dropped.value().to_original);

  DehinConfig attack;
  attack.match = DefaultTqqMatchOptions();
  Dehin dehin(&planted.value().auxiliary, attack);
  for (hin::VertexId vt = 0; vt < 100; ++vt) {
    const auto with_all = dehin.Deanonymize(full.value().graph, vt, 1);
    const auto with_drop = dehin.Deanonymize(dropped.value().graph, vt, 1);
    ASSERT_GE(with_drop.size(), with_all.size());
    const hin::VertexId truth =
        planted.value().target_to_aux[full.value().to_original[vt]];
    ASSERT_TRUE(
        std::binary_search(with_drop.begin(), with_drop.end(), truth));
  }
}

// Candidate sets are monotone in the enabled link-type set: enabling more
// heterogeneity can only eliminate candidates (Table 3's mechanism).
TEST(DehinLinkTypeMonotonicityTest, MoreLinkTypesNeverGrowCandidateSets) {
  synth::TqqConfig config;
  config.num_users = 3000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 100;
  spec.density = 0.015;
  util::Rng rng(9);
  anon::KddAnonymizer anonymizer;
  auto dataset = eval::BuildExperimentDataset(
      config, spec, synth::GrowthConfig{}, anonymizer, false, &rng);
  ASSERT_TRUE(dataset.ok());

  DehinConfig follow_only;
  follow_only.match = DefaultTqqMatchOptions();
  follow_only.match.link_types = {hin::kFollowLink};
  DehinConfig all;
  all.match = DefaultTqqMatchOptions();
  Dehin weak(&dataset.value().auxiliary, follow_only);
  Dehin strong(&dataset.value().auxiliary, all);
  for (hin::VertexId vt = 0; vt < 100; ++vt) {
    const auto weak_candidates =
        weak.Deanonymize(dataset.value().target, vt, 1);
    const auto strong_candidates =
        strong.Deanonymize(dataset.value().target, vt, 1);
    ASSERT_LE(strong_candidates.size(), weak_candidates.size());
    // And the strong set is a subset of the weak set.
    ASSERT_TRUE(std::includes(weak_candidates.begin(), weak_candidates.end(),
                              strong_candidates.begin(),
                              strong_candidates.end()));
  }
}

}  // namespace
}  // namespace hinpriv::core
