file(REMOVE_RECURSE
  "CMakeFiles/anonymity_metrics_test.dir/core/anonymity_metrics_test.cc.o"
  "CMakeFiles/anonymity_metrics_test.dir/core/anonymity_metrics_test.cc.o.d"
  "anonymity_metrics_test"
  "anonymity_metrics_test.pdb"
  "anonymity_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymity_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
