#ifndef HINPRIV_HIN_GRAPH_H_
#define HINPRIV_HIN_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hin/schema.h"
#include "hin/types.h"
#include "util/status.h"

namespace hinpriv::hin {

// One directed adjacency entry: the neighbor and the link strength
// (1 for unweighted link types such as follow).
struct Edge {
  VertexId neighbor = kInvalidVertex;
  Strength strength = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// An immutable heterogeneous information network instance (Definition 1):
// a directed graph whose vertices carry an entity type and per-type profile
// attributes, and whose edges carry a link type and a strength.
//
// Storage is per-link-type CSR, with both out- and in-adjacency, entries
// sorted by neighbor id; attributes are columnar per entity type. Built
// exclusively by GraphBuilder (graph_builder.h); immutable thereafter, so
// const access is safe to share across threads.
class Graph {
 public:
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  const NetworkSchema& schema() const { return schema_; }

  size_t num_vertices() const { return vtype_.size(); }
  // Total directed edges across all link types (after duplicate merging).
  size_t num_edges() const { return num_edges_; }
  size_t num_link_types() const { return schema_.num_link_types(); }

  EntityTypeId entity_type(VertexId v) const { return vtype_[v]; }
  size_t NumVerticesOfType(EntityTypeId t) const {
    return type_counts_[t];
  }

  // Out-neighbors of v via link type lt, sorted by neighbor id.
  std::span<const Edge> OutEdges(LinkTypeId lt, VertexId v) const {
    const auto& adj = out_[lt];
    return {adj.edges.data() + adj.offsets[v],
            adj.offsets[v + 1] - adj.offsets[v]};
  }
  // In-neighbors of v via link type lt (edge.neighbor is the source vertex),
  // sorted by neighbor id.
  std::span<const Edge> InEdges(LinkTypeId lt, VertexId v) const {
    const auto& adj = in_[lt];
    return {adj.edges.data() + adj.offsets[v],
            adj.offsets[v + 1] - adj.offsets[v]};
  }

  size_t OutDegree(LinkTypeId lt, VertexId v) const {
    return out_[lt].offsets[v + 1] - out_[lt].offsets[v];
  }
  size_t InDegree(LinkTypeId lt, VertexId v) const {
    return in_[lt].offsets[v + 1] - in_[lt].offsets[v];
  }
  // Out-degree summed over all link types.
  size_t TotalOutDegree(VertexId v) const;

  // Strength of the edge src --lt--> dst, or 0 if absent. O(log deg).
  Strength EdgeStrength(LinkTypeId lt, VertexId src, VertexId dst) const;
  bool HasEdge(LinkTypeId lt, VertexId src, VertexId dst) const {
    return EdgeStrength(lt, src, dst) > 0;
  }

  // Profile attribute `attr` (an AttributeId within v's entity type) of v.
  AttrValue attribute(VertexId v, AttributeId attr) const {
    return attrs_[vtype_[v]][attr][dense_idx_[v]];
  }
  size_t num_attributes(EntityTypeId t) const {
    return schema_.entity_type(t).attributes.size();
  }

  // The full attribute column for one entity type; index i holds the value
  // for the i-th vertex of that type in vertex-id order. Used by cardinality
  // and index-building code paths.
  std::span<const AttrValue> AttributeColumn(EntityTypeId t,
                                             AttributeId attr) const {
    return attrs_[t][attr];
  }
  // Position of v inside its entity type's attribute columns.
  uint32_t dense_index(VertexId v) const { return dense_idx_[v]; }

 private:
  friend class GraphBuilder;
  Graph() = default;

  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<Edge> edges;
  };

  NetworkSchema schema_;
  std::vector<EntityTypeId> vtype_;
  std::vector<uint32_t> dense_idx_;
  std::vector<size_t> type_counts_;
  // attrs_[entity_type][attribute][dense_index]
  std::vector<std::vector<std::vector<AttrValue>>> attrs_;
  std::vector<Csr> out_;  // one per link type
  std::vector<Csr> in_;   // one per link type
  size_t num_edges_ = 0;
};

}  // namespace hinpriv::hin

#endif  // HINPRIV_HIN_GRAPH_H_
