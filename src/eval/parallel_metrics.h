#ifndef HINPRIV_EVAL_PARALLEL_METRICS_H_
#define HINPRIV_EVAL_PARALLEL_METRICS_H_

#include <cstddef>

#include "eval/metrics.h"
#include "util/cancellation.h"

namespace hinpriv::eval {

// Telemetry knobs for EvaluateAttackParallel. Worker threads always record
// spans ("eval/worker", plus the per-call "dehin/deanonymize" spans) when
// obs tracing is on; the heartbeat is opt-in because it writes to stderr.
struct ParallelEvalOptions {
  // 0 picks the hardware concurrency.
  size_t num_threads = 0;
  // > 0: any worker that notices this many seconds elapsed since the last
  // beat prints one "attack progress: done/total" line to stderr and
  // updates the "eval/progress" gauge — the liveness signal for
  // multi-minute runs. 0 disables.
  double heartbeat_seconds = 0.0;
  // Optional stop signal (e.g. service::ShutdownToken() wired to
  // SIGINT/SIGTERM). Workers poll it at target boundaries: the target a
  // worker is scoring finishes cleanly, no new targets are claimed, and
  // the returned metrics cover the evaluated prefix
  // (AttackMetrics::num_evaluated, interrupted = true).
  const util::CancelToken* cancel = nullptr;
};

// Multi-threaded EvaluateAttack. Dehin::Deanonymize is thread-safe, so
// target vertices can be scored concurrently; with the shared match cache
// enabled (DehinConfig::use_shared_cache) the workers additionally reuse
// each other's LinkMatch sub-results through the striped-lock cache.
// Results are bit-identical to the serial EvaluateAttack (verified by the
// unit tests).
AttackMetrics EvaluateAttackParallel(
    const core::Dehin& dehin, const hin::Graph& target,
    const std::vector<hin::VertexId>& ground_truth, int max_distance,
    const ParallelEvalOptions& options);

// Compatibility shim: `num_threads` == 0 picks the hardware concurrency.
inline AttackMetrics EvaluateAttackParallel(
    const core::Dehin& dehin, const hin::Graph& target,
    const std::vector<hin::VertexId>& ground_truth, int max_distance,
    size_t num_threads = 0) {
  ParallelEvalOptions options;
  options.num_threads = num_threads;
  return EvaluateAttackParallel(dehin, target, ground_truth, max_distance,
                                options);
}

}  // namespace hinpriv::eval

#endif  // HINPRIV_EVAL_PARALLEL_METRICS_H_
