#include "eval/parallel_metrics.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "hin/graph_builder.h"
#include "eval/experiment.h"
#include "util/random.h"

namespace hinpriv::eval {
namespace {

ExperimentDataset MakeDataset(uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = 6000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 400;
  spec.density = 0.01;
  util::Rng rng(seed);
  anon::KddAnonymizer anonymizer;
  auto dataset = BuildExperimentDataset(config, spec, synth::GrowthConfig{},
                                        anonymizer, false, &rng);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

class ParallelMetricsTest : public testing::TestWithParam<size_t> {};

TEST_P(ParallelMetricsTest, MatchesSerialExactly) {
  const ExperimentDataset dataset = MakeDataset(1);
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&dataset.auxiliary, config);
  for (int n = 0; n <= 2; ++n) {
    const AttackMetrics serial =
        EvaluateAttack(dehin, dataset.target, dataset.ground_truth, n);
    const AttackMetrics parallel = EvaluateAttackParallel(
        dehin, dataset.target, dataset.ground_truth, n, GetParam());
    EXPECT_EQ(parallel.num_targets, serial.num_targets);
    EXPECT_EQ(parallel.num_unique_correct, serial.num_unique_correct);
    EXPECT_EQ(parallel.num_containing_truth, serial.num_containing_truth);
    EXPECT_DOUBLE_EQ(parallel.precision, serial.precision);
    EXPECT_NEAR(parallel.reduction_rate, serial.reduction_rate, 1e-9);
    EXPECT_NEAR(parallel.mean_candidate_count, serial.mean_candidate_count,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelMetricsTest,
                         testing::Values(1, 2, 4, 8, 0 /* hardware */));

TEST(ParallelMetricsTest, EmptyTarget) {
  const ExperimentDataset dataset = MakeDataset(2);
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&dataset.auxiliary, config);
  hin::GraphBuilder builder(dataset.target.schema());
  auto empty = std::move(builder).Build();
  ASSERT_TRUE(empty.ok());
  const AttackMetrics metrics =
      EvaluateAttackParallel(dehin, empty.value(), {}, 1, 4);
  EXPECT_EQ(metrics.num_targets, 0u);
}

// Regression: a ground-truth vector shorter than the target used to send
// workers reading ground_truth[vt] past the end. Both evaluators must now
// refuse up front and report "nothing evaluated" instead.
TEST(ParallelMetricsTest, ShortGroundTruthIsRejected) {
  const ExperimentDataset dataset = MakeDataset(3);
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  core::Dehin dehin(&dataset.auxiliary, config);
  ASSERT_GT(dataset.target.num_vertices(), 1u);
  std::vector<hin::VertexId> truncated(dataset.ground_truth.begin(),
                                       dataset.ground_truth.end() - 1);
  const AttackMetrics parallel =
      EvaluateAttackParallel(dehin, dataset.target, truncated, 1, 4);
  EXPECT_EQ(parallel.num_targets, 0u);
  EXPECT_EQ(parallel.num_unique_correct, 0u);
  const AttackMetrics serial =
      EvaluateAttack(dehin, dataset.target, truncated, 1);
  EXPECT_EQ(serial.num_targets, 0u);
}

// Regression: an exception escaping a worker used to std::terminate the
// process (uncaught throw on a std::thread). It must now propagate to the
// caller after all threads have been joined.
TEST(ParallelMetricsTest, WorkerExceptionPropagates) {
  const ExperimentDataset dataset = MakeDataset(4);
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  config.entity_match_override =
      [](const hin::Graph&, hin::VertexId, const hin::Graph&,
         hin::VertexId) -> bool {
    throw std::runtime_error("injected matcher failure");
  };
  core::Dehin dehin(&dataset.auxiliary, config);
  EXPECT_THROW(EvaluateAttackParallel(dehin, dataset.target,
                                      dataset.ground_truth, 1, 4),
               std::runtime_error);
}

}  // namespace
}  // namespace hinpriv::eval
