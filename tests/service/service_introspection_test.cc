// Loopback tests of the live introspection plane: stats/health polled
// DURING load, health transitions under saturation, and the trace
// round-trip (start -> load -> stop -> dump) with request-id-annotated
// spans.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "core/matchers.h"
#include "service/client.h"
#include "service/json.h"
#include "service/server.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::service {
namespace {

struct TestNetwork {
  hin::Graph aux;
  hin::Graph anonymized;
  std::vector<hin::VertexId> to_original;
};

TestNetwork MakeNetwork(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto aux = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(aux.ok());
  anon::StrengthBucketingAnonymizer anonymizer(10);
  auto published = anonymizer.Anonymize(aux.value(), &rng);
  EXPECT_TRUE(published.ok());
  return TestNetwork{std::move(aux).value(),
                     std::move(published.value().graph),
                     std::move(published.value().to_original)};
}

core::DehinConfig MakeDehinConfig() {
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  config.max_distance = 1;
  return config;
}

bool IsKnownHealth(const std::string& health) {
  return health == "ok" || health == "degraded" || health == "shedding";
}

// Stats and health answer while attack load is running, and every poll
// observes counters that only move forward.
TEST(ServiceIntrospectionTest, StatsDuringLoadShowMonotoneCounters) {
  const TestNetwork net = MakeNetwork(100, 21);
  ServerConfig config;
  config.num_workers = 2;
  config.queue_capacity = 64;
  config.dehin = MakeDehinConfig();
  config.introspection_tick_ms = 20;  // fast windows for a short test
  config.slow_log_capacity = 8;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  // Load: two clients hammer attack_one until told to stop.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> issued{0};
  std::vector<std::thread> load;
  for (int c = 0; c < 2; ++c) {
    load.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      hin::VertexId v = static_cast<hin::VertexId>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = client.value().AttackOne(
            v % static_cast<hin::VertexId>(net.anonymized.num_vertices()), 1);
        ASSERT_TRUE(r.ok());
        if (r.value().code == ResponseCode::kOk) {
          issued.fetch_add(1, std::memory_order_relaxed);
        }
        v += 2;
      }
    });
  }

  // Poller: stats + health during the load, asserting monotonicity.
  auto poller = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(poller.ok());
  int64_t last_received = -1;
  double last_uptime = -1.0;
  for (int poll = 0; poll < 10; ++poll) {
    auto stats = poller.value().Stats();
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().code, ResponseCode::kOk);
    const JsonValue& result = stats.value().result;

    const int64_t received = result.GetInt("requests_received", -1);
    EXPECT_GE(received, last_received);
    last_received = received;
    const double uptime = result.GetDouble("uptime_sec", -1.0);
    EXPECT_GE(uptime, last_uptime);
    last_uptime = uptime;
    EXPECT_TRUE(IsKnownHealth(result.GetString("health"))) << "poll " << poll;

    const JsonValue* windows = result.Find("windows");
    ASSERT_NE(windows, nullptr);
    ASSERT_EQ(windows->size(), 3u);
    for (const JsonValue& w : windows->items()) {
      EXPECT_GE(w.GetDouble("qps", -1.0), 0.0);
      // Covered seconds track the requested window: the base sample is the
      // newest one at least window_sec old, so coverage may overshoot by up
      // to a tick (plus scheduling slop), never by a whole window.
      EXPECT_GE(w.GetDouble("window_sec", -1.0), 0.0);
      EXPECT_LE(w.GetDouble("window_sec", -1.0),
                w.GetDouble("requested_window_sec", -1.0) + 0.5);
      const JsonValue* latency = w.Find("latency");
      ASSERT_NE(latency, nullptr);
      EXPECT_GE(latency->GetInt("count", -1), 0);
    }

    auto health = poller.value().Health();
    ASSERT_TRUE(health.ok());
    ASSERT_EQ(health.value().code, ResponseCode::kOk);
    EXPECT_TRUE(IsKnownHealth(health.value().result.GetString("health")));
    EXPECT_GE(health.value().result.GetDouble("shed_per_sec", -1.0), 0.0);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  stop.store(true);
  for (std::thread& t : load) t.join();
  const uint64_t total_issued = issued.load();
  ASSERT_GT(total_issued, 0u);

  // Final stats reflect the whole run: the cumulative counter covers every
  // attack, the per-distance breakdown binned them all under d1, and the
  // slow-query log kept a worst-first prefix.
  auto final_stats = poller.value().Stats();
  ASSERT_TRUE(final_stats.ok());
  const JsonValue& result = final_stats.value().result;
  EXPECT_GE(result.GetInt("requests_received", 0),
            static_cast<int64_t>(total_issued));
  EXPECT_GE(result.GetInt("responses_ok", 0),
            static_cast<int64_t>(total_issued));
  const JsonValue* per_distance = result.Find("per_distance");
  ASSERT_NE(per_distance, nullptr);
  const JsonValue* d1 = per_distance->Find("d1");
  ASSERT_NE(d1, nullptr);
  EXPECT_GE(d1->GetInt("attacks", -1), static_cast<int64_t>(total_issued));
  const JsonValue* slow = result.Find("slow_queries");
  ASSERT_NE(slow, nullptr);
  ASSERT_GT(slow->size(), 0u);
  ASSERT_LE(slow->size(), 8u);
  for (const JsonValue& entry : slow->items()) {
    const int64_t total_us = entry.GetInt("total_us", -1);
    EXPECT_GE(total_us, 0);
    EXPECT_GE(entry.GetInt("queue_us", -1), 0);
    EXPECT_GT(entry.GetInt("rid", 0), 0);
  }
  for (size_t i = 1; i < slow->size(); ++i) {
    EXPECT_GE(slow->at(i - 1).GetInt("total_us", -1),
              slow->at(i).GetInt("total_us", -1));
  }

  server.Shutdown();
  EXPECT_TRUE(server.finished());
}

// The watchdog flips health to "shedding" while the queue is saturated
// and sheds are happening, then recovers once the pressure is gone.
TEST(ServiceIntrospectionTest, HealthTransitionsUnderSaturation) {
  const TestNetwork net = MakeNetwork(40, 22);
  ServerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.max_batch = 1;
  config.dehin = MakeDehinConfig();
  config.introspection_tick_ms = 10;
  config.shed_window_sec = 0.5;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  auto holder = Client::Connect("127.0.0.1", server.port());
  auto filler = Client::Connect("127.0.0.1", server.port());
  auto prober = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(holder.ok() && filler.ok() && prober.ok());

  // Healthy at rest.
  auto at_rest = prober.value().Health();
  ASSERT_TRUE(at_rest.ok());
  EXPECT_EQ(at_rest.value().result.GetString("health"), "ok");

  // Saturate: worker held, queue slot full, then a request that sheds.
  std::thread hold([&] { (void)holder.value().Sleep(700); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread fill([&] { (void)filler.value().Sleep(700); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto shed = prober.value().AttackOne(0, 1);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().code, ResponseCode::kBusy);

  // Health must report shedding while saturated — polled INLINE, so it
  // answers even though the worker and the queue are both occupied.
  bool saw_shedding = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(3);
  while (std::chrono::steady_clock::now() < deadline) {
    auto health = prober.value().Health();
    ASSERT_TRUE(health.ok());
    ASSERT_EQ(health.value().code, ResponseCode::kOk);
    if (health.value().result.GetString("health") == "shedding") {
      saw_shedding = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_shedding);

  hold.join();
  fill.join();

  // Once the sleeps resolve and the shed window ages out, health recovers.
  bool recovered = false;
  const auto recover_deadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < recover_deadline) {
    auto health = prober.value().Health();
    ASSERT_TRUE(health.ok());
    if (health.value().result.GetString("health") == "ok") {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(recovered);

  // The stats verb agrees and the shed shows up cumulatively.
  auto stats = prober.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().result.GetInt("shed", -1), 1);

  server.Shutdown();
}

// trace_start -> load -> trace_stop -> trace_dump round-trips a Chrome
// trace whose spans carry the per-request id and whose B/E events balance.
TEST(ServiceIntrospectionTest, TraceRoundTripCarriesRequestIds) {
  const TestNetwork net = MakeNetwork(60, 23);
  ServerConfig config;
  config.num_workers = 2;
  config.dehin = MakeDehinConfig();
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  auto start = client.value().TraceStart();
  ASSERT_TRUE(start.ok());
  ASSERT_EQ(start.value().code, ResponseCode::kOk);
  EXPECT_TRUE(start.value().result.GetBool("tracing", false));

  // Tracing state is visible in stats.
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().result.GetBool("tracing", false));

  for (hin::VertexId v = 0; v < 6; ++v) {
    auto r = client.value().AttackOne(v, 1);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().code, ResponseCode::kOk);
  }

  auto stop = client.value().TraceStop();
  ASSERT_TRUE(stop.ok());
  ASSERT_EQ(stop.value().code, ResponseCode::kOk);
  EXPECT_FALSE(stop.value().result.GetBool("tracing", true));
  EXPECT_GT(stop.value().result.GetInt("events", 0), 0);

  auto dump = client.value().TraceDump();
  ASSERT_TRUE(dump.ok());
  ASSERT_EQ(dump.value().code, ResponseCode::kOk);
  const std::string trace_text = dump.value().result.GetString("trace");
  ASSERT_FALSE(trace_text.empty());

  auto trace = JsonValue::Parse(trace_text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const JsonValue* events = trace.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);

  size_t begins = 0;
  size_t ends = 0;
  size_t rid_annotated_requests = 0;
  for (const JsonValue& event : events->items()) {
    const std::string ph = event.GetString("ph");
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "B" && event.GetString("name") == "service/handle_request") {
      const JsonValue* args = event.Find("args");
      if (args != nullptr && args->GetInt("rid", 0) > 0) {
        ++rid_annotated_requests;
      }
    }
  }
  EXPECT_EQ(begins, ends);  // exporter drops orphaned opens
  // Every traced attack ran under its admission-assigned request id.
  EXPECT_GE(rid_annotated_requests, 6u);

  server.Shutdown();
}

}  // namespace
}  // namespace hinpriv::service
