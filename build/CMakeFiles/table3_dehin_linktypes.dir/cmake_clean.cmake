file(REMOVE_RECURSE
  "CMakeFiles/table3_dehin_linktypes.dir/bench/table3_dehin_linktypes.cc.o"
  "CMakeFiles/table3_dehin_linktypes.dir/bench/table3_dehin_linktypes.cc.o.d"
  "bench/table3_dehin_linktypes"
  "bench/table3_dehin_linktypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dehin_linktypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
