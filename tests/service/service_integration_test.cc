// End-to-end test of the resident attack service: a real Server on a
// loopback socket, concurrent clients, and parity against the batch
// evaluator on the same anonymized/auxiliary pair.

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anon/utility_tradeoff_anonymizers.h"
#include "core/dehin.h"
#include "core/matchers.h"
#include "core/privacy_risk.h"
#include "core/signature.h"
#include "eval/metrics.h"
#include "exec/executor.h"
#include "service/client.h"
#include "service/json.h"
#include "service/server.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::service {
namespace {

struct TestNetwork {
  hin::Graph aux;
  hin::Graph anonymized;
  std::vector<hin::VertexId> to_original;
};

// A synthetic t.qq-like network and its published (strength-bucketed,
// id-permuted) counterpart — the same kind of pair the batch experiments
// attack.
TestNetwork MakeNetwork(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto aux = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(aux.ok());
  anon::StrengthBucketingAnonymizer anonymizer(10);
  auto published = anonymizer.Anonymize(aux.value(), &rng);
  EXPECT_TRUE(published.ok());
  return TestNetwork{std::move(aux).value(),
                     std::move(published.value().graph),
                     std::move(published.value().to_original)};
}

core::DehinConfig MakeDehinConfig() {
  core::DehinConfig config;
  config.match = core::DefaultTqqMatchOptions();
  config.max_distance = 1;
  return config;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServiceIntegrationTest, ConcurrentQueriesMatchBatchEvaluator) {
  const TestNetwork net = MakeNetwork(120, 11);
  ServerConfig config;
  config.num_workers = 3;
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.default_max_distance = 1;
  config.dehin = MakeDehinConfig();
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // Reference answers from the library the batch evaluator uses.
  core::Dehin reference(&net.aux, MakeDehinConfig());
  const size_t num_targets = net.anonymized.num_vertices();

  // Three concurrent clients split the targets; each compares the served
  // candidate set with a direct library call on the same pair.
  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[c] = "connect: " + client.status().ToString();
        return;
      }
      for (size_t v = c; v < num_targets; v += kClients) {
        auto response =
            client.value().AttackOne(static_cast<hin::VertexId>(v), 1);
        if (!response.ok() ||
            response.value().code != ResponseCode::kOk) {
          failures[c] = "attack_one(" + std::to_string(v) + ") failed";
          return;
        }
        const auto expected = reference.Deanonymize(
            net.anonymized, static_cast<hin::VertexId>(v), 1);
        const JsonValue& result = response.value().result;
        if (result.GetInt("num_candidates", -1) !=
            static_cast<int64_t>(expected.size())) {
          failures[c] = "candidate count mismatch at " + std::to_string(v);
          return;
        }
        const JsonValue* candidates = result.Find("candidates");
        if (candidates == nullptr ||
            candidates->size() != expected.size()) {
          failures[c] = "candidate list mismatch at " + std::to_string(v);
          return;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if (candidates->at(i).AsInt(-1) !=
              static_cast<int64_t>(expected[i])) {
            failures[c] = "candidate value mismatch at " + std::to_string(v);
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << failures[c];
  }

  // The aggregate the service implies must agree with the batch evaluator
  // run on the identical pair: every candidate set matched one-for-one
  // above, so spot-check the evaluator's own numbers for drift.
  const eval::AttackMetrics batch =
      eval::EvaluateAttack(reference, net.anonymized, net.to_original, 1);
  EXPECT_EQ(batch.num_targets, num_targets);
  EXPECT_EQ(batch.num_evaluated, num_targets);
  EXPECT_FALSE(batch.interrupted);

  // Network risk parity: the service computes R(T) with the audit's
  // signature configuration; recompute it directly.
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto risk_response = client.value().NetworkRisk(1);
  ASSERT_TRUE(risk_response.ok());
  ASSERT_EQ(risk_response.value().code, ResponseCode::kOk);
  core::SignatureOptions sig_options;
  const size_t num_attrs = net.anonymized.num_attributes(0);
  for (hin::AttributeId a = 0; a < num_attrs; ++a) {
    sig_options.attributes.push_back(a);
  }
  sig_options.link_types = core::AllLinkTypes(net.anonymized);
  const auto signatures =
      core::ComputeSignatures(net.anonymized, sig_options, 1);
  ASSERT_FALSE(signatures.empty());
  const double expected_risk = core::DatasetRisk(signatures.back());
  EXPECT_NEAR(risk_response.value().result.GetDouble("network_risk", -1.0),
              expected_risk, 1e-9);

  // Per-entity risk for a few vertices against PerTupleRisk.
  const std::vector<double> per_tuple = core::PerTupleRisk(signatures.back());
  for (hin::VertexId v : {hin::VertexId{0}, hin::VertexId{7},
                          static_cast<hin::VertexId>(num_targets - 1)}) {
    auto entity = client.value().EntityRisk(v, 1);
    ASSERT_TRUE(entity.ok());
    ASSERT_EQ(entity.value().code, ResponseCode::kOk);
    EXPECT_NEAR(entity.value().result.GetDouble("risk", -1.0), per_tuple[v],
                1e-9);
  }

  server.Shutdown();
  EXPECT_TRUE(server.finished());
}

TEST(ServiceIntegrationTest, SaturatedQueueShedsWithBusy) {
  const TestNetwork net = MakeNetwork(40, 12);
  ServerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.max_batch = 1;
  config.dehin = MakeDehinConfig();
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker with a long sleep, then fill the one queue
  // slot with another; the third request must be shed immediately with
  // BUSY — never blocked.
  auto holder = Client::Connect("127.0.0.1", server.port());
  auto filler = Client::Connect("127.0.0.1", server.port());
  auto prober = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(holder.ok() && filler.ok() && prober.ok());

  std::thread hold([&] {
    auto r = holder.value().Sleep(600);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, ResponseCode::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread fill([&] {
    auto r = filler.value().Sleep(600);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, ResponseCode::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto probe_start = std::chrono::steady_clock::now();
  auto probe = prober.value().AttackOne(0, 1);
  const auto probe_elapsed = std::chrono::steady_clock::now() - probe_start;
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe.value().code, ResponseCode::kBusy);
  // Shedding is immediate: the reply must come back long before the
  // sleeps holding the worker and the queue slot resolve.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                probe_elapsed)
                .count(),
            500);

  // Admin verbs bypass the admission queue entirely: stats answers OK on
  // the reader thread even while the worker and queue are both occupied.
  const auto stats_start = std::chrono::steady_clock::now();
  auto stats = prober.value().Stats();
  const auto stats_elapsed = std::chrono::steady_clock::now() - stats_start;
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().code, ResponseCode::kOk);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                stats_elapsed)
                .count(),
            500);

  hold.join();
  fill.join();
  server.Shutdown();
}

TEST(ServiceIntegrationTest, QueuedDeadlineExpiresWithoutCrashing) {
  const TestNetwork net = MakeNetwork(40, 13);
  ServerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  config.dehin = MakeDehinConfig();
  const std::string metrics_path =
      testing::TempDir() + "/hinpriv_service_metrics.json";
  config.metrics_json_path = metrics_path;
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  auto holder = Client::Connect("127.0.0.1", server.port());
  auto victim = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(holder.ok() && victim.ok());

  // Hold the only worker for 400ms, then queue an attack with a 1ms
  // deadline: by the time a worker picks it up the deadline (measured
  // from admission) has long passed, so it must come back
  // DEADLINE_EXCEEDED without running the attack or crashing.
  std::thread hold([&] {
    auto r = holder.value().Sleep(400);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, ResponseCode::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto late = victim.value().AttackOne(0, 1, /*deadline_ms=*/1.0);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value().code, ResponseCode::kDeadlineExceeded);
  hold.join();

  // The server is still healthy after the deadline miss.
  auto ok_again = victim.value().AttackOne(0, 1);
  ASSERT_TRUE(ok_again.ok());
  EXPECT_EQ(ok_again.value().code, ResponseCode::kOk);

  // Graceful shutdown flushes a final hinpriv-metrics-v1 snapshot with
  // live service/* counters.
  server.Shutdown();
  ASSERT_TRUE(server.finished());
  const std::string snapshot_text = ReadWholeFile(metrics_path);
  ASSERT_FALSE(snapshot_text.empty());
  auto snapshot = JsonValue::Parse(snapshot_text);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value().GetString("schema"), "hinpriv-metrics-v1");
  const JsonValue* counters = snapshot.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->GetInt("service/requests_received", 0), 0);
  EXPECT_GT(counters->GetInt("service/responses_ok", 0), 0);
  EXPECT_GT(counters->GetInt("service/deadline_exceeded", 0), 0);
}

TEST(ServiceIntegrationTest, CancelledTokenStopsDehinWithoutPoisoningCache) {
  const TestNetwork net = MakeNetwork(60, 14);
  core::Dehin dehin(&net.aux, MakeDehinConfig());

  // A token cancelled up front stops the attack dead-on-arrival.
  util::CancelToken cancelled;
  cancelled.Cancel();
  auto stopped = dehin.Deanonymize(net.anonymized, 0, 1, &cancelled);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), util::Status::Code::kCancelled);

  // An already-expired deadline maps to DeadlineExceeded, not Cancelled.
  util::CancelToken expired;
  expired.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(5));
  auto late = dehin.Deanonymize(net.anonymized, 0, 1, &expired);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::Status::Code::kDeadlineExceeded);

  // After aborted calls, an unrestricted run still returns the exact
  // uncancelled answer — aborted work never contaminated the shared cache.
  core::Dehin fresh(&net.aux, MakeDehinConfig());
  for (hin::VertexId v = 0; v < net.anonymized.num_vertices(); ++v) {
    auto with_token = dehin.Deanonymize(net.anonymized, v, 1, nullptr);
    ASSERT_TRUE(with_token.ok());
    EXPECT_EQ(with_token.value(), fresh.Deanonymize(net.anonymized, v, 1))
        << "divergence at vertex " << v;
  }
}

// The server can run on a caller-shared executor: request drain tasks and
// intra-query scan grains ride the same pool, answers stay identical to a
// direct library call, and the pool survives Shutdown for other users.
TEST(ServiceIntegrationTest, SharedExecutorServesParallelScansCorrectly) {
  const TestNetwork net = MakeNetwork(80, 16);
  exec::Executor shared(3);
  ServerConfig config;
  config.executor = &shared;
  config.parallel_scan = true;
  config.dehin = MakeDehinConfig();
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());

  core::Dehin reference(&net.aux, MakeDehinConfig());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().result.GetInt("num_workers", -1), 3);
  EXPECT_TRUE(stats.value().result.GetBool("parallel_scan", false));
  for (hin::VertexId v = 0; v < net.anonymized.num_vertices(); v += 7) {
    auto response = client.value().AttackOne(v, 1);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().code, ResponseCode::kOk);
    const auto expected = reference.Deanonymize(net.anonymized, v, 1);
    EXPECT_EQ(response.value().result.GetInt("num_candidates", -1),
              static_cast<int64_t>(expected.size()))
        << "vertex " << v;
  }
  server.Shutdown();
  EXPECT_TRUE(server.finished());

  // The shared pool is untouched by the server's drain.
  std::atomic<int> ran{0};
  exec::TaskGroup group(&shared);
  group.Run([&] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ServiceIntegrationTest, ShutdownWithIdleConnectionsCompletes) {
  const TestNetwork net = MakeNetwork(30, 15);
  ServerConfig config;
  config.num_workers = 2;
  config.dehin = MakeDehinConfig();
  Server server(&net.anonymized, &net.aux, config);
  ASSERT_TRUE(server.Start().ok());
  // Idle connections must not wedge the drain.
  auto a = Client::Connect("127.0.0.1", server.port());
  auto b = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.ok() && b.ok());
  auto warm = a.value().Stats();
  ASSERT_TRUE(warm.ok());
  server.Shutdown();
  EXPECT_TRUE(server.finished());
}

}  // namespace
}  // namespace hinpriv::service
