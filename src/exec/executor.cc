#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hinpriv::exec {

namespace {

// Worker identity for the calling thread; set for the lifetime of
// WorkerMain. tls_worker is the Executor::Worker*, stored untyped because
// Worker is a private nested type.
thread_local Executor* tls_executor = nullptr;
thread_local void* tls_worker = nullptr;

// splitmix64 finaliser; decorrelates sequential steal-seed draws.
uint64_t MixSeed(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Shared scratch of one ParallelFor invocation. `body` stays a borrowed
// pointer into the caller's frame: it is only dereferenced after a
// successful grain claim, and ParallelFor closes the claim range before
// returning, so no straggler task can touch it once the frame is gone.
struct Executor::PFState {
  const std::function<void(size_t, size_t)>* body = nullptr;
  const util::CancelToken* cancel = nullptr;
  size_t n = 0;
  size_t grain = 1;
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  std::atomic<int> active{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mu
};

Executor::Executor(size_t num_threads) {
  const size_t n = ResolveThreads(num_threads);
  auto& registry = obs::MetricsRegistry::Global();
  tasks_counter_ = registry.GetCounter("exec/tasks");
  steals_counter_ = registry.GetCounter("exec/steals");
  parallel_fors_counter_ = registry.GetCounter("exec/parallel_fors");
  uncaught_counter_ = registry.GetCounter("exec/uncaught_exceptions");
  queue_high_gauge_ = registry.GetGauge("exec/queue_high");
  queue_normal_gauge_ = registry.GetGauge("exec/queue_normal");
  registry.GetGauge("exec/workers")->Set(static_cast<double>(n));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerMain(i); });
  }
}

Executor::~Executor() {
  stop_.store(true, std::memory_order_seq_cst);
  NotifyWork();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Single-threaded from here on. Anything still queued was fire-and-forget
  // work submitted during shutdown; drop it.
  for (auto& worker : workers_) {
    while (void* item = worker->deque.PopBottom()) {
      delete static_cast<Task*>(item);
    }
  }
  for (Task* task : inject_high_) delete task;
  for (Task* task : inject_normal_) delete task;
}

Executor& Executor::Global() {
  static Executor executor(0);
  return executor;
}

Executor* Executor::Current() { return tls_executor; }

void Executor::Submit(std::function<void()> fn, Priority priority) {
  Enqueue(new Task{std::move(fn), obs::CurrentRequestId()}, priority);
}

void Executor::Enqueue(Task* task, Priority priority) {
  if (priority == Priority::kNormal && Current() == this) {
    // Worker-local submission: LIFO on the own deque, stealable by idle
    // siblings from the other end.
    static_cast<Worker*>(tls_worker)->deque.PushBottom(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (priority == Priority::kHigh) {
      inject_high_.push_back(task);
      inject_high_size_.store(inject_high_.size(), std::memory_order_relaxed);
      queue_high_gauge_->Set(static_cast<double>(inject_high_.size()));
    } else {
      inject_normal_.push_back(task);
      inject_normal_size_.store(inject_normal_.size(),
                                std::memory_order_relaxed);
      queue_normal_gauge_->Set(static_cast<double>(inject_normal_.size()));
    }
  }
  NotifyWork();
}

void Executor::NotifyWork() {
  // Producer half of the sleep handshake: bump the epoch first, then read
  // the sleeper count. A sleeper registers itself first, then re-reads the
  // epoch; with seq_cst on both sides they cannot both miss each other.
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (num_sleepers_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lock(idle_mu_);
  idle_cv_.notify_all();
}

void Executor::WorkerMain(size_t index) {
  Worker* self = workers_[index].get();
  tls_executor = this;
  tls_worker = self;
  obs::SetCurrentThreadName("exec/worker-" + std::to_string(index));
  while (true) {
    // Snapshot the epoch before scanning: any enqueue we race with bumps
    // it, which turns the sleep below into an immediate rescan.
    const uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
    if (RunOneTask(self, /*include_high=*/true)) continue;
    if (stop_.load(std::memory_order_seq_cst)) break;
    std::unique_lock<std::mutex> lock(idle_mu_);
    num_sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (wake_epoch_.load(std::memory_order_seq_cst) == epoch &&
        !stop_.load(std::memory_order_seq_cst)) {
      idle_cv_.wait(lock, [&] {
        return wake_epoch_.load(std::memory_order_seq_cst) != epoch ||
               stop_.load(std::memory_order_seq_cst);
      });
    }
    num_sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  tls_executor = nullptr;
  tls_worker = nullptr;
}

bool Executor::RunOneTask(Worker* self, bool include_high) {
  Task* task = nullptr;
  if (include_high && inject_high_size_.load(std::memory_order_relaxed) > 0) {
    task = TryPopInjected(Priority::kHigh);
  }
  if (task == nullptr) {
    task = static_cast<Task*>(self->deque.PopBottom());
  }
  if (task == nullptr &&
      inject_normal_size_.load(std::memory_order_relaxed) > 0) {
    task = TryPopInjected(Priority::kNormal);
  }
  if (task == nullptr) task = TrySteal(self);
  if (task == nullptr) return false;
  RunTask(task);
  return true;
}

Executor::Task* Executor::TryPopInjected(Priority priority) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  std::deque<Task*>& queue =
      priority == Priority::kHigh ? inject_high_ : inject_normal_;
  if (queue.empty()) return nullptr;
  Task* task = queue.front();
  queue.pop_front();
  if (priority == Priority::kHigh) {
    inject_high_size_.store(inject_high_.size(), std::memory_order_relaxed);
    queue_high_gauge_->Set(static_cast<double>(inject_high_.size()));
  } else {
    inject_normal_size_.store(inject_normal_.size(),
                              std::memory_order_relaxed);
    queue_normal_gauge_->Set(static_cast<double>(inject_normal_.size()));
  }
  return task;
}

Executor::Task* Executor::TrySteal(Worker* self) {
  const size_t n = workers_.size();
  if (n <= 1) return nullptr;
  const uint64_t seed = MixSeed(
      steal_seed_.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed));
  const size_t start = static_cast<size_t>(seed % n);
  // Two sweeps: the first may lose benign CAS races against siblings
  // stealing from the same victim.
  for (size_t round = 0; round < 2; ++round) {
    for (size_t i = 0; i < n; ++i) {
      Worker* victim = workers_[(start + i) % n].get();
      if (victim == self) continue;
      if (void* item = victim->deque.Steal()) {
        steals_counter_->Increment();
        return static_cast<Task*>(item);
      }
    }
  }
  return nullptr;
}

void Executor::RunTask(Task* task) {
  obs::ScopedRequestId rid_scope(task->rid);
  HINPRIV_SPAN("exec/task");
  tasks_counter_->Increment();
  try {
    task->fn();
  } catch (...) {
    // Fire-and-forget tasks have no joiner to receive this; TaskGroup and
    // ParallelFor catch before it gets here.
    uncaught_counter_->Increment();
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(
          stderr,
          "exec: uncaught exception in fire-and-forget task (dropped)\n");
    }
  }
  delete task;
}

void Executor::ClaimLoop(const std::shared_ptr<PFState>& state) {
  state->active.fetch_add(1, std::memory_order_seq_cst);
  while (true) {
    if (state->stop.load(std::memory_order_seq_cst)) break;
    // Peek before touching `cancel`: a straggler fork that starts after
    // ParallelFor returned sees the close-CASed `next >= n` here and exits
    // without dereferencing the caller-owned token (or `body`), both of
    // which may be dead by then. Stragglers that registered in `active`
    // before ParallelFor's final wait keep the caller (and the token)
    // alive, so a peek that reads `next < n` guarantees `cancel` is live.
    if (state->next.load(std::memory_order_seq_cst) >= state->n) break;
    if (state->cancel != nullptr && state->cancel->ShouldStop()) {
      state->stop.store(true, std::memory_order_seq_cst);
      break;
    }
    const size_t begin =
        state->next.fetch_add(state->grain, std::memory_order_seq_cst);
    if (begin >= state->n) break;
    const size_t end = std::min(state->n, begin + state->grain);
    try {
      (*state->body)(begin, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      state->stop.store(true, std::memory_order_seq_cst);
      break;
    }
  }
  if (state->active.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->cv.notify_all();
  }
}

ParallelForResult Executor::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& body,
    const ParallelForOptions& options) {
  ParallelForResult result;
  if (n == 0) return result;
  parallel_fors_counter_->Increment();

  auto state = std::make_shared<PFState>();
  state->body = &body;
  state->cancel = options.cancel;
  state->n = n;
  state->grain = options.grain;
  if (state->grain == 0) {
    state->grain = options.grain_policy.Resolve(n, num_workers());
  }

  const size_t chunks = (n + state->grain - 1) / state->grain;
  // The caller always participates inline (so a 1-worker executor, or a
  // nested call from worker context, can never deadlock); fork at most one
  // claim loop per remaining worker, and never more than the chunk count
  // warrants.
  const size_t avail = num_workers() - (Current() == this ? 1 : 0);
  const size_t forks = std::min(avail, chunks - 1);
  for (size_t i = 0; i < forks; ++i) {
    Enqueue(new Task{[this, state] { ClaimLoop(state); },
                     obs::CurrentRequestId()},
            options.priority);
  }
  ClaimLoop(state);

  // Close the claim range: bump `next` to at least n so any straggler fork
  // that starts after this point claims nothing. `claimed` captures the
  // pre-close claim frontier, which is exactly the executed prefix when
  // the loop was cancelled.
  size_t claimed = state->next.load(std::memory_order_seq_cst);
  while (claimed < n && !state->next.compare_exchange_weak(
                            claimed, n, std::memory_order_seq_cst)) {
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->active.load(std::memory_order_seq_cst) == 0;
    });
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
  result.completed = std::min(n, claimed);
  result.stopped =
      state->stop.load(std::memory_order_seq_cst) && result.completed < n;
  return result;
}

TaskGroup::TaskGroup(Executor* executor)
    : executor_(executor != nullptr ? executor : &Executor::Global()) {}

TaskGroup::~TaskGroup() { WaitNoThrow(); }

void TaskGroup::Run(std::function<void()> fn, Priority priority) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  executor_->Submit(
      [this, fn = std::move(fn)] {
        try {
          fn();
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu_);
          if (!error_) error_ = std::current_exception();
        }
        if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
          std::lock_guard<std::mutex> lock(mu_);
          cv_.notify_all();
        }
      },
      priority);
}

void TaskGroup::WaitNoThrow() {
  if (Executor::Current() == executor_) {
    // Called from a worker of the same executor: helping keeps the worker
    // productive and guarantees progress when the group's tasks sit in
    // this worker's own deque. High-priority work is deliberately left to
    // the main loop so a request task can't recurse into another request.
    auto* self = static_cast<Executor::Worker*>(tls_worker);
    while (pending_.load(std::memory_order_seq_cst) != 0) {
      if (executor_->RunOneTask(self, /*include_high=*/false)) continue;
      std::unique_lock<std::mutex> lock(mu_);
      // Timed wait: the remaining tasks may be running on other workers,
      // and their completion notify could race our scan-then-wait.
      cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return pending_.load(std::memory_order_seq_cst) == 0;
      });
    }
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [&] { return pending_.load(std::memory_order_seq_cst) == 0; });
  }
}

void TaskGroup::Wait() {
  WaitNoThrow();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hinpriv::exec
