#include "hin/binary_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_link_types(), b.num_link_types());
  ASSERT_EQ(a.schema().num_entity_types(), b.schema().num_entity_types());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.entity_type(v), b.entity_type(v));
    const size_t num_attrs = a.num_attributes(a.entity_type(v));
    for (AttributeId attr = 0; attr < num_attrs; ++attr) {
      ASSERT_EQ(a.attribute(v, attr), b.attribute(v, attr));
    }
    for (LinkTypeId lt = 0; lt < a.num_link_types(); ++lt) {
      const auto ea = a.OutEdges(lt, v);
      const auto eb = b.OutEdges(lt, v);
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]);
    }
  }
}

TEST(BinaryIoTest, RoundTripSyntheticNetwork) {
  synth::TqqConfig config;
  config.num_users = 800;
  util::Rng rng(1);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());

  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(graph.value(), stream).ok());
  auto loaded = LoadGraphBinary(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(graph.value(), loaded.value());
}

TEST(BinaryIoTest, RoundTripMultiEntityNetwork) {
  synth::TqqFullConfig config;
  config.num_users = 80;
  util::Rng rng(2);
  auto graph = synth::GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());

  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(graph.value(), stream).ok());
  auto loaded = LoadGraphBinary(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(graph.value(), loaded.value());
  EXPECT_EQ(loaded.value().schema().FindEntityType(kTweetType),
            graph.value().schema().FindEntityType(kTweetType));
}

TEST(BinaryIoTest, FileRoundTrip) {
  synth::TqqConfig config;
  config.num_users = 200;
  util::Rng rng(3);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string path = testing::TempDir() + "/hinpriv_binary_test.bin";
  ASSERT_TRUE(SaveGraphBinaryToFile(graph.value(), path).ok());
  auto loaded = LoadGraphBinaryFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ExpectGraphsEqual(graph.value(), loaded.value());
}

TEST(BinaryIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(TqqTargetSchema());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(graph.value(), stream).ok());
  auto loaded = LoadGraphBinary(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_vertices(), 0u);
}

TEST(BinaryIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadGraphBinaryFromFile("/no/such/file.bin").status().code(),
            util::Status::Code::kIoError);
}

TEST(BinaryIoTest, BadMagicRejected) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "NOTAGRAPHFILE AT ALL";
  EXPECT_EQ(LoadGraphBinary(stream).status().code(),
            util::Status::Code::kCorruption);
}

TEST(BinaryIoTest, TruncationAlwaysFailsCleanly) {
  synth::TqqConfig config;
  config.num_users = 100;
  util::Rng rng(4);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(graph.value(), stream).ok());
  const std::string bytes = stream.str();
  for (size_t keep : {0ul, 4ul, 11ul, 64ul, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::stringstream truncated(
        std::ios::in | std::ios::out | std::ios::binary);
    truncated << bytes.substr(0, keep);
    EXPECT_FALSE(LoadGraphBinary(truncated).ok()) << "keep=" << keep;
  }
}

// Corruption fuzz: flipping any single byte must either fail with a clean
// Status or yield *some* valid graph — never crash or hang.
TEST(BinaryIoTest, RandomByteCorruptionIsSafe) {
  synth::TqqConfig config;
  config.num_users = 60;
  util::Rng rng(5);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(graph.value(), stream).ok());
  const std::string bytes = stream.str();

  util::Rng fuzz(6);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = bytes;
    const size_t pos = fuzz.UniformU64(corrupted.size());
    corrupted[pos] = static_cast<char>(fuzz.UniformU64(256));
    std::stringstream input(std::ios::in | std::ios::out | std::ios::binary);
    input << corrupted;
    auto loaded = LoadGraphBinary(input);
    if (loaded.ok()) {
      // A benign flip (e.g., a strength byte). The graph must still be
      // structurally sound.
      EXPECT_LE(loaded.value().num_vertices(), 1000u);
    }
  }
}

}  // namespace
}  // namespace hinpriv::hin
