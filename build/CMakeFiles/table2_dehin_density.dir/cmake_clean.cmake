file(REMOVE_RECURSE
  "CMakeFiles/table2_dehin_density.dir/bench/table2_dehin_density.cc.o"
  "CMakeFiles/table2_dehin_density.dir/bench/table2_dehin_density.cc.o.d"
  "bench/table2_dehin_density"
  "bench/table2_dehin_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dehin_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
