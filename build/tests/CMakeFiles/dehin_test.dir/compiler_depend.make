# Empty compiler generated dependencies file for dehin_test.
# This may be replaced when dependencies are built.
