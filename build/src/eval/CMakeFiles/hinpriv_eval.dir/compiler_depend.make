# Empty compiler generated dependencies file for hinpriv_eval.
# This may be replaced when dependencies are built.
