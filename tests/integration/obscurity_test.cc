// Section 6.4 "Security by Obscurity?": an adversary who always runs the
// *reconfigured* DeHIN (majority-strength stripping + saturation fallback)
// gets the same results on the plain KDD anonymization as on Complete
// Graph Anonymity, because stripping affects exactly the same real edges
// (both majorities are strength 1 when CGA's fake weight is 1). Ignorance
// of the anonymization scheme does not protect the data.

#include <gtest/gtest.h>

#include "anon/complete_graph_anonymizer.h"
#include "anon/kdd_anonymizer.h"
#include "core/dehin.h"
#include "eval/metrics.h"
#include "synth/planted_target.h"
#include "util/random.h"

namespace hinpriv {
namespace {

TEST(ObscurityTest, StrippedKddaEqualsStrippedCga) {
  // Build ONE dataset, publish it twice (KDDA and CGA with the same
  // permutation rng state cloned), strip both, and compare the attack
  // outcome for every target user.
  synth::TqqConfig config;
  config.num_users = 15000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 250;
  spec.density = 0.01;
  util::Rng rng(42);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());

  // Publish through both anonymizers with identical permutation draws.
  util::Rng kdda_rng(7);
  util::Rng cga_rng(7);
  anon::KddAnonymizer kdda;
  anon::CompleteGraphAnonymizer cga(/*fake_strength=*/1);
  auto published_kdda = kdda.Anonymize(dataset.value().target, &kdda_rng);
  auto published_cga = cga.Anonymize(dataset.value().target, &cga_rng);
  ASSERT_TRUE(published_kdda.ok());
  ASSERT_TRUE(published_cga.ok());
  // Same rng stream => same permutation => directly comparable vertex ids.
  ASSERT_EQ(published_kdda.value().to_original,
            published_cga.value().to_original);

  auto stripped_kdda =
      core::StripMajorityStrengthLinks(published_kdda.value().graph);
  auto stripped_cga =
      core::StripMajorityStrengthLinks(published_cga.value().graph);
  ASSERT_TRUE(stripped_kdda.ok());
  ASSERT_TRUE(stripped_cga.ok());

  // The stripped graphs are structurally identical: CGA's fakes all carry
  // the majority strength 1, and both strip the same real strength-1 edges.
  ASSERT_EQ(stripped_kdda.value().num_edges(),
            stripped_cga.value().num_edges());
  for (hin::LinkTypeId lt = 0; lt < stripped_kdda.value().num_link_types();
       ++lt) {
    for (hin::VertexId v = 0; v < stripped_kdda.value().num_vertices(); ++v) {
      const auto a = stripped_kdda.value().OutEdges(lt, v);
      const auto b = stripped_cga.value().OutEdges(lt, v);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
    }
  }

  // Consequently the reconfigured attack produces identical candidate sets.
  core::DehinConfig attack;
  attack.match = core::DefaultTqqMatchOptions();
  attack.saturation_fraction = 0.5;
  core::Dehin dehin(&dataset.value().auxiliary, attack);
  for (hin::VertexId vt = 0; vt < 50; ++vt) {
    ASSERT_EQ(dehin.Deanonymize(stripped_kdda.value(), vt, 1),
              dehin.Deanonymize(stripped_cga.value(), vt, 1));
  }
}

TEST(ObscurityTest, ReconfiguredAttackStillSucceedsOnKdda) {
  // The blanket reconfigured attack pays a modest precision cost on KDDA
  // but remains a serious threat — the paper's core "no security by
  // obscurity" message.
  synth::TqqConfig config;
  config.num_users = 20000;
  synth::PlantedTargetSpec spec;
  spec.target_size = 1000;
  spec.density = 0.01;
  util::Rng rng(11);
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  ASSERT_TRUE(dataset.ok());

  util::Rng anon_rng(3);
  anon::KddAnonymizer kdda;
  auto published = kdda.Anonymize(dataset.value().target, &anon_rng);
  ASSERT_TRUE(published.ok());
  std::vector<hin::VertexId> ground_truth(
      published.value().graph.num_vertices());
  for (hin::VertexId v = 0; v < ground_truth.size(); ++v) {
    ground_truth[v] =
        dataset.value().target_to_aux[published.value().to_original[v]];
  }

  core::DehinConfig attack;
  attack.match = core::DefaultTqqMatchOptions();
  attack.saturation_fraction = 0.5;
  core::Dehin dehin(&dataset.value().auxiliary, attack);

  auto stripped = core::StripMajorityStrengthLinks(published.value().graph);
  ASSERT_TRUE(stripped.ok());
  const auto informed = eval::EvaluateAttack(
      dehin, published.value().graph, ground_truth, 1);
  const auto blanket =
      eval::EvaluateAttack(dehin, stripped.value(), ground_truth, 1);
  EXPECT_LE(blanket.precision, informed.precision);
  EXPECT_GT(blanket.precision, 0.5);  // still a great threat
}

}  // namespace
}  // namespace hinpriv
