#ifndef HINPRIV_CORE_DEHIN_H_
#define HINPRIV_CORE_DEHIN_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/candidate_index.h"
#include "core/matchers.h"
#include "hin/graph.h"
#include "util/status.h"

namespace hinpriv::core {

// Configuration of the DeHIN attack (Algorithms 1 and 2).
struct DehinConfig {
  MatchOptions match;
  // Max distance n of utilized neighbors. 0 = profile attributes only.
  int max_distance = 1;
  // Accelerate candidate generation with a CandidateIndex over the
  // auxiliary profiles. Semantically identical to the paper's literal
  // "foreach v in V" scan (differential-tested); turn off to measure the
  // scan cost.
  bool use_candidate_index = true;
  // A link type (and direction) whose target-side neighborhood covers more
  // than this fraction of the target graph is considered saturated by fake
  // links and skipped: a rational adversary knows real social networks
  // have density < 0.5 (Section 6.2), so a near-complete neighborhood
  // carries no matching signal. This is what pins the attack at its
  // distance-0 level against VW-CGA instead of producing empty candidate
  // sets (Figure 8). The default of 1.0 disables the heuristic; the
  // reconfigured attack (Section 6.2) sets it to 0.5 alongside
  // StripMajorityStrengthLinks.
  double saturation_fraction = 1.0;
  // Optional override of entity_attribute_match ("this function can be
  // configured by users"); when set it replaces the MatchOptions-driven
  // comparison everywhere, and the candidate index is bypassed.
  std::function<bool(const hin::Graph& target, hin::VertexId vt,
                     const hin::Graph& aux, hin::VertexId va)>
      entity_match_override;
  // Optional override of link_attribute_match (target strength, auxiliary
  // strength) -> bool.
  std::function<bool(hin::Strength, hin::Strength)> link_match_override;
};

// The DeHIN de-anonymization attack (Section 5): given the non-anonymized
// auxiliary graph G, de-anonymize entities of an anonymized target graph
// G' by profile matching plus recursive typed-neighborhood matching
// decided with Hopcroft-Karp maximum bipartite matching.
//
// Thread-compatible: one Dehin may be shared across threads for concurrent
// Deanonymize calls (all state per call is local).
class Dehin {
 public:
  // `auxiliary` must outlive the Dehin.
  Dehin(const hin::Graph* auxiliary, DehinConfig config);

  // Algorithm 1, DeHIN(G, G', T_G*, v', n): returns the candidate set
  // C of auxiliary vertices matching target vertex `vt`, sorted
  // ascending. De-anonymization succeeds when the set is exactly the
  // target's true counterpart.
  std::vector<hin::VertexId> Deanonymize(const hin::Graph& target,
                                         hin::VertexId vt) const {
    return Deanonymize(target, vt, config_.max_distance);
  }

  // Same, with an explicit max distance n overriding the configured one —
  // lets one Dehin (and its candidate index) serve a whole distance sweep.
  std::vector<hin::VertexId> Deanonymize(const hin::Graph& target,
                                         hin::VertexId vt,
                                         int max_distance) const;

  const DehinConfig& config() const { return config_; }
  const hin::Graph& auxiliary() const { return *aux_; }

 private:
  // Algorithm 2, link_match(n, v', v, ...): recursive typed-neighborhood
  // comparison with memoization on (target vertex, aux vertex, depth).
  bool LinkMatch(int depth, const hin::Graph& target, hin::VertexId vt,
                 hin::VertexId va,
                 std::unordered_map<uint64_t, bool>* memo) const;

  bool EntityMatch(const hin::Graph& target, hin::VertexId vt,
                   hin::VertexId va) const;
  bool StrengthMatch(hin::Strength target_strength,
                     hin::Strength aux_strength) const;

  const hin::Graph* aux_;
  DehinConfig config_;
  std::unique_ptr<CandidateIndex> index_;
};

// Section 6.2 reconfiguration: returns a copy of `graph` with every link
// whose strength equals its link type's majority (most frequent) strength
// removed. Against Complete Graph Anonymity this strips the constant-weight
// fake links (social networks have density < 0.5, so fakes are the
// majority) at the cost of also dropping real links that share the value.
util::Result<hin::Graph> StripMajorityStrengthLinks(const hin::Graph& graph);

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_DEHIN_H_
