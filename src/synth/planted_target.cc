#include "synth/planted_target.h"

#include <algorithm>
#include <unordered_set>

#include "hin/density.h"
#include "hin/graph_builder.h"
#include "hin/subgraph.h"
#include "synth/growth.h"
#include "synth/tqq_generator.h"

namespace hinpriv::synth {

namespace {

using hin::Graph;
using hin::LinkTypeId;
using hin::Strength;
using hin::VertexId;

// Packs (link type, src index, dst index) into one key for duplicate
// detection among planted edges; indices are positions within the target
// subset (< 2^24 users, < 2^8 link types — far beyond experiment scale).
uint64_t PairKey(LinkTypeId lt, uint32_t src_idx, uint32_t dst_idx) {
  return (static_cast<uint64_t>(lt) << 48) |
         (static_cast<uint64_t>(src_idx) << 24) | dst_idx;
}

}  // namespace

util::Result<PlantedDataset> BuildPlantedDataset(const TqqConfig& config,
                                                 const PlantedTargetSpec& spec,
                                                 const GrowthConfig& growth,
                                                 util::Rng* rng) {
  if (spec.target_size < 2 || spec.target_size > config.num_users) {
    return util::Status::InvalidArgument(
        "target size must be in [2, num_users]");
  }
  if (spec.density < 0.0 || spec.density > 1.0) {
    return util::Status::InvalidArgument("density must be in [0, 1]");
  }
  auto base = GenerateTqqNetwork(config, rng);
  if (!base.ok()) return base.status();

  // Pick the target users and index them.
  const auto picks =
      rng->SampleWithoutReplacement(config.num_users, spec.target_size);
  std::vector<VertexId> target_vertices(picks.begin(), picks.end());
  std::vector<uint32_t> to_idx(config.num_users, UINT32_MAX);
  for (uint32_t i = 0; i < target_vertices.size(); ++i) {
    to_idx[target_vertices[i]] = i;
  }

  // Existing background edges among the target users, per link type.
  const size_t num_links = base.value().num_link_types();
  std::vector<size_t> existing(num_links, 0);
  std::unordered_set<uint64_t> taken;
  for (uint32_t i = 0; i < target_vertices.size(); ++i) {
    const VertexId v = target_vertices[i];
    for (LinkTypeId lt = 0; lt < num_links; ++lt) {
      for (const hin::Edge& e : base.value().OutEdges(lt, v)) {
        const uint32_t j = to_idx[e.neighbor];
        if (j == UINT32_MAX) continue;
        ++existing[lt];
        taken.insert(PairKey(lt, i, j));
      }
    }
  }

  // Edge budget to reach the requested density (Equation 4 inverted),
  // distributed across link types by the configured shares, minus what the
  // background already provides.
  const size_t total_needed = hin::EdgesForDensity(
      spec.density, spec.target_size, num_links,
      base.value().schema().CountSelfLinkTypes());
  hin::GraphBuilder builder(base.value().schema());
  HINPRIV_RETURN_IF_ERROR(
      hin::CopyVerticesWithAttributes(base.value(), &builder));
  HINPRIV_RETURN_IF_ERROR(hin::CopyEdges(base.value(), &builder));

  // Planted destinations follow the same global popularity order as the
  // background network (low vertex id = hub): edges inside the target
  // sample concentrate on the sample's own most-popular members.
  std::vector<uint32_t> by_popularity(spec.target_size);
  for (uint32_t i = 0; i < spec.target_size; ++i) by_popularity[i] = i;
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](uint32_t a, uint32_t b) {
              return target_vertices[a] < target_vertices[b];
            });
  const util::ZipfSampler popularity(spec.target_size,
                                     config.popularity_zipf);

  // Per-link-type budgets still to plant.
  const size_t max_pairs = spec.target_size * (spec.target_size - 1);
  std::vector<size_t> remaining(num_links, 0);
  size_t total_remaining = 0;
  for (LinkTypeId lt = 0; lt < num_links; ++lt) {
    size_t want = static_cast<size_t>(static_cast<double>(total_needed) *
                                      spec.link_type_shares[lt]);
    want = std::min(want, max_pairs);
    remaining[lt] = want > existing[lt] ? want - existing[lt] : 0;
    total_remaining += remaining[lt];
  }

  // Burst activation: users become active one by one in a random order,
  // each emitting ~edges_per_active_user planted edges split across the
  // link-type budgets, destinations popularity-skewed. If the budget
  // outlasts one full activation round (high density), further rounds give
  // everyone additional bursts.
  std::vector<uint32_t> activity_order(spec.target_size);
  for (uint32_t i = 0; i < spec.target_size; ++i) activity_order[i] = i;
  rng->Shuffle(&activity_order);
  const int64_t burst_mean =
      std::max<int64_t>(1, static_cast<int64_t>(spec.edges_per_active_user));
  size_t next_active = 0;
  size_t stagnant = 0;
  const size_t stagnant_limit = 64 * spec.target_size;
  while (total_remaining > 0 && stagnant < stagnant_limit) {
    const uint32_t i = activity_order[next_active];
    next_active = (next_active + 1) % spec.target_size;
    // Power-law burst sizes (alpha 1.2 over [1, 10*mean] has mean ~= the
    // configured value): most active users contribute a handful of edges —
    // and may stay ambiguous — while a few heavy users dominate the budget,
    // matching the skewed in-sample degree distributions of real networks.
    const int64_t burst = static_cast<int64_t>(
        rng->PowerLaw(1, static_cast<uint64_t>(10 * burst_mean), 1.2));
    for (int64_t b = 0; b < burst && total_remaining > 0; ++b) {
      // Link type weighted by remaining budget.
      uint64_t pick = rng->UniformU64(total_remaining);
      LinkTypeId lt = 0;
      while (pick >= remaining[lt]) {
        pick -= remaining[lt];
        ++lt;
      }
      const uint32_t j = by_popularity[popularity.Sample(rng)];
      if (i == j || !taken.insert(PairKey(lt, i, j)).second) {
        ++stagnant;
        continue;
      }
      stagnant = 0;
      const bool weighted =
          base.value().schema().link_type(lt).growable_strength;
      const Strength strength =
          weighted ? static_cast<Strength>(rng->PowerLaw(
                         1, config.strength_max, config.strength_alpha))
                   : 1;
      HINPRIV_RETURN_IF_ERROR(builder.AddEdge(target_vertices[i],
                                              target_vertices[j], lt,
                                              strength));
      --remaining[lt];
      --total_remaining;
    }
  }

  auto planted_base = std::move(builder).Build();
  if (!planted_base.ok()) return planted_base.status();

  auto target = hin::InducedSubgraph(planted_base.value(), target_vertices);
  if (!target.ok()) return target.status();

  auto auxiliary = GrowNetwork(planted_base.value(), growth, config, rng);
  if (!auxiliary.ok()) return auxiliary.status();

  const double achieved_density = hin::Density(target.value().graph);
  return PlantedDataset{std::move(auxiliary).value(),
                        std::move(target.value().graph),
                        std::move(target_vertices), achieved_density};
}

}  // namespace hinpriv::synth
