file(REMOVE_RECURSE
  "CMakeFiles/homogenize_test.dir/hin/homogenize_test.cc.o"
  "CMakeFiles/homogenize_test.dir/hin/homogenize_test.cc.o.d"
  "homogenize_test"
  "homogenize_test.pdb"
  "homogenize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogenize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
