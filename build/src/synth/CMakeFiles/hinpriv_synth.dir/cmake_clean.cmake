file(REMOVE_RECURSE
  "CMakeFiles/hinpriv_synth.dir/growth.cc.o"
  "CMakeFiles/hinpriv_synth.dir/growth.cc.o.d"
  "CMakeFiles/hinpriv_synth.dir/planted_target.cc.o"
  "CMakeFiles/hinpriv_synth.dir/planted_target.cc.o.d"
  "CMakeFiles/hinpriv_synth.dir/profile.cc.o"
  "CMakeFiles/hinpriv_synth.dir/profile.cc.o.d"
  "CMakeFiles/hinpriv_synth.dir/tqq_generator.cc.o"
  "CMakeFiles/hinpriv_synth.dir/tqq_generator.cc.o.d"
  "libhinpriv_synth.a"
  "libhinpriv_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinpriv_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
