#include "core/matchers.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"

namespace hinpriv::core {
namespace {

// Two-graph fixture: a "target" user and several "auxiliary" users with
// controlled profiles.
class MatchersTest : public testing::Test {
 protected:
  static hin::Graph MakeUsers(
      const std::vector<std::array<hin::AttrValue, 4>>& profiles) {
    hin::GraphBuilder builder(hin::TqqTargetSchema());
    for (const auto& p : profiles) {
      const hin::VertexId v = builder.AddVertex(0);
      EXPECT_TRUE(builder.SetAttribute(v, hin::kGenderAttr, p[0]).ok());
      EXPECT_TRUE(builder.SetAttribute(v, hin::kYobAttr, p[1]).ok());
      EXPECT_TRUE(builder.SetAttribute(v, hin::kTweetCountAttr, p[2]).ok());
      EXPECT_TRUE(builder.SetAttribute(v, hin::kTagCountAttr, p[3]).ok());
    }
    auto graph = std::move(builder).Build();
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  }
};

TEST_F(MatchersTest, DefaultOptionsMatchPaperConfiguration) {
  const MatchOptions options = DefaultTqqMatchOptions();
  EXPECT_EQ(options.exact_attributes,
            (std::vector<hin::AttributeId>{hin::kGenderAttr, hin::kYobAttr,
                                           hin::kTagCountAttr}));
  EXPECT_EQ(options.growable_attributes,
            (std::vector<hin::AttributeId>{hin::kTweetCountAttr}));
  EXPECT_EQ(options.link_types.size(), hin::kNumTqqLinkTypes);
  EXPECT_TRUE(options.growth_aware);
  EXPECT_FALSE(options.use_in_edges);
}

TEST_F(MatchersTest, ExactAttributesMustBeEqual) {
  // target: male 1980, 100 tweets, 3 tags.
  const hin::Graph target = MakeUsers({{1, 1980, 100, 3}});
  const hin::Graph aux = MakeUsers({
      {1, 1980, 100, 3},  // identical
      {0, 1980, 100, 3},  // wrong gender
      {1, 1981, 100, 3},  // wrong yob
      {1, 1980, 100, 4},  // wrong tag count
  });
  const MatchOptions options = DefaultTqqMatchOptions();
  EXPECT_TRUE(EntityAttributesMatch(target, 0, aux, 0, options));
  EXPECT_FALSE(EntityAttributesMatch(target, 0, aux, 1, options));
  EXPECT_FALSE(EntityAttributesMatch(target, 0, aux, 2, options));
  EXPECT_FALSE(EntityAttributesMatch(target, 0, aux, 3, options));
}

TEST_F(MatchersTest, GrowableAttributeUsesGreaterOrEqual) {
  const hin::Graph target = MakeUsers({{1, 1980, 100, 3}});
  const hin::Graph aux = MakeUsers({
      {1, 1980, 150, 3},  // grew: still a candidate
      {1, 1980, 100, 3},  // equal: candidate
      {1, 1980, 99, 3},   // shrank: impossible under growth, rejected
  });
  const MatchOptions options = DefaultTqqMatchOptions();
  EXPECT_TRUE(EntityAttributesMatch(target, 0, aux, 0, options));
  EXPECT_TRUE(EntityAttributesMatch(target, 0, aux, 1, options));
  EXPECT_FALSE(EntityAttributesMatch(target, 0, aux, 2, options));
}

TEST_F(MatchersTest, TimeSynchronizedModeRequiresEquality) {
  const hin::Graph target = MakeUsers({{1, 1980, 100, 3}});
  const hin::Graph aux = MakeUsers({{1, 1980, 150, 3}, {1, 1980, 100, 3}});
  MatchOptions options = DefaultTqqMatchOptions();
  options.growth_aware = false;
  EXPECT_FALSE(EntityAttributesMatch(target, 0, aux, 0, options));
  EXPECT_TRUE(EntityAttributesMatch(target, 0, aux, 1, options));
}

TEST_F(MatchersTest, EmptyAttributeListsMatchEverything) {
  const hin::Graph target = MakeUsers({{1, 1980, 100, 3}});
  const hin::Graph aux = MakeUsers({{0, 1800, 0, 0}});
  MatchOptions options;
  EXPECT_TRUE(EntityAttributesMatch(target, 0, aux, 0, options));
}

TEST_F(MatchersTest, LinkStrengthMatchSemantics) {
  // Growth-aware: auxiliary strength must dominate.
  EXPECT_TRUE(LinkStrengthMatch(5, 5, /*growth_aware=*/true));
  EXPECT_TRUE(LinkStrengthMatch(5, 9, true));
  EXPECT_FALSE(LinkStrengthMatch(5, 4, true));
  // Time-synchronized: strict equality.
  EXPECT_TRUE(LinkStrengthMatch(5, 5, false));
  EXPECT_FALSE(LinkStrengthMatch(5, 9, false));
  EXPECT_FALSE(LinkStrengthMatch(5, 4, false));
}

TEST_F(MatchersTest, AllLinkTypesListsWholeSchema) {
  const hin::Graph graph = MakeUsers({{0, 0, 0, 0}});
  const auto types = AllLinkTypes(graph);
  ASSERT_EQ(types.size(), hin::kNumTqqLinkTypes);
  for (size_t i = 0; i < types.size(); ++i) {
    EXPECT_EQ(types[i], static_cast<hin::LinkTypeId>(i));
  }
}

}  // namespace
}  // namespace hinpriv::core
