
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_privacy_risk.cc" "CMakeFiles/table1_privacy_risk.dir/bench/table1_privacy_risk.cc.o" "gcc" "CMakeFiles/table1_privacy_risk.dir/bench/table1_privacy_risk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/hinpriv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hinpriv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/hinpriv_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hinpriv_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/hin/CMakeFiles/hinpriv_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hinpriv_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hinpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
