file(REMOVE_RECURSE
  "libhinpriv_util.a"
)
