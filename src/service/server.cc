#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "core/matchers.h"
#include "core/privacy_risk.h"
#include "core/signature.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "service/json.h"

namespace hinpriv::service {

namespace {

// Candidate sets can be nearly the whole auxiliary graph for weakly
// identified targets; cap the encoded list so one response cannot approach
// kMaxFrameBytes. The count and a `truncated` flag are always exact.
constexpr size_t kMaxEncodedCandidates = 1024;

std::chrono::steady_clock::duration MillisToDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(to - from)
             .count()));
}

// Keep inline trace dumps comfortably inside the frame cap: the dump is
// wrapped in a response envelope and JSON-escaped, which roughly doubles
// worst-case size.
constexpr size_t kMaxInlineTraceBytes = kMaxFrameBytes / 2 - 4096;

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "ok";
}

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(const hin::Graph* target, const hin::Graph* auxiliary,
               ServerConfig config)
    : target_(target),
      aux_(auxiliary),
      config_(std::move(config)),
      dehin_(auxiliary, config_.dehin),
      queue_(config_.queue_capacity),
      window_(nullptr,
              obs::WindowedAggregatorOptions{
                  std::chrono::milliseconds(
                      std::max(1, config_.introspection_tick_ms)),
                  std::max<size_t>(2, config_.introspection_ring),
                  {}}),
      slow_log_(config_.slow_log_capacity) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  requests_received_ = registry.GetCounter("service/requests_received");
  responses_ok_ = registry.GetCounter("service/responses_ok");
  shed_ = registry.GetCounter("service/shed");
  deadline_exceeded_ = registry.GetCounter("service/deadline_exceeded");
  cancelled_ = registry.GetCounter("service/cancelled");
  invalid_ = registry.GetCounter("service/invalid_requests");
  internal_errors_ = registry.GetCounter("service/internal_errors");
  connections_accepted_ = registry.GetCounter("service/connections_accepted");
  batches_ = registry.GetCounter("service/batches");
  write_errors_ = registry.GetCounter("service/write_errors");
  queue_depth_gauge_ = registry.GetGauge("service/queue_depth");
  latency_us_ = registry.GetHistogram("service/request_latency_us");
  batch_size_ = registry.GetHistogram("service/batch_size");
  admin_requests_ = registry.GetCounter("service/admin_requests");
  health_gauge_ = registry.GetGauge("service/health_state");
  health_transitions_ = registry.GetCounter("service/health_transitions");
  for (size_t d = 0; d < kDistanceSlots; ++d) {
    const std::string suffix = d <= kMaxDistanceBucket
                                   ? "d" + std::to_string(d)
                                   : std::string("overflow");
    attack_by_distance_[d] =
        registry.GetCounter("service/attack_one/" + suffix);
    deanon_by_distance_[d] =
        registry.GetCounter("service/deanonymized/" + suffix);
  }
}

Server::~Server() { Shutdown(); }

util::Status Server::Start() {
  if (started_.exchange(true)) {
    return util::Status::InvalidArgument("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("unparseable IPv4 host '" +
                                         config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const util::Status status = util::Status::IoError(
        "bind " + config_.host + ":" + std::to_string(config_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const util::Status status =
        util::Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const util::Status status = util::Status::IoError(
        std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  // Build the expensive per-target Dehin state (prefilter tables, shared
  // match cache shell) before the first request pays for it.
  if (target_->num_vertices() > 0) {
    HINPRIV_SPAN("service/warm_target_state");
    (void)dehin_.Deanonymize(*target_, 0, 0);
  }

  executor_ = config_.executor;
  if (executor_ == nullptr) {
    owned_executor_ = std::make_unique<exec::Executor>(
        exec::ResolveThreads(config_.num_workers));
    executor_ = owned_executor_.get();
  }
  started_at_ = std::chrono::steady_clock::now();
  if (config_.introspection_tick_ms > 0) {
    // Seed the ring before serving so the first stats/health query already
    // has a baseline sample to difference against.
    window_.SampleNow();
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void Server::WatchdogLoop() {
  obs::SetCurrentThreadName("service/watchdog");
  const auto tick =
      std::chrono::milliseconds(std::max(1, config_.introspection_tick_ms));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      if (watchdog_cv_.wait_for(lock, tick,
                                [this] { return watchdog_stop_; })) {
        return;
      }
    }
    window_.SampleNow();
    EvaluateHealth();
  }
}

void Server::EvaluateHealth() {
  HealthState next = HealthState::kOk;
  const size_t depth = queue_.size();
  const size_t capacity = queue_.capacity();
  const auto shed = window_.CounterRate("service/shed", config_.shed_window_sec);
  const auto miss =
      window_.CounterRate("service/deadline_exceeded", config_.miss_window_sec);
  const auto received = window_.CounterRate("service/requests_received",
                                            config_.miss_window_sec);
  if (shed.delta > 0 || (capacity > 0 && depth >= capacity)) {
    next = HealthState::kShedding;
  } else if ((capacity > 0 &&
              static_cast<double>(depth) >=
                  config_.degraded_queue_fraction *
                      static_cast<double>(capacity)) ||
             (received.delta > 0 &&
              static_cast<double>(miss.delta) >
                  config_.degraded_miss_rate *
                      static_cast<double>(received.delta))) {
    next = HealthState::kDegraded;
  }
  const int prev = health_.exchange(static_cast<int>(next));
  health_gauge_->Set(static_cast<double>(static_cast<int>(next)));
  if (prev != static_cast<int>(next)) health_transitions_->Increment();
}

HealthState Server::health() const {
  return static_cast<HealthState>(health_.load(std::memory_order_relaxed));
}

Server::LiveStats Server::Live(double window_sec) const {
  LiveStats live;
  const auto received =
      window_.CounterRate("service/requests_received", window_sec);
  live.window_sec = received.seconds;
  live.qps = received.rate;
  live.p99_us =
      window_.HistogramWindow("service/request_latency_us", window_sec)
          .Percentile(99.0);
  live.queue_depth = queue_.size();
  live.requests_received = window_.CounterValue("service/requests_received");
  live.health = health();
  return live;
}

void Server::AcceptLoop() {
  obs::SetCurrentThreadName("service/acceptor");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown() closes listen_fd_, which surfaces here as EBADF /
      // EINVAL / ECONNABORTED depending on the kernel's timing.
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connections_accepted_->Increment();
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(fd, conn);
    }
    // readers_ is only touched by this thread and by Shutdown() after
    // this thread has been joined, so no lock is needed.
    readers_.emplace_back([this, conn] { ReadLoop(conn); });
  }
}

void Server::ReadLoop(std::shared_ptr<Connection> conn) {
  obs::SetCurrentThreadName("service/reader");
  while (true) {
    auto frame = ReadFrame(conn->fd);
    if (!frame.ok() || !frame.value().has_value()) break;

    HINPRIV_SPAN("service/admit_request");
    requests_received_->Increment();
    auto doc = JsonValue::Parse(*frame.value());
    if (!doc.ok()) {
      invalid_->Increment();
      Respond(conn, Response{0, ResponseCode::kInvalidRequest,
                             doc.status().message(), JsonValue()});
      continue;
    }
    auto request = DecodeRequest(doc.value());
    if (!request.ok()) {
      invalid_->Increment();
      Respond(conn,
              Response{static_cast<uint64_t>(doc.value().GetInt("id", 0)),
                       ResponseCode::kInvalidRequest,
                       request.status().message(), JsonValue()});
      continue;
    }
    const uint64_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (IsAdminMethod(request.value().method)) {
      // Introspection verbs bypass the admission queue entirely: they are
      // answered right here on the reader thread, so `stats` and `health`
      // respond within deadline even when the serving path is saturated
      // and shedding — exactly when an operator needs them.
      obs::ScopedRequestId rid_scope(rid);
      HINPRIV_SPAN("service/admin");
      admin_requests_->Increment();
      Response response = ProcessAdmin(request.value());
      if (response.code == ResponseCode::kOk) {
        responses_ok_->Increment();
      } else if (response.code == ResponseCode::kInvalidRequest) {
        invalid_->Increment();
      } else if (response.code == ResponseCode::kInternal) {
        internal_errors_->Increment();
      }
      Respond(conn, response);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      Respond(conn, Response{request.value().id, ResponseCode::kShuttingDown,
                             "server is draining", JsonValue()});
      continue;
    }
    PendingRequest pending;
    pending.conn = conn;
    pending.request = std::move(request).value();
    pending.admitted = std::chrono::steady_clock::now();
    pending.rid = rid;
    const uint64_t id = pending.request.id;
    if (!queue_.TryPush(std::move(pending))) {
      // Admission control: a full queue sheds immediately instead of
      // building a backlog that would blow every queued deadline.
      shed_->Increment();
      Respond(conn, Response{id, ResponseCode::kBusy,
                             "request queue full", JsonValue()});
      continue;
    }
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    // One high-priority drain task per admitted request: requests are
    // admitted ahead of any queued intra-query scan grains (kNormal), so
    // a long parallel scan cannot starve the request path.
    {
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      ++drain_tasks_;
    }
    executor_->Submit([this] { DrainOne(); }, exec::Priority::kHigh);
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->fd);
}

void Server::DrainOne() {
  std::vector<PendingRequest> batch;
  const auto same_method = [](const PendingRequest& a,
                              const PendingRequest& b) {
    return a.request.method == b.request.method;
  };
  const size_t n = queue_.TryPopBatch(std::max<size_t>(1, config_.max_batch),
                                      &batch, same_method);
  if (n > 0) {
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    batches_->Increment();
    batch_size_->Record(n);
    for (const PendingRequest& pending : batch) {
      obs::ScopedRequestId rid_scope(pending.rid);
      HINPRIV_SPAN("service/handle_request");
      const auto popped = std::chrono::steady_clock::now();
      Response response = Process(pending);
      const auto processed = std::chrono::steady_clock::now();
      switch (response.code) {
        case ResponseCode::kOk:
          responses_ok_->Increment();
          break;
        case ResponseCode::kDeadlineExceeded:
          deadline_exceeded_->Increment();
          break;
        case ResponseCode::kCancelled:
          cancelled_->Increment();
          break;
        case ResponseCode::kInvalidRequest:
          invalid_->Increment();
          break;
        case ResponseCode::kInternal:
          internal_errors_->Increment();
          break;
        default:
          break;
      }
      Respond(pending.conn, response);
      const auto responded = std::chrono::steady_clock::now();
      latency_us_->Record(ElapsedUs(pending.admitted, responded));

      SlowQueryRecord record;
      record.rid = pending.rid;
      record.method = pending.request.method;
      record.target = pending.request.target;
      record.has_target = pending.request.has_target;
      record.max_distance = ResolveMaxDistance(pending.request);
      record.code = response.code;
      record.queue_us = ElapsedUs(pending.admitted, popped);
      record.run_us = ElapsedUs(popped, processed);
      record.write_us = ElapsedUs(processed, responded);
      record.total_us = ElapsedUs(pending.admitted, responded);
      slow_log_.Record(record);
    }
  }
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (--drain_tasks_ == 0) drain_cv_.notify_all();
}

int Server::ResolveMaxDistance(const Request& request) const {
  return request.max_distance >= 0 ? request.max_distance
                                   : config_.default_max_distance;
}

Response Server::Process(const PendingRequest& pending) {
  const Request& request = pending.request;
  Response response;
  response.id = request.id;

  // The deadline runs from admission: time burned waiting in the queue
  // counts against the request, which is what makes a saturated server
  // fail fast instead of serving answers nobody is waiting for anymore.
  util::CancelToken token;
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  if (deadline_ms > 0) {
    token.SetDeadline(pending.admitted + MillisToDuration(deadline_ms));
    if (token.deadline_exceeded()) {
      response.code = ResponseCode::kDeadlineExceeded;
      response.error = "deadline expired while queued";
      return response;
    }
  }

  switch (request.method) {
    case Method::kAttackOne:
      return ProcessAttackOne(request, token);
    case Method::kRisk:
      return ProcessRisk(request);
    case Method::kSleep:
      return ProcessSleep(request, token);
    case Method::kStats:
    case Method::kHealth:
    case Method::kMetrics:
    case Method::kTraceStart:
    case Method::kTraceStop:
    case Method::kTraceDump:
      // Admin verbs are normally answered inline by the reader thread and
      // never reach the queue; handle them anyway for robustness.
      return ProcessAdmin(request);
  }
  response.code = ResponseCode::kInternal;
  response.error = "unhandled method";
  return response;
}

Response Server::ProcessAdmin(const Request& request) {
  switch (request.method) {
    case Method::kStats:
      return ProcessStats(request);
    case Method::kHealth:
      return ProcessHealth(request);
    case Method::kMetrics:
      return ProcessMetrics(request);
    case Method::kTraceStart:
      return ProcessTraceStart(request);
    case Method::kTraceStop:
      return ProcessTraceStop(request);
    case Method::kTraceDump:
      return ProcessTraceDump(request);
    default:
      break;
  }
  Response response;
  response.id = request.id;
  response.code = ResponseCode::kInternal;
  response.error = "not an admin method";
  return response;
}

Response Server::ProcessAttackOne(const Request& request,
                                  const util::CancelToken& token) {
  HINPRIV_SPAN("service/attack_one");
  Response response;
  response.id = request.id;
  if (request.target >= target_->num_vertices()) {
    response.code = ResponseCode::kInvalidRequest;
    response.error = "target vertex out of range";
    return response;
  }
  const int max_distance = ResolveMaxDistance(request);
  const size_t distance_slot =
      max_distance >= 0 && max_distance <= kMaxDistanceBucket
          ? static_cast<size_t>(max_distance)
          : kDistanceSlots - 1;
  attack_by_distance_[distance_slot]->Increment();
  // With more than one executor worker, a single query fans its candidate
  // scan out across the pool (grains run at kNormal priority, below the
  // kHigh drain tasks); the result is bit-identical to the serial path.
  util::Result<std::vector<hin::VertexId>> result =
      (config_.parallel_scan && executor_ != nullptr &&
       executor_->num_workers() > 1)
          ? [&] {
              core::Dehin::ParallelScanOptions scan;
              scan.executor = executor_;
              scan.cancel = &token;
              return dehin_.DeanonymizeParallel(*target_, request.target,
                                                max_distance, scan);
            }()
          : dehin_.Deanonymize(*target_, request.target, max_distance, &token);
  if (!result.ok()) {
    response.code =
        result.status().code() == util::Status::Code::kDeadlineExceeded
            ? ResponseCode::kDeadlineExceeded
            : ResponseCode::kCancelled;
    response.error = result.status().message();
    return response;
  }
  const std::vector<hin::VertexId>& candidates = result.value();
  JsonValue payload = JsonValue::Object();
  payload.Set("target", JsonValue::Int(request.target));
  payload.Set("max_distance", JsonValue::Int(max_distance));
  payload.Set("num_candidates",
              JsonValue::Int(static_cast<int64_t>(candidates.size())));
  // De-anonymization succeeded iff the candidate set is a singleton; risk
  // for the entity is 1/k with k the candidate count (Definition 7 with
  // loss 1).
  payload.Set("deanonymized", JsonValue::Bool(candidates.size() == 1));
  if (candidates.size() == 1) {
    deanon_by_distance_[distance_slot]->Increment();
  }
  const size_t encoded = std::min(candidates.size(), kMaxEncodedCandidates);
  JsonValue list = JsonValue::Array();
  for (size_t i = 0; i < encoded; ++i) {
    list.Append(JsonValue::Int(candidates[i]));
  }
  payload.Set("candidates", std::move(list));
  payload.Set("truncated", JsonValue::Bool(encoded < candidates.size()));
  response.result = std::move(payload);
  return response;
}

util::Result<const Server::RiskEntry*> Server::RiskForDistance(
    int max_distance) {
  std::lock_guard<std::mutex> lock(risk_mu_);
  auto it = risk_cache_.find(max_distance);
  if (it != risk_cache_.end()) return &it->second;

  HINPRIV_SPAN("service/compute_risk");
  // Same signature configuration as `hinpriv_cli audit`: every profile
  // attribute of entity type 0 plus every link type in the schema.
  core::SignatureOptions options;
  const size_t num_attrs = target_->num_attributes(0);
  for (hin::AttributeId a = 0; a < num_attrs; ++a) {
    options.attributes.push_back(a);
  }
  options.link_types = core::AllLinkTypes(*target_);
  const auto signatures =
      core::ComputeSignatures(*target_, options, max_distance);
  if (signatures.empty()) {
    return util::Status::FailedPrecondition(
        "signature computation produced no levels");
  }
  const std::vector<uint64_t>& values = signatures.back();
  RiskEntry entry;
  entry.per_tuple = core::PerTupleRisk(values);
  entry.network_risk = core::DatasetRisk(values);
  entry.cardinality = core::CountDistinct(values);
  it = risk_cache_.emplace(max_distance, std::move(entry)).first;
  return &it->second;
}

Response Server::ProcessRisk(const Request& request) {
  HINPRIV_SPAN("service/risk");
  Response response;
  response.id = request.id;
  if (request.has_target && request.target >= target_->num_vertices()) {
    response.code = ResponseCode::kInvalidRequest;
    response.error = "target vertex out of range";
    return response;
  }
  const int max_distance = ResolveMaxDistance(request);
  auto entry = RiskForDistance(max_distance);
  if (!entry.ok()) {
    response.code = ResponseCode::kInternal;
    response.error = entry.status().message();
    return response;
  }
  JsonValue payload = JsonValue::Object();
  payload.Set("max_distance", JsonValue::Int(max_distance));
  if (request.has_target) {
    payload.Set("target", JsonValue::Int(request.target));
    payload.Set("risk",
                JsonValue::Number(entry.value()->per_tuple[request.target]));
  } else {
    payload.Set("network_risk", JsonValue::Number(entry.value()->network_risk));
    payload.Set("cardinality",
                JsonValue::Int(static_cast<int64_t>(entry.value()->cardinality)));
    payload.Set("num_entities",
                JsonValue::Int(static_cast<int64_t>(target_->num_vertices())));
  }
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessStats(const Request& request) {
  Response response;
  response.id = request.id;
  const core::DehinStats stats = dehin_.stats();
  JsonValue payload = JsonValue::Object();
  payload.Set("target_vertices",
              JsonValue::Int(static_cast<int64_t>(target_->num_vertices())));
  payload.Set("target_edges",
              JsonValue::Int(static_cast<int64_t>(target_->num_edges())));
  payload.Set("aux_vertices",
              JsonValue::Int(static_cast<int64_t>(aux_->num_vertices())));
  payload.Set("aux_edges",
              JsonValue::Int(static_cast<int64_t>(aux_->num_edges())));
  payload.Set("queue_depth", JsonValue::Int(static_cast<int64_t>(queue_.size())));
  payload.Set("queue_capacity",
              JsonValue::Int(static_cast<int64_t>(queue_.capacity())));
  payload.Set("num_workers",
              JsonValue::Int(static_cast<int64_t>(
                  executor_ != nullptr ? executor_->num_workers() : 0)));
  payload.Set("parallel_scan",
              JsonValue::Bool(config_.parallel_scan && executor_ != nullptr &&
                              executor_->num_workers() > 1));
  JsonValue dehin = JsonValue::Object();
  dehin.Set("prefilter_rejects",
            JsonValue::Int(static_cast<int64_t>(stats.prefilter_rejects)));
  dehin.Set("cache_hits", JsonValue::Int(static_cast<int64_t>(stats.cache_hits)));
  dehin.Set("full_tests", JsonValue::Int(static_cast<int64_t>(stats.full_tests)));
  const uint64_t cache_lookups = stats.cache_hits + stats.full_tests;
  dehin.Set("cache_hit_rate",
            JsonValue::Number(cache_lookups > 0
                                  ? static_cast<double>(stats.cache_hits) /
                                        static_cast<double>(cache_lookups)
                                  : 0.0));
  dehin.Set("dominance_kernel", JsonValue::Str(stats.dominance_kernel));
  payload.Set("dehin", std::move(dehin));

  // --- live introspection: uptime, health, windowed rates/percentiles,
  // per-distance counters, slow queries, tracing state.
  payload.Set("uptime_sec",
              JsonValue::Number(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    started_at_)
                                    .count()));
  payload.Set("health", JsonValue::Str(HealthStateName(health())));
  payload.Set("requests_received",
              JsonValue::Int(static_cast<int64_t>(requests_received_->Value())));
  payload.Set("responses_ok",
              JsonValue::Int(static_cast<int64_t>(responses_ok_->Value())));
  payload.Set("shed", JsonValue::Int(static_cast<int64_t>(shed_->Value())));
  payload.Set("deadline_exceeded",
              JsonValue::Int(static_cast<int64_t>(deadline_exceeded_->Value())));
  payload.Set("tracing", JsonValue::Bool(obs::TracingEnabled()));

  JsonValue windows = JsonValue::Array();
  for (const double w : {1.0, 10.0, 60.0}) {
    JsonValue entry = JsonValue::Object();
    entry.Set("requested_window_sec", JsonValue::Number(w));
    const auto received = window_.CounterRate("service/requests_received", w);
    entry.Set("window_sec", JsonValue::Number(received.seconds));
    entry.Set("qps", JsonValue::Number(received.rate));
    entry.Set("shed_per_sec",
              JsonValue::Number(window_.CounterRate("service/shed", w).rate));
    entry.Set("deadline_miss_per_sec",
              JsonValue::Number(
                  window_.CounterRate("service/deadline_exceeded", w).rate));
    const obs::HistogramSnapshot latency =
        window_.HistogramWindow("service/request_latency_us", w);
    JsonValue lat = JsonValue::Object();
    lat.Set("count", JsonValue::Int(static_cast<int64_t>(latency.count)));
    lat.Set("p50_us", JsonValue::Number(latency.Percentile(50.0)));
    lat.Set("p95_us", JsonValue::Number(latency.Percentile(95.0)));
    lat.Set("p99_us", JsonValue::Number(latency.Percentile(99.0)));
    entry.Set("latency", std::move(lat));
    windows.Append(std::move(entry));
  }
  payload.Set("windows", std::move(windows));

  JsonValue per_distance = JsonValue::Object();
  for (size_t d = 0; d < kDistanceSlots; ++d) {
    const uint64_t attacks = attack_by_distance_[d]->Value();
    if (attacks == 0) continue;
    JsonValue slot = JsonValue::Object();
    slot.Set("attacks", JsonValue::Int(static_cast<int64_t>(attacks)));
    slot.Set("deanonymized",
             JsonValue::Int(
                 static_cast<int64_t>(deanon_by_distance_[d]->Value())));
    per_distance.Set(d <= static_cast<size_t>(kMaxDistanceBucket)
                         ? "d" + std::to_string(d)
                         : std::string("overflow"),
                     std::move(slot));
  }
  payload.Set("per_distance", std::move(per_distance));

  JsonValue slow = JsonValue::Array();
  for (const SlowQueryRecord& record : slow_log_.WorstFirst()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("rid", JsonValue::Int(static_cast<int64_t>(record.rid)));
    entry.Set("method", JsonValue::Str(MethodName(record.method)));
    if (record.has_target) {
      entry.Set("target", JsonValue::Int(record.target));
    }
    entry.Set("max_distance", JsonValue::Int(record.max_distance));
    entry.Set("code", JsonValue::Str(ResponseCodeName(record.code)));
    entry.Set("queue_us", JsonValue::Int(static_cast<int64_t>(record.queue_us)));
    entry.Set("run_us", JsonValue::Int(static_cast<int64_t>(record.run_us)));
    entry.Set("write_us", JsonValue::Int(static_cast<int64_t>(record.write_us)));
    entry.Set("total_us", JsonValue::Int(static_cast<int64_t>(record.total_us)));
    slow.Append(std::move(entry));
  }
  payload.Set("slow_queries", std::move(slow));

  response.result = std::move(payload);
  return response;
}

Response Server::ProcessHealth(const Request& request) {
  Response response;
  response.id = request.id;
  const HealthState state = health();
  JsonValue payload = JsonValue::Object();
  payload.Set("health", JsonValue::Str(HealthStateName(state)));
  payload.Set("queue_depth",
              JsonValue::Int(static_cast<int64_t>(queue_.size())));
  payload.Set("queue_capacity",
              JsonValue::Int(static_cast<int64_t>(queue_.capacity())));
  const auto shed = window_.CounterRate("service/shed", config_.shed_window_sec);
  payload.Set("shed_per_sec", JsonValue::Number(shed.rate));
  const auto miss =
      window_.CounterRate("service/deadline_exceeded", config_.miss_window_sec);
  const auto received = window_.CounterRate("service/requests_received",
                                            config_.miss_window_sec);
  payload.Set("deadline_miss_rate",
              JsonValue::Number(
                  received.delta > 0
                      ? static_cast<double>(miss.delta) /
                            static_cast<double>(received.delta)
                      : 0.0));
  payload.Set("uptime_sec",
              JsonValue::Number(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    started_at_)
                                    .count()));
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessMetrics(const Request& request) {
  Response response;
  response.id = request.id;
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  JsonValue payload = JsonValue::Object();
  if (!request.path.empty()) {
    const util::Status status =
        obs::WritePrometheusText(snapshot, request.path);
    if (!status.ok()) {
      response.code = ResponseCode::kInternal;
      response.error = status.message();
      return response;
    }
    payload.Set("path", JsonValue::Str(request.path));
  } else {
    const std::string text = obs::ToPrometheusText(snapshot);
    payload.Set("content_type",
                JsonValue::Str("text/plain; version=0.0.4"));
    payload.Set("text", JsonValue::Str(text));
  }
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessTraceStart(const Request& request) {
  Response response;
  response.id = request.id;
  obs::StartTracing();
  JsonValue payload = JsonValue::Object();
  payload.Set("tracing", JsonValue::Bool(true));
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessTraceStop(const Request& request) {
  Response response;
  response.id = request.id;
  obs::StopTracing();
  JsonValue payload = JsonValue::Object();
  payload.Set("tracing", JsonValue::Bool(false));
  payload.Set("events",
              JsonValue::Int(
                  static_cast<int64_t>(obs::NumRecordedTraceEvents())));
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessTraceDump(const Request& request) {
  Response response;
  response.id = request.id;
  JsonValue payload = JsonValue::Object();
  if (!request.path.empty()) {
    const util::Status status = obs::WriteChromeTrace(request.path);
    if (!status.ok()) {
      response.code = ResponseCode::kInternal;
      response.error = status.message();
      return response;
    }
    payload.Set("path", JsonValue::Str(request.path));
  } else {
    std::string trace = obs::ChromeTraceJson();
    if (trace.size() > kMaxInlineTraceBytes) {
      response.code = ResponseCode::kInvalidRequest;
      response.error =
          "trace too large for an inline dump (" +
          std::to_string(trace.size()) +
          " bytes); pass 'path' to write it server-side";
      return response;
    }
    payload.Set("trace", JsonValue::Str(std::move(trace)));
  }
  payload.Set("events",
              JsonValue::Int(
                  static_cast<int64_t>(obs::NumRecordedTraceEvents())));
  response.result = std::move(payload);
  return response;
}

Response Server::ProcessSleep(const Request& request,
                              const util::CancelToken& token) {
  Response response;
  response.id = request.id;
  const double sleep_ms =
      std::clamp(request.sleep_ms, 0.0, config_.max_sleep_ms);
  // Sleep in 1ms slices so a deadline mid-sleep is honored promptly — this
  // is the load-testing method the integration test uses to hold a worker
  // busy deterministically.
  const auto end = std::chrono::steady_clock::now() + MillisToDuration(sleep_ms);
  while (std::chrono::steady_clock::now() < end) {
    if (token.ShouldStop()) {
      response.code = token.deadline_exceeded()
                          ? ResponseCode::kDeadlineExceeded
                          : ResponseCode::kCancelled;
      response.error = "sleep interrupted";
      return response;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  JsonValue payload = JsonValue::Object();
  payload.Set("slept_ms", JsonValue::Number(sleep_ms));
  response.result = std::move(payload);
  return response;
}

void Server::Respond(const std::shared_ptr<Connection>& conn,
                     const Response& response) {
  const std::string payload = EncodeResponse(response).Serialize();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!WriteFrame(conn->fd, payload).ok()) {
    // The peer may have hung up without waiting; the response is dropped
    // but the worker keeps draining.
    write_errors_->Increment();
  }
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!started_.load(std::memory_order_acquire) ||
      finished_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting connections: closing the listen socket kicks the
  //    acceptor out of accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Cleared only after the join: the acceptor reads listen_fd_ right up to
  // the moment accept() returns the close-induced error.
  listen_fd_ = -1;

  // 2. Stop admitting requests: SHUT_RD unblocks every reader's read()
  //    with EOF while leaving the write side open, so responses to
  //    in-flight requests still go out.
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      ::shutdown(fd, SHUT_RD);
    }
  }
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  readers_.clear();

  // 3. Drain: the readers are joined, so the set of admitted requests —
  //    and therefore of submitted drain tasks — is final. Each push
  //    submitted one task and every task pops at least one item whenever
  //    the queue is nonempty, so outstanding-tasks >= queued-items always
  //    holds: once the count hits zero, every admitted request has been
  //    answered. Close() just documents that no pushes can follow.
  queue_.Close();
  {
    std::unique_lock<std::mutex> drain_lock(drain_mu_);
    drain_cv_.wait(drain_lock, [this] { return drain_tasks_ == 0; });
  }
  queue_depth_gauge_->Set(0.0);
  // Joining an owned pool here (rather than at destruction) keeps the
  // post-Shutdown server inert; a shared executor is left running.
  owned_executor_.reset();
  executor_ = nullptr;

  // Stop the introspection watchdog after the drain so the last health
  // evaluation saw the final counter values.
  {
    std::lock_guard<std::mutex> watchdog_lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  // 4. Final telemetry snapshot, after all request processing quiesced.
  if (!config_.metrics_json_path.empty()) {
    (void)obs::WriteMetricsJson(obs::MetricsRegistry::Global().Snapshot(),
                                config_.metrics_json_path);
  }
  finished_.store(true, std::memory_order_release);
}

bool Server::finished() const {
  return finished_.load(std::memory_order_acquire);
}

}  // namespace hinpriv::service
