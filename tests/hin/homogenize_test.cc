#include "hin/homogenize.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::hin {
namespace {

TEST(HomogenizeTest, MergesLinkTypesSummingStrengths) {
  GraphBuilder builder(TqqTargetSchema());
  builder.AddVertices(0, 3);
  ASSERT_TRUE(builder.SetAttribute(0, kYobAttr, 1980).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, kFollowLink).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, kMentionLink, 5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, kRetweetLink, 2).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  auto homogeneous = HomogenizeGraph(graph.value());
  ASSERT_TRUE(homogeneous.ok()) << homogeneous.status().ToString();
  const Graph& g = homogeneous.value();
  EXPECT_EQ(g.num_link_types(), 1u);
  EXPECT_FALSE(g.schema().IsHeterogeneous());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.attribute(0, kYobAttr), 1980);
  // follow(1) + mention(5) collapse onto one edge of strength 6.
  EXPECT_EQ(g.EdgeStrength(0, 0, 1), 6u);
  EXPECT_EQ(g.EdgeStrength(0, 0, 2), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(HomogenizeTest, PreservesVertexCountAndAttributes) {
  synth::TqqConfig config;
  config.num_users = 500;
  util::Rng rng(1);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  ASSERT_TRUE(graph.ok());
  auto homogeneous = HomogenizeGraph(graph.value());
  ASSERT_TRUE(homogeneous.ok());
  ASSERT_EQ(homogeneous.value().num_vertices(), 500u);
  for (VertexId v = 0; v < 500; ++v) {
    for (AttributeId a = 0; a < 4; ++a) {
      ASSERT_EQ(homogeneous.value().attribute(v, a),
                graph.value().attribute(v, a));
    }
  }
  // Edge count can only shrink (parallel typed edges merge).
  EXPECT_LE(homogeneous.value().num_edges(), graph.value().num_edges());
  EXPECT_GT(homogeneous.value().num_edges(), 0u);
}

TEST(HomogenizeTest, RejectsMultiEntityGraphs) {
  synth::TqqFullConfig config;
  config.num_users = 40;
  util::Rng rng(2);
  auto full = synth::GenerateTqqFullNetwork(config, &rng);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(HomogenizeGraph(full.value()).ok());
}

TEST(HomogenizeTest, GrowableFlagSurvivesIfAnySourceGrowable) {
  auto graph = [] {
    GraphBuilder builder(TqqTargetSchema());
    builder.AddVertices(0, 2);
    EXPECT_TRUE(builder.AddEdge(0, 1, kFollowLink).ok());
    auto built = std::move(builder).Build();
    EXPECT_TRUE(built.ok());
    return std::move(built).value();
  }();
  auto homogeneous = HomogenizeGraph(graph);
  ASSERT_TRUE(homogeneous.ok());
  // t.qq has growable mention/retweet/comment strengths, so the merged
  // link type must be growable.
  EXPECT_TRUE(homogeneous.value().schema().link_type(0).growable_strength);
}

}  // namespace
}  // namespace hinpriv::hin
