// Privacy audit for a data publisher (Sections 4 and 4.5): before
// releasing an anonymized copy of a network, quantify the privacy risk its
// users face, identify the most at-risk individuals, and evaluate which
// link types to withhold to bring the risk down.
//
//   privacy_audit --users=2000 --density=0.01
//   privacy_audit --load=my_network.graph     (hinpriv-graph format)

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/privacy_risk.h"
#include "eval/experiment.h"
#include "hin/density.h"
#include "hin/io.h"
#include "hin/tqq_schema.h"
#include "synth/planted_target.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace hinpriv;

util::Result<hin::Graph> LoadOrGenerate(const util::FlagParser& flags) {
  const std::string path = flags.GetString("load");
  if (!path.empty()) return hin::LoadGraphFromFile(path);
  synth::TqqConfig config;
  config.num_users = static_cast<size_t>(flags.GetInt("users")) * 5;
  synth::PlantedTargetSpec spec;
  spec.target_size = static_cast<size_t>(flags.GetInt("users"));
  spec.density = flags.GetDouble("density");
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto dataset =
      synth::BuildPlantedDataset(config, spec, synth::GrowthConfig{}, &rng);
  if (!dataset.ok()) return dataset.status();
  return std::move(dataset).value().target;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.Define("users", "1000", "users in the generated network to audit");
  flags.Define("density", "0.01", "density of the generated network");
  flags.Define("load", "", "audit a hinpriv-graph file instead of generating");
  flags.Define("max_distance", "3", "deepest neighbor distance to audit");
  flags.Define("risk_budget", "0.5",
               "publish only if dataset risk stays at or below this");
  flags.Define("seed", "99", "rng seed");
  auto parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  auto graph = LoadOrGenerate(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot obtain network: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& g = graph.value();
  const int max_distance = static_cast<int>(flags.GetInt("max_distance"));
  std::printf("Auditing network: %zu users, %zu typed links, density %.4f\n\n",
              g.num_vertices(), g.num_edges(), hin::Density(g));

  // Risk ladder with the full profile attribute set and all link types.
  core::SignatureOptions options;
  options.attributes = {hin::kGenderAttr, hin::kYobAttr, hin::kTweetCountAttr,
                        hin::kTagCountAttr};
  options.link_types = core::AllLinkTypes(g);
  std::printf("Dataset privacy risk by max distance of utilized neighbors:\n");
  const auto ladder = core::NetworkPrivacyRisk(g, options, max_distance);
  for (const auto& level : ladder) {
    std::printf("  n = %d: risk %.3f  (distinct combined values: %zu / %zu)\n",
                level.max_distance, level.risk, level.cardinality,
                g.num_vertices());
  }

  // Most at-risk users: unique at the shallowest distance.
  const auto signatures = core::ComputeSignatures(g, options, max_distance);
  std::vector<int> unique_at(g.num_vertices(), -1);
  for (int n = max_distance; n >= 0; --n) {
    const auto risks = core::PerTupleRisk(signatures[n]);
    for (hin::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (risks[v] == 1.0) unique_at[v] = n;
    }
  }
  size_t never = 0;
  std::vector<size_t> counts(max_distance + 1, 0);
  for (hin::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (unique_at[v] < 0) {
      ++never;
    } else {
      ++counts[unique_at[v]];
    }
  }
  std::printf("\nUsers first re-identifiable at distance n:\n");
  for (int n = 0; n <= max_distance; ++n) {
    std::printf("  n = %d: %zu users\n", n, counts[n]);
  }
  std::printf("  never unique up to n = %d: %zu users\n", max_distance, never);

  // Section 4.5: withholding link types lowers C(L*) and hence the risk
  // bounds. Rank the single-link-type-released options.
  std::printf("\nRisk if only one link type were published (Section 4.5):\n");
  util::TablePrinter table({"published links", "risk n=1", "risk n=2"});
  const double budget = flags.GetDouble("risk_budget");
  // Baseline option: withholding all links caps an adversary at n = 0.
  std::string recommendation = "withhold all link information";
  double best_risk = ladder[0].risk;
  for (const auto& subset : eval::TqqLinkTypeSubsets()) {
    core::SignatureOptions reduced = options;
    reduced.link_types = subset.link_types;
    const auto reduced_ladder = core::NetworkPrivacyRisk(g, reduced, 2);
    if (subset.link_types.size() == 1) {
      table.AddRow({subset.label,
                    util::FormatDouble(reduced_ladder[1].risk, 3),
                    util::FormatDouble(reduced_ladder[2].risk, 3)});
    }
    if (reduced_ladder[2].risk <= budget &&
        subset.link_types.size() > 0) {
      recommendation = "publish only '" + subset.label + "'";
      best_risk = reduced_ladder[2].risk;
    }
  }
  table.Print(std::cout);

  std::printf("\nRecommendation for a %.2f risk budget: %s (risk %.3f).\n",
              budget, recommendation.c_str(), best_risk);
  std::printf("Note: every audited configuration still exceeds the budget "
              "unless most link types are withheld — consistent with the "
              "paper's conclusion that utility-preserving anonymization of "
              "a heterogeneous network leaves high privacy risk.\n");
  return 0;
}
