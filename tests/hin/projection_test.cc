#include "hin/projection.h"

#include <gtest/gtest.h>

#include "hin/graph_builder.h"
#include "hin/tqq_schema.h"

namespace hinpriv::hin {
namespace {

// Builds a miniature full t.qq network by hand:
//   users: ada, bob, eve
//   ada posts tweets T1, T2; bob posts tweet T3; ada posts comment C1
//   T1 mentions bob; T2 mentions bob; C1 mentions eve
//   T2 retweets T3 (=> ada retweet-strength-1 toward bob)
//   C1 comments on T3 (=> ada comment-strength-1 toward bob)
//   ada follows bob; eve follows ada
struct MiniTqq {
  Graph graph;
  VertexId ada, bob, eve;
};

MiniTqq BuildMiniTqq() {
  const NetworkSchema schema = TqqFullSchema();
  GraphBuilder builder(schema);
  const EntityTypeId user = schema.FindEntityType(kUserType);
  const EntityTypeId tweet = schema.FindEntityType(kTweetType);
  const EntityTypeId comment = schema.FindEntityType(kCommentType);
  const LinkTypeId post_tweet = schema.FindLinkType("post_tweet");
  const LinkTypeId post_comment = schema.FindLinkType("post_comment");
  const LinkTypeId mention_t = schema.FindLinkType("mention_in_tweet");
  const LinkTypeId mention_c = schema.FindLinkType("mention_in_comment");
  const LinkTypeId retweet_of = schema.FindLinkType("retweet_of");
  const LinkTypeId comment_on_t = schema.FindLinkType("comment_on_tweet");
  const LinkTypeId follow = schema.FindLinkType(kLinkFollow);

  const VertexId ada = builder.AddVertex(user);
  const VertexId bob = builder.AddVertex(user);
  const VertexId eve = builder.AddVertex(user);
  EXPECT_TRUE(builder.SetAttribute(ada, kYobAttr, 1980).ok());
  EXPECT_TRUE(builder.SetAttribute(bob, kYobAttr, 1970).ok());
  EXPECT_TRUE(builder.SetAttribute(eve, kYobAttr, 1990).ok());

  const VertexId t1 = builder.AddVertex(tweet);
  const VertexId t2 = builder.AddVertex(tweet);
  const VertexId t3 = builder.AddVertex(tweet);
  const VertexId c1 = builder.AddVertex(comment);

  EXPECT_TRUE(builder.AddEdge(ada, t1, post_tweet).ok());
  EXPECT_TRUE(builder.AddEdge(ada, t2, post_tweet).ok());
  EXPECT_TRUE(builder.AddEdge(bob, t3, post_tweet).ok());
  EXPECT_TRUE(builder.AddEdge(ada, c1, post_comment).ok());
  EXPECT_TRUE(builder.AddEdge(t1, bob, mention_t).ok());
  EXPECT_TRUE(builder.AddEdge(t2, bob, mention_t).ok());
  EXPECT_TRUE(builder.AddEdge(c1, eve, mention_c).ok());
  EXPECT_TRUE(builder.AddEdge(t2, t3, retweet_of).ok());
  EXPECT_TRUE(builder.AddEdge(c1, t3, comment_on_t).ok());
  EXPECT_TRUE(builder.AddEdge(ada, bob, follow).ok());
  EXPECT_TRUE(builder.AddEdge(eve, ada, follow).ok());

  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return MiniTqq{std::move(graph).value(), ada, bob, eve};
}

TEST(ProjectionTest, ShortCircuitedStrengthsMatchHandCount) {
  MiniTqq mini = BuildMiniTqq();
  const TargetSchemaSpec spec = TqqTargetSpec(mini.graph.schema());
  auto projected = ProjectGraph(mini.graph, spec);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  const Graph& g = projected.value().graph;

  EXPECT_EQ(g.num_vertices(), 3u);  // only users survive projection
  // The users keep their ids in order (ada=0, bob=1, eve=2 here since they
  // were added first) and their attributes.
  EXPECT_EQ(g.attribute(0, kYobAttr), 1980);
  EXPECT_EQ(g.attribute(1, kYobAttr), 1970);

  // mention strength ada->bob = 2 (via T1 and T2); ada->eve = 1 (via C1).
  EXPECT_EQ(g.EdgeStrength(kMentionLink, 0, 1), 2u);
  EXPECT_EQ(g.EdgeStrength(kMentionLink, 0, 2), 1u);
  EXPECT_EQ(g.EdgeStrength(kMentionLink, 1, 0), 0u);

  // retweet strength ada->bob = 1 (T2 retweets T3, posted by bob).
  EXPECT_EQ(g.EdgeStrength(kRetweetLink, 0, 1), 1u);
  EXPECT_EQ(g.EdgeStrength(kRetweetLink, 1, 0), 0u);

  // comment strength ada->bob = 1 (C1 comments on T3).
  EXPECT_EQ(g.EdgeStrength(kCommentLink, 0, 1), 1u);

  // follow reproduced: ada->bob and eve->ada.
  EXPECT_EQ(g.EdgeStrength(kFollowLink, 0, 1), 1u);
  EXPECT_EQ(g.EdgeStrength(kFollowLink, 2, 0), 1u);
  EXPECT_EQ(g.EdgeStrength(kFollowLink, 1, 0), 0u);

  // Mapping back to the full graph.
  EXPECT_EQ(projected.value().to_original[0], mini.ada);
  EXPECT_EQ(projected.value().to_original[1], mini.bob);
  EXPECT_EQ(projected.value().to_original[2], mini.eve);
}

TEST(ProjectionTest, ProjectedSchemaIsTqqTargetSchema) {
  MiniTqq mini = BuildMiniTqq();
  auto projected =
      ProjectGraph(mini.graph, TqqTargetSpec(mini.graph.schema()));
  ASSERT_TRUE(projected.ok());
  const NetworkSchema& schema = projected.value().graph.schema();
  EXPECT_EQ(schema.num_entity_types(), 1u);
  EXPECT_EQ(schema.num_link_types(), kNumTqqLinkTypes);
  EXPECT_EQ(schema.link_type(kFollowLink).name, kLinkFollow);
  EXPECT_EQ(schema.link_type(kMentionLink).name, kLinkMention);
  EXPECT_EQ(schema.link_type(kRetweetLink).name, kLinkRetweet);
  EXPECT_EQ(schema.link_type(kCommentLink).name, kLinkComment);
  // Mention/retweet/comment strengths grow; follow does not.
  EXPECT_TRUE(schema.link_type(kMentionLink).growable_strength);
  EXPECT_FALSE(schema.link_type(kFollowLink).growable_strength);
}

TEST(ProjectionTest, SelfPathsAreDropped) {
  // A user retweeting their own tweet must not create a self-link, because
  // the t.qq target schema forbids self-links.
  const NetworkSchema schema = TqqFullSchema();
  GraphBuilder builder(schema);
  const EntityTypeId user = schema.FindEntityType(kUserType);
  const EntityTypeId tweet = schema.FindEntityType(kTweetType);
  const LinkTypeId post_tweet = schema.FindLinkType("post_tweet");
  const LinkTypeId retweet_of = schema.FindLinkType("retweet_of");
  const VertexId u = builder.AddVertex(user);
  const VertexId t1 = builder.AddVertex(tweet);
  const VertexId t2 = builder.AddVertex(tweet);
  ASSERT_TRUE(builder.AddEdge(u, t1, post_tweet).ok());
  ASSERT_TRUE(builder.AddEdge(u, t2, post_tweet).ok());
  ASSERT_TRUE(builder.AddEdge(t2, t1, retweet_of).ok());
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  auto projected =
      ProjectGraph(graph.value(), TqqTargetSpec(graph.value().schema()));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().graph.num_edges(), 0u);
}

TEST(ProjectionTest, MultiplicityMultipliesAlongPath) {
  // Folded multi-edges multiply: if a tweet mentions bob "twice" (merged
  // into strength 2), ada's mention strength toward bob is 2.
  const NetworkSchema schema = TqqFullSchema();
  GraphBuilder builder(schema);
  const EntityTypeId user = schema.FindEntityType(kUserType);
  const EntityTypeId tweet = schema.FindEntityType(kTweetType);
  const LinkTypeId post_tweet = schema.FindLinkType("post_tweet");
  const LinkTypeId mention_t = schema.FindLinkType("mention_in_tweet");
  const VertexId ada = builder.AddVertex(user);
  const VertexId bob = builder.AddVertex(user);
  const VertexId t = builder.AddVertex(tweet);
  ASSERT_TRUE(builder.AddEdge(ada, t, post_tweet).ok());
  ASSERT_TRUE(builder.AddEdge(t, bob, mention_t).ok());
  ASSERT_TRUE(builder.AddEdge(t, bob, mention_t).ok());  // merges to 2
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  auto projected =
      ProjectGraph(graph.value(), TqqTargetSpec(graph.value().schema()));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().graph.EdgeStrength(kMentionLink, 0, 1), 2u);
}

TEST(ProjectionTest, RejectsInvalidSpec) {
  MiniTqq mini = BuildMiniTqq();
  TargetSchemaSpec bad;
  bad.target_entity = 99;
  EXPECT_FALSE(ProjectGraph(mini.graph, bad).ok());
}

}  // namespace
}  // namespace hinpriv::hin
