#ifndef HINPRIV_CORE_MATCH_CACHE_H_
#define HINPRIV_CORE_MATCH_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hin/types.h"
#include "obs/metrics.h"
#include "util/hashing.h"

namespace hinpriv::core {

// Concurrent memo table for Dehin::LinkMatch results, keyed by
// (target vertex, aux vertex, depth). Replaces the per-Deanonymize-call
// std::unordered_map so depth-(n-1) sub-results computed while scoring one
// target vertex are reused by every later call whose neighborhood touches
// the same pair — within one thread and across the worker threads of
// EvaluateAttackParallel.
//
// The key never packs depth and vertex ids into shared bits: the vertex
// pair occupies a full 64-bit word (two uint32 ids) and depth selects a
// separate table, so no combination of max_distance or graph size can
// alias two distinct (vt, va, depth) triples. (The legacy packed key
// silently collided for max_distance > 15 or target ids >= 2^28.)
//
// Striped locking: entries hash to one of num_shards shards, each guarded
// by its own mutex, so concurrent Deanonymize calls rarely contend. A
// single-shard instance doubles as the per-call local memo when the shared
// cache is ablated.
// Per-shard probe accounting (see MatchCache::ShardStats). There are no
// evictions to count: the cache is unbounded by design and dropped
// wholesale with its owning Dehin target state.
struct MatchCacheShardStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;

  MatchCacheShardStats& operator+=(const MatchCacheShardStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    return *this;
  }
};

class MatchCache {
 public:
  explicit MatchCache(size_t num_shards = 1);

  MatchCache(const MatchCache&) = delete;
  MatchCache& operator=(const MatchCache&) = delete;

  static uint64_t PairKey(hin::VertexId vt, hin::VertexId va) {
    return (static_cast<uint64_t>(vt) << 32) | static_cast<uint64_t>(va);
  }

  // depth must be >= 1 (depth-0 queries never reach LinkMatch).
  std::optional<bool> Lookup(int depth, uint64_t pair_key) const {
    const Shard& shard = shards_[ShardIndex(pair_key)];
    std::optional<bool> result;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const size_t d = static_cast<size_t>(depth) - 1;
      if (d < shard.by_depth.size()) {
        const auto& map = shard.by_depth[d];
        if (auto it = map.find(pair_key); it != map.end()) {
          result = it->second;
        }
      }
      // Per-shard tallies ride the lock already held, so they cost nothing
      // extra in synchronization.
      if (result.has_value()) {
        ++shard.stats.hits;
      } else {
        ++shard.stats.misses;
      }
    }
    // Process-wide mirror for --metrics-json; striped and relaxed, outside
    // the shard lock.
    (result.has_value() ? GlobalHitCounter() : GlobalMissCounter())
        ->Increment();
    return result;
  }

  void Insert(int depth, uint64_t pair_key, bool value) {
    Shard& shard = shards_[ShardIndex(pair_key)];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const size_t d = static_cast<size_t>(depth) - 1;
      if (d >= shard.by_depth.size()) shard.by_depth.resize(d + 1);
      shard.by_depth[d].emplace(pair_key, value);
      ++shard.stats.inserts;
    }
    GlobalInsertCounter()->Increment();
  }

  // Total entries across shards and depths (takes every shard lock; for
  // observability, not the hot path).
  size_t size() const;

  size_t num_shards() const { return shards_.size(); }

  // Per-shard probe outcomes, index-aligned with the shard array — the
  // spread across entries shows whether the striped locking is balanced.
  std::vector<MatchCacheShardStats> ShardStats() const;
  // Sum over shards.
  MatchCacheShardStats TotalStats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // by_depth[d] memoizes depth d+1; depths appear lazily as the recursion
    // reaches them, so the vector stays as short as max_distance.
    std::vector<std::unordered_map<uint64_t, bool>> by_depth;
    // Guarded by mu (mutable: Lookup is const).
    mutable MatchCacheShardStats stats;
  };

  // Registry instruments shared by every MatchCache in the process,
  // resolved once ("match_cache/hits|misses|inserts").
  static obs::Counter* GlobalHitCounter();
  static obs::Counter* GlobalMissCounter();
  static obs::Counter* GlobalInsertCounter();

  size_t ShardIndex(uint64_t pair_key) const {
    return util::Mix64(pair_key) & shard_mask_;
  }

  std::vector<Shard> shards_;
  size_t shard_mask_;
};

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_MATCH_CACHE_H_
