// Differential proof that the zero-copy storage path changes nothing about
// attack semantics: the same auxiliary network loaded two ways — the heap
// arena built by the binary loader and the mmap'd HINPRIVS snapshot — must
// answer Deanonymize and DeanonymizeParallel bit-identically for every
// target vertex, with and without the candidate index.

#include <vector>

#include <gtest/gtest.h>

#include "anon/kdd_anonymizer.h"
#include "core/dehin.h"
#include "hin/binary_io.h"
#include "hin/snapshot.h"
#include "synth/tqq_generator.h"
#include "util/random.h"

namespace hinpriv::core {
namespace {

struct LoadedPair {
  hin::Graph heap;
  hin::Graph mapped;
};

LoadedPair LoadBothWays(size_t num_users, uint64_t seed) {
  synth::TqqConfig config;
  config.num_users = num_users;
  util::Rng rng(seed);
  auto graph = synth::GenerateTqqNetwork(config, &rng);
  EXPECT_TRUE(graph.ok());
  // Unique per test: concurrent ctest processes rewriting a file this
  // process has mmap'd would SIGBUS on access past the new EOF.
  const std::string stem =
      testing::TempDir() + "/hinpriv_diff_" +
      testing::UnitTest::GetInstance()->current_test_info()->name();
  const std::string bin_path = stem + ".bin";
  const std::string snap_path = stem + ".snap";
  EXPECT_TRUE(hin::SaveGraphBinaryToFile(graph.value(), bin_path).ok());
  EXPECT_TRUE(hin::SaveGraphSnapshot(graph.value(), snap_path).ok());
  auto heap = hin::LoadGraphBinaryFromFile(bin_path);
  auto mapped = hin::LoadGraphSnapshot(snap_path);
  EXPECT_TRUE(heap.ok());
  EXPECT_TRUE(mapped.ok());
  EXPECT_FALSE(heap.value().is_mapped());
  EXPECT_TRUE(mapped.value().is_mapped());
  return LoadedPair{std::move(heap).value(), std::move(mapped).value()};
}

hin::Graph AnonymizedFrom(const hin::Graph& aux, uint64_t seed) {
  anon::KddAnonymizer anonymizer;
  util::Rng rng(seed);
  auto published = anonymizer.Anonymize(aux, &rng);
  EXPECT_TRUE(published.ok());
  return std::move(published.value().graph);
}

void ExpectIdenticalAnswers(const hin::Graph& heap_aux,
                            const hin::Graph& mapped_aux,
                            const hin::Graph& target, DehinConfig config,
                            int max_distance) {
  Dehin heap_attack(&heap_aux, config);
  Dehin mapped_attack(&mapped_aux, config);
  for (hin::VertexId vt = 0; vt < target.num_vertices(); ++vt) {
    const auto serial_heap = heap_attack.Deanonymize(target, vt, max_distance);
    const auto serial_mapped =
        mapped_attack.Deanonymize(target, vt, max_distance);
    ASSERT_EQ(serial_heap, serial_mapped) << "serial answers differ at vertex "
                                          << vt;
    auto parallel_heap =
        heap_attack.DeanonymizeParallel(target, vt, max_distance);
    auto parallel_mapped =
        mapped_attack.DeanonymizeParallel(target, vt, max_distance);
    ASSERT_TRUE(parallel_heap.ok());
    ASSERT_TRUE(parallel_mapped.ok());
    ASSERT_EQ(parallel_heap.value(), parallel_mapped.value())
        << "parallel answers differ at vertex " << vt;
    ASSERT_EQ(serial_heap, parallel_heap.value())
        << "serial/parallel answers differ at vertex " << vt;
  }
}

TEST(DehinSnapshotDifferentialTest, SelfAttackAnswersAreBitIdentical) {
  LoadedPair pair = LoadBothWays(400, 41);
  const hin::Graph target = AnonymizedFrom(pair.heap, 42);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  ExpectIdenticalAnswers(pair.heap, pair.mapped, target, config,
                         /*max_distance=*/1);
}

TEST(DehinSnapshotDifferentialTest, IdenticalWithoutCandidateIndex) {
  LoadedPair pair = LoadBothWays(200, 43);
  const hin::Graph target = AnonymizedFrom(pair.heap, 44);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  config.use_candidate_index = false;
  ExpectIdenticalAnswers(pair.heap, pair.mapped, target, config,
                         /*max_distance=*/1);
}

TEST(DehinSnapshotDifferentialTest, IdenticalAtDistanceTwo) {
  LoadedPair pair = LoadBothWays(150, 45);
  const hin::Graph target = AnonymizedFrom(pair.heap, 46);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 2;
  ExpectIdenticalAnswers(pair.heap, pair.mapped, target, config,
                         /*max_distance=*/2);
}

// The mapped graph can also play the *target* role (e.g. `serve` pointed
// at two snapshots): answers still match the all-heap configuration.
TEST(DehinSnapshotDifferentialTest, MappedTargetMatchesHeapTarget) {
  LoadedPair pair = LoadBothWays(200, 47);
  DehinConfig config;
  config.match = DefaultTqqMatchOptions();
  config.max_distance = 1;
  Dehin attack(&pair.heap, config);
  for (hin::VertexId vt = 0; vt < pair.heap.num_vertices(); vt += 7) {
    ASSERT_EQ(attack.Deanonymize(pair.heap, vt, 1),
              attack.Deanonymize(pair.mapped, vt, 1))
        << "target-side storage changed the answer at vertex " << vt;
  }
}

}  // namespace
}  // namespace hinpriv::core
