// Meta-path projection walkthrough (Definitions 1-5, Section 3): builds a
// full heterogeneous t.qq network — users, tweets, comments, items with
// post / mention / retweet-of / comment-on / follow / recommendation links —
// then projects it onto the target network schema by short-circuiting the
// paper's target meta paths, and shows how the short-circuited strengths
// (mention/retweet/comment strength) arise from path-instance counts.

#include <cstdio>

#include "hin/density.h"
#include "hin/io.h"
#include "hin/projection.h"
#include "hin/tqq_schema.h"
#include "synth/tqq_generator.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace hinpriv;
  util::FlagParser flags;
  flags.Define("users", "300", "users in the full network");
  flags.Define("seed", "5", "rng seed");
  flags.Define("save", "", "optionally save the projected graph to a file");
  auto parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return parse_status.ok() ? 0 : 2;
  }

  // 1. The full network (Figure 1/2): four entity types, ten link types.
  synth::TqqFullConfig config;
  config.num_users = static_cast<size_t>(flags.GetInt("users"));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto full = synth::GenerateTqqFullNetwork(config, &rng);
  if (!full.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  const hin::NetworkSchema& schema = full.value().schema();
  std::printf("Full heterogeneous information network (Figure 1):\n");
  for (hin::EntityTypeId t = 0; t < schema.num_entity_types(); ++t) {
    std::printf("  %-8s x %zu\n", schema.entity_type(t).name.c_str(),
                full.value().NumVerticesOfType(t));
  }
  std::printf("  %zu links across %zu link types\n\n",
              full.value().num_edges(), schema.num_link_types());

  // 2. The target meta paths (Section 3).
  const hin::TargetSchemaSpec spec = hin::TqqTargetSpec(schema);
  std::printf("Target meta paths over the network schema (Figure 2 -> 3):\n");
  for (const auto& link : spec.links) {
    std::printf("  target link '%s' short-circuits %zu meta path(s):\n",
                link.name.c_str(), link.source_paths.size());
    for (const auto& path : link.source_paths) {
      std::printf("    %s: User", path.name.c_str());
      hin::EntityTypeId at = spec.target_entity;
      for (const auto& step : path.steps) {
        const auto& lt = schema.link_type(step.link);
        at = step.reverse ? lt.src : lt.dst;
        std::printf(" -%s%s-> %s", step.reverse ? "(rev)" : "",
                    lt.name.c_str(), schema.entity_type(at).name.c_str());
      }
      std::printf("\n");
    }
  }

  // 3. Instance-level projection (Definition 5).
  auto projected = hin::ProjectGraph(full.value(), spec);
  if (!projected.ok()) {
    std::fprintf(stderr, "projection failed: %s\n",
                 projected.status().ToString().c_str());
    return 1;
  }
  const hin::Graph& target = projected.value().graph;
  std::printf("\nProjected target network (Figure 3): %zu users, %zu links, "
              "density %.5f\n",
              target.num_vertices(), target.num_edges(),
              hin::Density(target));
  for (hin::LinkTypeId lt = 0; lt < target.num_link_types(); ++lt) {
    size_t edges = 0;
    uint64_t strength_sum = 0;
    hin::Strength strength_max = 0;
    for (hin::VertexId v = 0; v < target.num_vertices(); ++v) {
      for (const hin::Edge& e : target.OutEdges(lt, v)) {
        ++edges;
        strength_sum += e.strength;
        strength_max = std::max(strength_max, e.strength);
      }
    }
    std::printf("  %-8s: %5zu links, mean strength %.2f, max %u\n",
                target.schema().link_type(lt).name.c_str(), edges,
                edges == 0 ? 0.0
                           : static_cast<double>(strength_sum) /
                                 static_cast<double>(edges),
                strength_max);
  }

  // 4. Spot-check one user's short-circuited neighborhood (Figure 4 style).
  for (hin::VertexId v = 0; v < target.num_vertices(); ++v) {
    if (target.TotalOutDegree(v) < 3) continue;
    std::printf("\nExample neighborhood along target meta paths (user %u, "
                "cf. Figure 4):\n",
                v);
    for (hin::LinkTypeId lt = 0; lt < target.num_link_types(); ++lt) {
      for (const hin::Edge& e : target.OutEdges(lt, v)) {
        std::printf("  %u --%u%c--> %u (neighbor yob %d, gender %d)\n", v,
                    e.strength,
                    target.schema().link_type(lt).name[0], e.neighbor,
                    target.attribute(e.neighbor, hin::kYobAttr),
                    target.attribute(e.neighbor, hin::kGenderAttr));
      }
    }
    break;
  }

  const std::string save_path = flags.GetString("save");
  if (!save_path.empty()) {
    const util::Status saved = hin::SaveGraphToFile(target, save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("\nProjected graph saved to %s (audit it with "
                "privacy_audit --load=%s)\n",
                save_path.c_str(), save_path.c_str());
  }
  return 0;
}
