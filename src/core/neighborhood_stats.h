#ifndef HINPRIV_CORE_NEIGHBORHOOD_STATS_H_
#define HINPRIV_CORE_NEIGHBORHOOD_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hin/graph.h"
#include "hin/types.h"

namespace hinpriv::core {

// Precomputed per-vertex neighborhood statistics for the link types (and
// directions) a DeHIN configuration utilizes: for every vertex and every
// (link type, direction) slot, the neighborhood's strength multiset sorted
// ascending. Built once per graph (O(E log deg)) and then queried in O(1)
// per slot, this backs the Layer-1 prefilter of Dehin::LinkMatch — a sound
// necessary-condition test that rejects (target, candidate) pairs without
// touching the O(|T|·|A|) bipartite candidate-set construction.
//
// Slot layout: link type i of the configured list occupies slot i (out
// direction) when in-edges are unused, or slots 2i (out) / 2i+1 (in) when
// they are. Two stats built from the same configuration therefore agree on
// slot meaning, which is all the prefilter needs.
class NeighborhoodStats {
 public:
  NeighborhoodStats(const hin::Graph& graph,
                    const std::vector<hin::LinkTypeId>& link_types,
                    bool use_in_edges);

  NeighborhoodStats(const NeighborhoodStats&) = delete;
  NeighborhoodStats& operator=(const NeighborhoodStats&) = delete;

  size_t num_slots() const { return slots_.size(); }

  // The strength multiset of v's neighborhood in `slot`, sorted ascending.
  // The span's size is the per-type degree, so no separate degree query is
  // needed.
  std::span<const hin::Strength> SortedStrengths(size_t slot,
                                                 hin::VertexId v) const {
    const Slot& s = slots_[slot];
    return {s.strengths.data() + s.offsets[v],
            s.offsets[v + 1] - s.offsets[v]};
  }

  // Necessary condition for Algorithm 2's per-type acceptance test: a
  // perfect left matching assigns each target edge a distinct auxiliary
  // edge whose strength passes LinkStrengthMatch. Under growth-aware
  // (aux >= target) semantics that requires the top-|T| auxiliary strengths
  // to dominate the sorted target strengths element-wise; under exact
  // semantics it requires multiset containment. Both are decided by one
  // merged scan over the sorted spans, O(|T| + |A|). Returns true when a
  // matching is still possible (the pair must proceed to the full test);
  // false is a proof that Dehin::LinkMatch would reject.
  static bool StrengthMultisetDominates(
      std::span<const hin::Strength> target_sorted,
      std::span<const hin::Strength> aux_sorted, bool growth_aware);

 private:
  struct Slot {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<hin::Strength> strengths;
  };
  std::vector<Slot> slots_;
};

}  // namespace hinpriv::core

#endif  // HINPRIV_CORE_NEIGHBORHOOD_STATS_H_
