#ifndef HINPRIV_ANON_ANONYMIZER_H_
#define HINPRIV_ANON_ANONYMIZER_H_

#include <string>
#include <vector>

#include "hin/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace hinpriv::anon {

// Output of an anonymization pass over a target network that is about to be
// published. Vertex identities are randomized: vertex i of `graph`
// corresponds to vertex to_original[i] of the input graph. Structural
// schemes may additionally add fake links or perturb strengths.
struct AnonymizedGraph {
  hin::Graph graph;
  std::vector<hin::VertexId> to_original;
};

// Interface for graph-data anonymization schemes (Section 2.3 / Section 6).
// Implementations must not remove real vertices; information hiding is done
// by id randomization, fake links, and weight perturbation, preserving the
// dataset's recommendation-research utility as the paper assumes.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  // Name used in experiment reports (e.g., "KDDA", "CGA", "VW-CGA").
  virtual std::string name() const = 0;

  virtual util::Result<AnonymizedGraph> Anonymize(const hin::Graph& target,
                                                  util::Rng* rng) const = 0;
};

// Helper shared by implementations: copies `target` into a new graph under
// a random vertex permutation, optionally leaving room for extra edges the
// caller stages afterwards. Returns the permutation as to_original.
util::Result<AnonymizedGraph> PermuteVertices(const hin::Graph& target,
                                              util::Rng* rng);

}  // namespace hinpriv::anon

#endif  // HINPRIV_ANON_ANONYMIZER_H_
