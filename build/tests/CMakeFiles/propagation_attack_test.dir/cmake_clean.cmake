file(REMOVE_RECURSE
  "CMakeFiles/propagation_attack_test.dir/baselines/propagation_attack_test.cc.o"
  "CMakeFiles/propagation_attack_test.dir/baselines/propagation_attack_test.cc.o.d"
  "propagation_attack_test"
  "propagation_attack_test.pdb"
  "propagation_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
