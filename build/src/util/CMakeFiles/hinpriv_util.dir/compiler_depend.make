# Empty compiler generated dependencies file for hinpriv_util.
# This may be replaced when dependencies are built.
