file(REMOVE_RECURSE
  "CMakeFiles/complete_graph_anonymizer_test.dir/anon/complete_graph_anonymizer_test.cc.o"
  "CMakeFiles/complete_graph_anonymizer_test.dir/anon/complete_graph_anonymizer_test.cc.o.d"
  "complete_graph_anonymizer_test"
  "complete_graph_anonymizer_test.pdb"
  "complete_graph_anonymizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complete_graph_anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
